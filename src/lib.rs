//! # harvest — Harvesting Randomness to Optimize Distributed Systems
//!
//! A from-scratch Rust reproduction of the HotNets'17 paper *Harvesting
//! Randomness to Optimize Distributed Systems* (Lecuyer, Lockerman, Nelson,
//! Sen, Sharma, Slivkins): contextual bandits and off-policy evaluation for
//! the randomized decisions distributed systems already make, plus
//! simulators for the paper's three scenarios (machine health, load
//! balancing, caching) and a harness that regenerates every figure and
//! table.
//!
//! This crate is an umbrella facade: it re-exports the workspace crates
//! under stable module names so applications can depend on one crate.
//!
//! ## Quick start
//!
//! ```
//! use harvest::core::policy::{ConstantPolicy, UniformPolicy};
//! use harvest::core::simulate::simulate_exploration;
//! use harvest::estimators::ips::ips;
//! use harvest::mh::{generate_dataset, MachineHealthConfig};
//! use rand::SeedableRng;
//!
//! // 1. A full-feedback machine-health dataset (the Azure scenario).
//! let full = generate_dataset(&MachineHealthConfig {
//!     incidents: 10_000,
//!     seed: 7,
//! });
//!
//! // 2. Simulate a randomized deployment: reveal one action's reward per
//! //    incident, logged with its propensity.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let exploration = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
//!
//! // 3. Evaluate a candidate policy offline — without deploying it.
//! let candidate = ConstantPolicy::new(2); // always wait 3 minutes
//! let estimate = ips(&exploration, &candidate);
//! let truth = full.value_of_policy(&candidate).unwrap();
//! assert!((estimate.value - truth).abs() < 0.1);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `harvest-core` | contexts, policies, CB learners |
//! | [`estimators`] | `harvest-estimators` | IPS, SNIPS, DM, DR, bounds, A/B |
//! | [`logs`] | `harvest-log` | scavenging, propensity inference, rewards |
//! | [`simnet`] | `harvest-sim-net` | event queue, workloads, faults |
//! | [`lb`] | `harvest-sim-lb` | Nginx-style load-balancer simulator |
//! | [`cache`] | `harvest-sim-cache` | Redis-style cache simulator |
//! | [`mh`] | `harvest-sim-mh` | Azure-style machine-health simulator |
//! | [`serve`] | `harvest-serve` | online decision service (harvest → train → promote) |
//! | [`obs`] | `harvest-obs` | decision tracer, histograms, Prometheus exposition |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The contextual-bandit framework (re-export of `harvest-core`).
pub mod core {
    pub use harvest_core::*;
}

/// Off-policy estimators and bounds (re-export of `harvest-estimators`).
pub mod estimators {
    pub use harvest_estimators::*;
}

/// Log scavenging pipeline (re-export of `harvest-log`).
pub mod logs {
    pub use harvest_log::*;
}

/// Discrete-event simulation substrate (re-export of `harvest-sim-net`).
pub mod simnet {
    pub use harvest_sim_net::*;
}

/// Load-balancer simulator (re-export of `harvest-sim-lb`).
pub mod lb {
    pub use harvest_sim_lb::*;
}

/// Cache simulator (re-export of `harvest-sim-cache`).
pub mod cache {
    pub use harvest_sim_cache::*;
}

/// Machine-health simulator (re-export of `harvest-sim-mh`).
pub mod mh {
    pub use harvest_sim_mh::*;
}

/// Online decision service (re-export of `harvest-serve`).
pub mod serve {
    pub use harvest_serve::*;
}

/// Observability primitives (re-export of `harvest-obs`).
pub mod obs {
    pub use harvest_obs::*;
}

//! # harvest — Harvesting Randomness to Optimize Distributed Systems
//!
//! A from-scratch Rust reproduction of the HotNets'17 paper *Harvesting
//! Randomness to Optimize Distributed Systems* (Lecuyer, Lockerman, Nelson,
//! Sen, Sharma, Slivkins): contextual bandits and off-policy evaluation for
//! the randomized decisions distributed systems already make, plus
//! simulators for the paper's three scenarios (machine health, load
//! balancing, caching) and a harness that regenerates every figure and
//! table.
//!
//! This crate is an umbrella facade: it re-exports the workspace crates
//! under stable module names so applications can depend on one crate.
//!
//! ## Quick start
//!
//! ```
//! use harvest::core::policy::{ConstantPolicy, UniformPolicy};
//! use harvest::core::simulate::simulate_exploration;
//! use harvest::estimators::{EstimatorKind, OffPolicyEvaluator};
//! use harvest::mh::{generate_dataset, MachineHealthConfig};
//! use rand::SeedableRng;
//!
//! // 1. A full-feedback machine-health dataset (the Azure scenario).
//! let full = generate_dataset(&MachineHealthConfig {
//!     incidents: 10_000,
//!     seed: 7,
//! });
//!
//! // 2. Simulate a randomized deployment: reveal one action's reward per
//! //    incident, logged with its propensity.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let exploration = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
//!
//! // 3. Evaluate a candidate policy offline — without deploying it.
//! let candidate = ConstantPolicy::new(2); // always wait 3 minutes
//! let evaluator = OffPolicyEvaluator::new(EstimatorKind::Ips);
//! let estimate = evaluator.evaluate(&exploration, &candidate);
//! let truth = full.value_of_policy(&candidate).unwrap();
//! assert!((estimate.value - truth).abs() < 0.1);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `harvest-core` | contexts, policies, CB learners |
//! | [`estimators`] | `harvest-estimators` | IPS, SNIPS, DM, DR, bounds, A/B |
//! | [`logs`] | `harvest-log` | scavenging, propensity inference, rewards |
//! | [`simnet`] | `harvest-sim-net` | event queue, workloads, faults |
//! | [`lb`] | `harvest-sim-lb` | Nginx-style load-balancer simulator |
//! | [`cache`] | `harvest-sim-cache` | Redis-style cache simulator |
//! | [`mh`] | `harvest-sim-mh` | Azure-style machine-health simulator |
//! | [`serve`] | `harvest-serve` | online decision service (harvest → train → promote) |
//! | [`wire`] | `harvest-wire` | TCP front-end: framed protocol, admission control |
//! | [`obs`] | `harvest-obs` | decision tracer, histograms, Prometheus exposition |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The contextual-bandit framework (re-export of `harvest-core`).
pub mod core {
    pub use harvest_core::*;
}

/// Off-policy estimators and bounds (re-export of `harvest-estimators`).
pub mod estimators {
    pub use harvest_estimators::*;
}

/// Log scavenging pipeline (re-export of `harvest-log`).
pub mod logs {
    pub use harvest_log::*;
}

/// Discrete-event simulation substrate (re-export of `harvest-sim-net`).
pub mod simnet {
    pub use harvest_sim_net::*;
}

/// Load-balancer simulator (re-export of `harvest-sim-lb`).
pub mod lb {
    pub use harvest_sim_lb::*;
}

/// Cache simulator (re-export of `harvest-sim-cache`).
pub mod cache {
    pub use harvest_sim_cache::*;
}

/// Machine-health simulator (re-export of `harvest-sim-mh`).
pub mod mh {
    pub use harvest_sim_mh::*;
}

/// Online decision service (re-export of `harvest-serve`).
pub mod serve {
    pub use harvest_serve::*;
}

/// Socket front-end for the decision service (re-export of `harvest-wire`).
pub mod wire {
    pub use harvest_wire::*;
}

/// Observability primitives (re-export of `harvest-obs`).
pub mod obs {
    pub use harvest_obs::*;
}

/// One error type for the whole facade surface.
///
/// Application code driving the serve loop otherwise juggles
/// [`ServeError`](harvest_serve::ServeError) from decisions and training,
/// [`std::io::Error`] from segment persistence and shutdown, and
/// [`HarvestError`](harvest_core::HarvestError) from the offline pipeline.
/// All three convert into `harvest::Error` via `?`.
#[derive(Debug)]
pub enum Error {
    /// The decision service refused or failed an operation.
    Serve(harvest_serve::ServeError),
    /// The offline harvest/estimation pipeline failed.
    Harvest(harvest_core::HarvestError),
    /// Segment persistence, recovery, or shutdown I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Serve(e) => write!(f, "serve: {e}"),
            Error::Harvest(e) => write!(f, "harvest: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Serve(e) => Some(e),
            Error::Harvest(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<harvest_serve::ServeError> for Error {
    fn from(e: harvest_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<harvest_core::HarvestError> for Error {
    fn from(e: harvest_core::HarvestError) -> Self {
        Error::Harvest(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// The names an application driving the serve loop almost always needs.
///
/// ```
/// use harvest::prelude::*;
///
/// fn run() -> Result<(), harvest::Error> {
///     let cfg = ServeConfig::builder()
///         .shards(2)
///         .epsilon(0.1)
///         .master_seed(42)
///         .build()?;
///     let svc = DecisionService::new(cfg, MemorySegments::new());
///     let ctx = SimpleContext::new(vec![0.5], 4);
///     let d = svc.decide(0, 0, &ctx)?;
///     svc.reward(d.request_id, 50, 1.0);
///     svc.shutdown()?;
///     Ok(())
/// }
/// run().unwrap();
/// ```
pub mod prelude {
    pub use harvest_core::{Context, SimpleContext};
    pub use harvest_estimators::{
        Candidate, Estimator, EstimatorKind, EvaluatorConfig, GreedyScorerCandidate,
        LeaderboardEntry, OffPolicyEvaluator, PolicyEstimate, PortfolioEvaluator, PortfolioReport,
    };
    pub use harvest_log::record::LogRecord;
    pub use harvest_log::segment::MemorySegments;
    pub use harvest_serve::{
        Backpressure, BreakerConfig, ChaosPlan, Decision, DecisionBatch, DecisionService,
        EngineConfig, GateConfig, GateEstimator, JoinOutcome, LoggerConfig, ObsConfig, ServeConfig,
        ServeError, ServePolicy, SupervisorConfig, TrainerConfig,
    };
    pub use harvest_wire::{
        Connection, Request, Response, TcpClient, TcpServer, Transport, WireConfig, WireCore,
    };

    pub use crate::Error;
}

//! Scorers: per-(context, action) values that drive greedy and softmax
//! policies and serve as reward models for direct-method / doubly-robust
//! estimation.

use serde::{Deserialize, Serialize};

use crate::context::{phi, phi_shared, Context};

/// Assigns a score to each action in a context. Higher is better.
///
/// The same trait serves two roles: a *policy driver* (greedy/softmax pick
/// by score) and a *reward model* (direct-method and doubly-robust
/// estimators use scores as predicted rewards `r̂(x, a)`).
pub trait Scorer<C: Context> {
    /// The score of taking `action` in `ctx`.
    fn score(&self, ctx: &C, action: usize) -> f64;

    /// Scores for every eligible action.
    fn scores(&self, ctx: &C) -> Vec<f64> {
        (0..ctx.num_actions()).map(|a| self.score(ctx, a)).collect()
    }
}

impl<C: Context, S: Scorer<C> + ?Sized> Scorer<C> for &S {
    fn score(&self, ctx: &C, action: usize) -> f64 {
        (**self).score(ctx, action)
    }
}

impl<C: Context> Scorer<C> for Box<dyn Scorer<C> + '_> {
    fn score(&self, ctx: &C, action: usize) -> f64 {
        (**self).score(ctx, action)
    }
}

/// A linear model over the assembled feature vector.
///
/// Two variants matching the two modeling modes:
///
/// * [`LinearScorer::PerAction`] — one weight vector per action slot over
///   `φ_shared(x) = [shared ‖ 1]`. Right when actions are fixed semantic
///   slots (wait times, named servers). If a context offers more actions
///   than there are weight vectors, extra actions score `-∞` (never chosen
///   greedily).
/// * [`LinearScorer::Pooled`] — a single weight vector over
///   `φ(x, a) = [shared ‖ action_features(a) ‖ 1]`. Right when actions are
///   interchangeable candidates described by features (eviction candidates),
///   so the action set may vary per context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinearScorer {
    /// One weight vector per action slot.
    PerAction {
        /// `weights[a]` scores action `a` against `phi_shared(ctx)`.
        weights: Vec<Vec<f64>>,
    },
    /// One pooled weight vector over `phi(ctx, a)`.
    Pooled {
        /// Scores any action against `phi(ctx, a)`.
        weights: Vec<f64>,
    },
}

impl LinearScorer {
    /// A per-action scorer of all-zero weights, `k` actions of shared
    /// feature dimension `shared_dim` (bias included automatically).
    pub fn zero_per_action(k: usize, shared_dim: usize) -> Self {
        LinearScorer::PerAction {
            weights: vec![vec![0.0; shared_dim + 1]; k],
        }
    }

    /// A pooled scorer of all-zero weights over `phi` dimension
    /// `shared_dim + action_dim + 1`.
    pub fn zero_pooled(shared_dim: usize, action_dim: usize) -> Self {
        LinearScorer::Pooled {
            weights: vec![0.0; shared_dim + action_dim + 1],
        }
    }

    fn dot(w: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), x.len(), "weight/feature dimension mismatch");
        w.iter().zip(x).map(|(a, b)| a * b).sum()
    }
}

impl<C: Context> Scorer<C> for LinearScorer {
    fn score(&self, ctx: &C, action: usize) -> f64 {
        match self {
            LinearScorer::PerAction { weights } => match weights.get(action) {
                Some(w) => Self::dot(w, &phi_shared(ctx)),
                None => f64::NEG_INFINITY,
            },
            LinearScorer::Pooled { weights } => Self::dot(weights, &phi(ctx, action)),
        }
    }
}

/// A context-independent score table — one value per action. The simplest
/// possible reward model (a multi-armed-bandit estimate); useful as a
/// baseline and in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableScorer {
    values: Vec<f64>,
}

impl TableScorer {
    /// A table scorer with fixed per-action values.
    pub fn new(values: Vec<f64>) -> Self {
        TableScorer { values }
    }

    /// The per-action values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl<C: Context> Scorer<C> for TableScorer {
    fn score(&self, _ctx: &C, action: usize) -> f64 {
        self.values
            .get(action)
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// Negates another scorer. Converts cost models (latency, downtime — the
/// paper's `[-]` rewards) into reward models and vice versa.
#[derive(Debug, Clone)]
pub struct Negated<S>(pub S);

impl<C: Context, S: Scorer<C>> Scorer<C> for Negated<S> {
    fn score(&self, ctx: &C, action: usize) -> f64 {
        -self.0.score(ctx, action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;

    #[test]
    fn per_action_scores_with_bias() {
        let s = LinearScorer::PerAction {
            // score_0 = 2*x + 1; score_1 = -x.
            weights: vec![vec![2.0, 1.0], vec![-1.0, 0.0]],
        };
        let ctx = SimpleContext::new(vec![3.0], 2);
        assert_eq!(s.score(&ctx, 0), 7.0);
        assert_eq!(s.score(&ctx, 1), -3.0);
        assert_eq!(s.scores(&ctx), vec![7.0, -3.0]);
    }

    #[test]
    fn per_action_out_of_table_scores_neg_inf() {
        let s = LinearScorer::zero_per_action(2, 1);
        let ctx = SimpleContext::new(vec![0.0], 3);
        assert_eq!(s.score(&ctx, 2), f64::NEG_INFINITY);
    }

    #[test]
    fn pooled_scores_action_features() {
        // score = 1*shared + 10*af + 100 (bias).
        let s = LinearScorer::Pooled {
            weights: vec![1.0, 10.0, 100.0],
        };
        let ctx = SimpleContext::with_action_features(vec![2.0], vec![vec![0.5], vec![-0.5]]);
        assert_eq!(s.score(&ctx, 0), 2.0 + 5.0 + 100.0);
        assert_eq!(s.score(&ctx, 1), 2.0 - 5.0 + 100.0);
    }

    #[test]
    fn zero_constructors_have_right_dims() {
        let ctx = SimpleContext::with_action_features(vec![1.0, 2.0], vec![vec![3.0]]);
        let p = LinearScorer::zero_pooled(2, 1);
        assert_eq!(p.score(&ctx, 0), 0.0);
        let pa = LinearScorer::zero_per_action(1, 2);
        assert_eq!(pa.score(&ctx, 0), 0.0);
    }

    #[test]
    fn table_scorer_ignores_context() {
        let s = TableScorer::new(vec![0.1, 0.9]);
        let a = SimpleContext::new(vec![1.0], 2);
        let b = SimpleContext::new(vec![-9.0], 2);
        assert_eq!(s.score(&a, 1), s.score(&b, 1));
        assert_eq!(s.score(&a, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn negated_flips_sign() {
        let s = Negated(TableScorer::new(vec![2.0, -3.0]));
        let ctx = SimpleContext::contextless(2);
        assert_eq!(s.score(&ctx, 0), -2.0);
        assert_eq!(s.score(&ctx, 1), 3.0);
    }

    #[test]
    fn scorer_usable_through_references_and_boxes() {
        let t = TableScorer::new(vec![1.0]);
        let ctx = SimpleContext::contextless(1);
        let r: &dyn Scorer<SimpleContext> = &t;
        assert_eq!(r.score(&ctx, 0), 1.0);
        let b: Box<dyn Scorer<SimpleContext>> = Box::new(t);
        assert_eq!(b.score(&ctx, 0), 1.0);
    }
}

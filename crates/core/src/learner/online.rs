//! The online epoch-greedy learner.

use rand::Rng;

use crate::context::{phi_shared, Context};
use crate::error::HarvestError;
use crate::policy::GreedyPolicy;
use crate::regression::SgdRegressor;
use crate::scorer::LinearScorer;

/// An online CB learner in the spirit of epoch-greedy (Langford & Zhang):
/// explore uniformly with probability `ε_t`, exploit the current greedy
/// policy otherwise, and update per-action SGD reward models from every
/// observed reward.
///
/// The exploration schedule is `ε_t = max(ε_min, ε₀ / (1 + t/τ))`: early
/// rounds explore heavily, later rounds keep the floor `ε_min > 0` so the
/// data stream remains harvestable (every action keeps nonzero propensity —
/// Eq. 1 needs `ε > 0` forever).
///
/// `EpochGreedyLearner` is itself a randomized logging policy: [`act`]
/// returns the action together with its exact propensity, so the decisions
/// it makes can be logged as `⟨x, a, r, p⟩` and harvested later — the
/// continuous-learning loop of paper §3.
///
/// [`act`]: EpochGreedyLearner::act
#[derive(Debug, Clone)]
pub struct EpochGreedyLearner {
    models: Vec<SgdRegressor>,
    shared_dim: usize,
    eps0: f64,
    eps_min: f64,
    tau: f64,
    t: u64,
}

impl EpochGreedyLearner {
    /// Creates a learner over `k` action slots with shared feature
    /// dimension `shared_dim`.
    ///
    /// * `eps0` — initial exploration fraction, in `(0, 1]`.
    /// * `eps_min` — exploration floor, in `(0, eps0]`.
    /// * `tau` — schedule half-life in rounds (positive).
    pub fn new(
        k: usize,
        shared_dim: usize,
        eps0: f64,
        eps_min: f64,
        tau: f64,
    ) -> Result<Self, HarvestError> {
        if k == 0 {
            return Err(HarvestError::InvalidParameter {
                name: "k",
                message: "need at least one action".to_string(),
            });
        }
        if !(eps0 > 0.0 && eps0 <= 1.0) {
            return Err(HarvestError::InvalidParameter {
                name: "eps0",
                message: format!("must be in (0, 1], got {eps0}"),
            });
        }
        if !(eps_min > 0.0 && eps_min <= eps0) {
            return Err(HarvestError::InvalidParameter {
                name: "eps_min",
                message: format!("must be in (0, eps0], got {eps_min}"),
            });
        }
        if !(tau.is_finite() && tau > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "tau",
                message: format!("must be positive, got {tau}"),
            });
        }
        let models = (0..k)
            .map(|_| SgdRegressor::new(shared_dim + 1, 0.1, 0.001))
            .collect::<Result<_, _>>()?;
        Ok(EpochGreedyLearner {
            models,
            shared_dim,
            eps0,
            eps_min,
            tau,
            t: 0,
        })
    }

    /// The current exploration fraction.
    pub fn epsilon(&self) -> f64 {
        (self.eps0 / (1.0 + self.t as f64 / self.tau)).max(self.eps_min)
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> u64 {
        self.t
    }

    fn greedy_action<C: Context>(&self, ctx: &C) -> usize {
        let x = phi_shared(ctx);
        let k = ctx.num_actions().min(self.models.len());
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (a, m) in self.models.iter().take(k).enumerate() {
            let s = m.predict(&x);
            if s > best_score {
                best_score = s;
                best = a;
            }
        }
        best
    }

    /// Chooses an action for `ctx` and returns it with its exact propensity.
    ///
    /// The distribution is ε-greedy over the current models: the greedy
    /// action has probability `1 − ε + ε/K`, every other action `ε/K`.
    pub fn act<C: Context, R: Rng + ?Sized>(&mut self, ctx: &C, rng: &mut R) -> (usize, f64) {
        let eps = self.epsilon();
        let k = ctx.num_actions().min(self.models.len());
        let greedy = self.greedy_action(ctx);
        let floor = eps / k as f64;
        let action = if rng.gen_bool(eps) {
            rng.gen_range(0..k)
        } else {
            greedy
        };
        self.t += 1;
        let p = if action == greedy {
            1.0 - eps + floor
        } else {
            floor
        };
        (action, p)
    }

    /// Feeds back the observed reward for a decision. Call once per [`act`].
    ///
    /// [`act`]: EpochGreedyLearner::act
    pub fn learn<C: Context>(&mut self, ctx: &C, action: usize, reward: f64) {
        let x = phi_shared(ctx);
        debug_assert_eq!(x.len(), self.shared_dim + 1, "context dimension changed");
        if let Some(m) = self.models.get_mut(action) {
            m.update(&x, reward, 1.0);
        }
    }

    /// Snapshot of the current reward models as a [`LinearScorer`].
    pub fn scorer(&self) -> LinearScorer {
        LinearScorer::PerAction {
            weights: self.models.iter().map(|m| m.to_model().weights).collect(),
        }
    }

    /// Snapshot of the current greedy (exploitation) policy.
    pub fn policy(&self) -> GreedyPolicy<LinearScorer> {
        GreedyPolicy::new(self.scorer()).named("epoch-greedy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::Policy;
    use rand::SeedableRng;

    #[test]
    fn epsilon_schedule_decays_to_floor() {
        let mut l = EpochGreedyLearner::new(2, 1, 1.0, 0.05, 100.0).unwrap();
        assert_eq!(l.epsilon(), 1.0);
        let ctx = SimpleContext::new(vec![0.0], 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            let (a, _p) = l.act(&ctx, &mut rng);
            l.learn(&ctx, a, 0.0);
        }
        assert!((l.epsilon() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn propensities_are_correct() {
        let mut l = EpochGreedyLearner::new(4, 1, 0.2, 0.2, 1e12).unwrap();
        let ctx = SimpleContext::new(vec![1.0], 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut greedy_p = None;
        let mut explore_p = None;
        for _ in 0..200 {
            let greedy = l.greedy_action(&ctx);
            let (a, p) = l.act(&ctx, &mut rng);
            if a == greedy {
                greedy_p = Some(p);
            } else {
                explore_p = Some(p);
            }
        }
        assert!((greedy_p.unwrap() - (0.8 + 0.05)).abs() < 1e-12);
        assert!((explore_p.unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn learns_context_dependent_optimum_online() {
        // Action 0 pays x, action 1 pays 1-x.
        let mut l = EpochGreedyLearner::new(2, 1, 0.5, 0.05, 500.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..8000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let (a, _p) = l.act(&ctx, &mut rng);
            let r = if a == 0 { x } else { 1.0 - x };
            l.learn(&ctx, a, r);
        }
        let pol = l.policy();
        assert_eq!(pol.choose(&SimpleContext::new(vec![0.95], 2)), 0);
        assert_eq!(pol.choose(&SimpleContext::new(vec![0.05], 2)), 1);
    }

    #[test]
    fn cumulative_reward_beats_uniform() {
        // On a bandit with a clearly best arm, epoch-greedy must out-earn
        // uniform random over the same horizon.
        let mut l = EpochGreedyLearner::new(3, 0, 0.5, 0.05, 200.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let arm_means = [0.2, 0.8, 0.4];
        let ctx = SimpleContext::contextless(3);
        let mut learner_total = 0.0;
        let mut uniform_total = 0.0;
        let n = 5000;
        for _ in 0..n {
            let (a, _) = l.act(&ctx, &mut rng);
            let r = arm_means[a] + rng.gen_range(-0.1..0.1);
            l.learn(&ctx, a, r);
            learner_total += r;
            let ua = rng.gen_range(0..3usize);
            uniform_total += arm_means[ua] + rng.gen_range(-0.1..0.1);
        }
        assert!(
            learner_total > uniform_total + 0.1 * n as f64 * 0.3,
            "learner {learner_total} vs uniform {uniform_total}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(EpochGreedyLearner::new(0, 1, 0.5, 0.1, 10.0).is_err());
        assert!(EpochGreedyLearner::new(2, 1, 0.0, 0.1, 10.0).is_err());
        assert!(EpochGreedyLearner::new(2, 1, 0.5, 0.0, 10.0).is_err());
        assert!(EpochGreedyLearner::new(2, 1, 0.5, 0.6, 10.0).is_err());
        assert!(EpochGreedyLearner::new(2, 1, 0.5, 0.1, 0.0).is_err());
    }

    #[test]
    fn smaller_contexts_restrict_the_action_set() {
        let mut l = EpochGreedyLearner::new(5, 0, 1.0, 1.0, 10.0).unwrap();
        let ctx = SimpleContext::contextless(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let (a, p) = l.act(&ctx, &mut rng);
            assert!(a < 2);
            assert!((p - 0.5).abs() < 1e-12);
        }
    }
}

//! The batch regression CB learner.

use crate::context::{phi, phi_dim, phi_shared, Context};
use crate::error::HarvestError;
use crate::policy::GreedyPolicy;
use crate::regression::RidgeRegression;
use crate::sample::Dataset;
use crate::scorer::LinearScorer;

/// How (context, action) pairs are featurized for the reward model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelingMode {
    /// One weight vector per action slot over shared features. Right when
    /// actions are fixed semantic slots (wait times 1–10 min, named
    /// servers).
    PerAction,
    /// One pooled weight vector over shared ‖ action features. Right when
    /// actions are interchangeable candidates (eviction candidates) and the
    /// action set varies per context.
    Pooled,
}

/// How logged samples are weighted when fitting the reward model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleWeighting {
    /// Every sample weighs 1. Unbiased when the logging policy's action
    /// choice is independent of context (e.g. uniform random); lower
    /// variance.
    Uniform,
    /// Weight each sample by `1/p`. Corrects the logging policy's
    /// context-dependent action preferences, at the cost of variance —
    /// the same bias/variance trade-off as IPS vs direct method.
    InversePropensity,
}

/// Reduces CB policy optimization to importance-weighted ridge regression.
///
/// Fit produces a [`LinearScorer`] reward model `r̂(x, a)`; acting greedily
/// on it is the learned policy. The model doubles as the reward predictor
/// for direct-method and doubly-robust estimation.
#[derive(Debug, Clone)]
pub struct RegressionCbLearner {
    mode: ModelingMode,
    weighting: SampleWeighting,
    lambda: f64,
}

impl RegressionCbLearner {
    /// Creates a learner. `lambda` is the ridge regularizer (must be
    /// positive).
    pub fn new(
        mode: ModelingMode,
        weighting: SampleWeighting,
        lambda: f64,
    ) -> Result<Self, HarvestError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "lambda",
                message: format!("must be positive, got {lambda}"),
            });
        }
        Ok(RegressionCbLearner {
            mode,
            weighting,
            lambda,
        })
    }

    /// A sensible default: per-action modeling, uniform weighting, λ = 1.
    pub fn default_per_action() -> Self {
        RegressionCbLearner {
            mode: ModelingMode::PerAction,
            weighting: SampleWeighting::Uniform,
            lambda: 1.0,
        }
    }

    /// A sensible default for candidate-style actions: pooled modeling.
    pub fn default_pooled() -> Self {
        RegressionCbLearner {
            mode: ModelingMode::Pooled,
            weighting: SampleWeighting::Uniform,
            lambda: 1.0,
        }
    }

    fn weight_of(&self, propensity: f64) -> f64 {
        match self.weighting {
            SampleWeighting::Uniform => 1.0,
            SampleWeighting::InversePropensity => 1.0 / propensity,
        }
    }

    /// Fits the reward model from exploration data.
    ///
    /// Only the logged action's reward is observed (partial feedback), so
    /// each sample updates exactly one action's model (per-action mode) or
    /// contributes one pooled row.
    pub fn fit<C: Context>(&self, data: &Dataset<C>) -> Result<LinearScorer, HarvestError> {
        if data.is_empty() {
            return Err(HarvestError::EmptyDataset);
        }
        match self.mode {
            ModelingMode::PerAction => {
                let k = data
                    .iter()
                    .map(|s| s.context.num_actions())
                    .max()
                    .expect("non-empty");
                let shared_dim = data.samples()[0].context.shared_features().len();
                let mut regs: Vec<RidgeRegression> = (0..k)
                    .map(|_| RidgeRegression::new(shared_dim + 1, self.lambda))
                    .collect::<Result<_, _>>()?;
                for s in data {
                    let x = phi_shared(&s.context);
                    if x.len() != shared_dim + 1 {
                        return Err(HarvestError::DimensionMismatch {
                            expected: shared_dim + 1,
                            got: x.len(),
                        });
                    }
                    regs[s.action].push(&x, s.reward, self.weight_of(s.propensity));
                }
                let weights = regs
                    .iter()
                    .map(|r| r.fit().map(|m| m.weights))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LinearScorer::PerAction { weights })
            }
            ModelingMode::Pooled => {
                let dim = phi_dim(&data.samples()[0].context);
                let mut reg = RidgeRegression::new(dim, self.lambda)?;
                for s in data {
                    let x = phi(&s.context, s.action);
                    if x.len() != dim {
                        return Err(HarvestError::DimensionMismatch {
                            expected: dim,
                            got: x.len(),
                        });
                    }
                    reg.push(&x, s.reward, self.weight_of(s.propensity));
                }
                Ok(LinearScorer::Pooled {
                    weights: reg.fit()?.weights,
                })
            }
        }
    }

    /// Fits and wraps the model in a greedy policy.
    pub fn fit_policy<C: Context>(
        &self,
        data: &Dataset<C>,
    ) -> Result<GreedyPolicy<LinearScorer>, HarvestError> {
        Ok(GreedyPolicy::new(self.fit(data)?).named("cb-policy"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::{Policy, StochasticPolicy, UniformPolicy};
    use crate::sample::LoggedDecision;
    use rand::Rng;
    use rand::SeedableRng;

    /// Builds exploration data where action 0's reward is `x` and action
    /// 1's reward is `1 - x`, logged by uniform random.
    fn crossing_dataset(n: usize, seed: u64) -> Dataset<SimpleContext> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pol = UniformPolicy::new();
        let mut data = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let (a, p) = pol.sample(&ctx, &mut rng);
            let r = if a == 0 { x } else { 1.0 - x };
            data.push(LoggedDecision {
                context: ctx,
                action: a,
                reward: r,
                propensity: p,
            })
            .unwrap();
        }
        data
    }

    #[test]
    fn per_action_learner_finds_crossing_policy() {
        let data = crossing_dataset(2000, 1);
        let learner =
            RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-3)
                .unwrap();
        let policy = learner.fit_policy(&data).unwrap();
        // Optimal: action 0 iff x > 0.5.
        assert_eq!(policy.choose(&SimpleContext::new(vec![0.9], 2)), 0);
        assert_eq!(policy.choose(&SimpleContext::new(vec![0.1], 2)), 1);
    }

    #[test]
    fn pooled_learner_uses_action_features() {
        // Reward = action feature value; candidates vary per decision.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pol = UniformPolicy::new();
        let mut data = Dataset::new();
        for _ in 0..1000 {
            let feats: Vec<Vec<f64>> = (0..3).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
            let ctx = SimpleContext::with_action_features(vec![], feats.clone());
            let (a, p) = pol.sample(&ctx, &mut rng);
            data.push(LoggedDecision {
                context: ctx,
                action: a,
                reward: feats[a][0],
                propensity: p,
            })
            .unwrap();
        }
        let learner = RegressionCbLearner::default_pooled();
        let policy = learner.fit_policy(&data).unwrap();
        let test =
            SimpleContext::with_action_features(vec![], vec![vec![0.1], vec![0.9], vec![-0.5]]);
        assert_eq!(policy.choose(&test), 1);
    }

    #[test]
    fn ips_weighting_corrects_biased_logging() {
        // Logging policy prefers action 0 when x > 0.5 — its choice depends
        // on context, so the naive fit sees a skewed sample of contexts per
        // action. With IPS weighting the fit must still find the truth.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut data = Dataset::new();
        for _ in 0..4000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let p0 = if x > 0.5 { 0.9 } else { 0.1 };
            let a = if rng.gen_bool(p0) { 0 } else { 1 };
            let p = if a == 0 { p0 } else { 1.0 - p0 };
            let r = if a == 0 { x } else { 1.0 - x };
            data.push(LoggedDecision {
                context: ctx,
                action: a,
                reward: r,
                propensity: p,
            })
            .unwrap();
        }
        let learner = RegressionCbLearner::new(
            ModelingMode::PerAction,
            SampleWeighting::InversePropensity,
            1e-3,
        )
        .unwrap();
        let policy = learner.fit_policy(&data).unwrap();
        assert_eq!(policy.choose(&SimpleContext::new(vec![0.95], 2)), 0);
        assert_eq!(policy.choose(&SimpleContext::new(vec![0.05], 2)), 1);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let learner = RegressionCbLearner::default_per_action();
        let data: Dataset<SimpleContext> = Dataset::new();
        assert_eq!(learner.fit(&data), Err(HarvestError::EmptyDataset));
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(
            RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 0.0)
                .is_err()
        );
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let mut data = Dataset::new();
        data.push(LoggedDecision {
            context: SimpleContext::new(vec![1.0], 2),
            action: 0,
            reward: 0.5,
            propensity: 0.5,
        })
        .unwrap();
        data.push(LoggedDecision {
            context: SimpleContext::new(vec![1.0, 2.0], 2),
            action: 0,
            reward: 0.5,
            propensity: 0.5,
        })
        .unwrap();
        let learner = RegressionCbLearner::default_per_action();
        assert!(matches!(
            learner.fit(&data),
            Err(HarvestError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unexplored_action_gets_zero_model() {
        // All logged decisions took action 0; action 1's model is the ridge
        // minimizer (zero weights), so greedy prefers whichever model
        // predicts higher — here action 0 with positive rewards.
        let mut data = Dataset::new();
        for _ in 0..50 {
            data.push(LoggedDecision {
                context: SimpleContext::new(vec![1.0], 2),
                action: 0,
                reward: 1.0,
                propensity: 0.5,
            })
            .unwrap();
        }
        let learner = RegressionCbLearner::default_per_action();
        let policy = learner.fit_policy(&data).unwrap();
        assert_eq!(policy.choose(&SimpleContext::new(vec![1.0], 2)), 0);
    }
}

//! Contextual-bandit learners: policy optimization from logged data.
//!
//! Three learners, matching the paper's experiments:
//!
//! * [`RegressionCbLearner`] — the batch learner used for Fig 4 and the CB
//!   rows of Tables 2–3. It reduces CB learning to weighted regression: fit
//!   reward models `r̂(x, a)` on the logged (partial-feedback) data, then
//!   act greedily. "The CB algorithm learns a good estimator of each
//!   server's latency based on context, and greedily picking the lowest
//!   latency yields a good policy" (paper §5).
//! * [`EpochGreedyLearner`] — an online learner in the spirit of
//!   Langford–Zhang epoch-greedy: explore uniformly on a vanishing schedule,
//!   exploit the current greedy policy otherwise, and update per-action
//!   models incrementally. Produces its own exploration data (it *is* a
//!   randomized logging policy).
//! * [`IpsPolicyLearner`] — direct policy optimization: gradient ascent on
//!   the IPS objective over a softmax-linear policy template, no reward
//!   model at all (the "linear vectors" policy class of §4).
//! * [`SupervisedLearner`] — the full-feedback skyline of Fig 4: trains on
//!   the reward of *every* action, which only the machine-health scenario
//!   can provide. "An idealized baseline that cannot be deployed long-term."

mod batch;
mod ips_policy;
mod online;
mod supervised;

pub use batch::{ModelingMode, RegressionCbLearner, SampleWeighting};
pub use ips_policy::{IpsPolicyConfig, IpsPolicyLearner, SoftmaxLinearPolicy};
pub use online::EpochGreedyLearner;
pub use supervised::SupervisedLearner;

//! The full-feedback supervised skyline.

use crate::context::{phi_shared, Context};
use crate::error::HarvestError;
use crate::policy::GreedyPolicy;
use crate::regression::RidgeRegression;
use crate::sample::FullFeedbackDataset;
use crate::scorer::LinearScorer;

/// Trains per-action reward models from *full feedback* — the reward of
/// every action on every sample.
///
/// Only the machine-health scenario provides this (the safe default of
/// waiting the maximum time reveals all shorter waits, paper §3). It is the
/// idealized baseline of Fig 4: the CB learner, which sees only one action's
/// reward per sample, is measured by how close it gets to this skyline.
#[derive(Debug, Clone)]
pub struct SupervisedLearner {
    lambda: f64,
}

impl SupervisedLearner {
    /// Creates a supervised learner with ridge regularizer `lambda`
    /// (positive).
    pub fn new(lambda: f64) -> Result<Self, HarvestError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "lambda",
                message: format!("must be positive, got {lambda}"),
            });
        }
        Ok(SupervisedLearner { lambda })
    }

    /// Fits per-action models using every action's reward on every sample.
    pub fn fit<C: Context>(
        &self,
        data: &FullFeedbackDataset<C>,
    ) -> Result<LinearScorer, HarvestError> {
        if data.is_empty() {
            return Err(HarvestError::EmptyDataset);
        }
        let k = data
            .samples()
            .iter()
            .map(|s| s.context.num_actions())
            .max()
            .expect("non-empty");
        let shared_dim = data.samples()[0].context.shared_features().len();
        let mut regs: Vec<RidgeRegression> = (0..k)
            .map(|_| RidgeRegression::new(shared_dim + 1, self.lambda))
            .collect::<Result<_, _>>()?;
        for s in data.samples() {
            let x = phi_shared(&s.context);
            if x.len() != shared_dim + 1 {
                return Err(HarvestError::DimensionMismatch {
                    expected: shared_dim + 1,
                    got: x.len(),
                });
            }
            for (a, &r) in s.rewards.iter().enumerate() {
                regs[a].push(&x, r, 1.0);
            }
        }
        let weights = regs
            .iter()
            .map(|r| r.fit().map(|m| m.weights))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LinearScorer::PerAction { weights })
    }

    /// Fits and wraps in a greedy policy.
    pub fn fit_policy<C: Context>(
        &self,
        data: &FullFeedbackDataset<C>,
    ) -> Result<GreedyPolicy<LinearScorer>, HarvestError> {
        Ok(GreedyPolicy::new(self.fit(data)?).named("supervised"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::Policy;
    use crate::sample::FullFeedbackSample;
    use rand::Rng;
    use rand::SeedableRng;

    fn crossing_full_feedback(n: usize, seed: u64) -> FullFeedbackDataset<SimpleContext> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = FullFeedbackDataset::default();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            d.push(FullFeedbackSample {
                context: SimpleContext::new(vec![x], 2),
                rewards: vec![x, 1.0 - x],
            })
            .unwrap();
        }
        d
    }

    #[test]
    fn supervised_learner_recovers_optimal_policy() {
        let data = crossing_full_feedback(500, 1);
        let learner = SupervisedLearner::new(1e-3).unwrap();
        let pol = learner.fit_policy(&data).unwrap();
        assert_eq!(pol.choose(&SimpleContext::new(vec![0.9], 2)), 0);
        assert_eq!(pol.choose(&SimpleContext::new(vec![0.1], 2)), 1);
        // Its achieved value should be near the oracle.
        let v = data.value_of_policy(&pol).unwrap();
        let oracle = data.oracle_value().unwrap();
        assert!(oracle - v < 0.02, "value {v} vs oracle {oracle}");
    }

    #[test]
    fn supervised_beats_best_fixed_action_when_context_matters() {
        let data = crossing_full_feedback(500, 2);
        let learner = SupervisedLearner::new(1e-3).unwrap();
        let pol = learner.fit_policy(&data).unwrap();
        let v = data.value_of_policy(&pol).unwrap();
        let (_, fixed) = data.best_fixed_action().unwrap();
        assert!(v > fixed + 0.1, "contextual {v} vs fixed {fixed}");
    }

    #[test]
    fn empty_data_is_an_error() {
        let learner = SupervisedLearner::new(1.0).unwrap();
        let data: FullFeedbackDataset<SimpleContext> = FullFeedbackDataset::default();
        assert_eq!(learner.fit(&data), Err(HarvestError::EmptyDataset));
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(SupervisedLearner::new(0.0).is_err());
        assert!(SupervisedLearner::new(f64::NAN).is_err());
    }
}

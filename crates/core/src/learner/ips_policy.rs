//! Direct policy optimization on the IPS objective.
//!
//! The regression learner models rewards and acts greedily; this learner
//! skips the model and directly searches the policy template (paper §4:
//! "Typically Π is defined by a tunable template, such as decision trees,
//! neural nets, or linear vectors") for high IPS value. The policy is a
//! softmax-linear map `π(a|x) ∝ exp(w_a · φ(x))`, trained by gradient
//! ascent on the IPS-weighted log-likelihood surrogate
//!
//! ```text
//! J(w) = Σₜ (rₜ − b) / pₜ · log π(aₜ | xₜ)
//! ```
//!
//! with the mean IPS reward as baseline `b` (a standard variance-reduction
//! control variate: matching high-reward logged actions is pushed up,
//! matching below-baseline ones is pushed down).

use rand::Rng;

use crate::context::{phi_shared, Context};
use crate::error::HarvestError;
use crate::policy::{GreedyPolicy, StochasticPolicy};
use crate::sample::Dataset;
use crate::scorer::LinearScorer;

/// Hyperparameters for [`IpsPolicyLearner`].
#[derive(Debug, Clone, Copy)]
pub struct IpsPolicyConfig {
    /// Passes over the data.
    pub epochs: usize,
    /// Gradient-ascent step size.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Clip for per-sample importance weights `(r − b)/p` (magnitude).
    pub weight_clip: f64,
}

impl Default for IpsPolicyConfig {
    fn default() -> Self {
        IpsPolicyConfig {
            epochs: 30,
            learning_rate: 0.05,
            l2: 1e-4,
            weight_clip: 50.0,
        }
    }
}

/// A learned softmax-linear policy: stochastic by nature, with a greedy
/// (argmax-logit) deterministic mode for deployment.
#[derive(Debug, Clone)]
pub struct SoftmaxLinearPolicy {
    weights: Vec<Vec<f64>>,
}

impl SoftmaxLinearPolicy {
    fn logits<C: Context>(&self, ctx: &C) -> Vec<f64> {
        let x = phi_shared(ctx);
        let k = ctx.num_actions().min(self.weights.len());
        self.weights[..k]
            .iter()
            .map(|w| w.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// The equivalent per-action linear scorer (logits as scores).
    pub fn to_scorer(&self) -> LinearScorer {
        LinearScorer::PerAction {
            weights: self.weights.clone(),
        }
    }

    /// The deterministic argmax-logit policy for deployment.
    pub fn greedy(&self) -> GreedyPolicy<LinearScorer> {
        GreedyPolicy::new(self.to_scorer()).named("ips-policy")
    }
}

impl<C: Context> StochasticPolicy<C> for SoftmaxLinearPolicy {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let logits = self.logits(ctx);
        let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    fn sample<R: Rng + ?Sized>(&self, ctx: &C, rng: &mut R) -> (usize, f64) {
        let probs = self.action_probabilities(ctx);
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        for (a, &p) in probs.iter().enumerate() {
            cum += p;
            if u < cum {
                return (a, p);
            }
        }
        let last = probs.len() - 1;
        (last, probs[last])
    }

    fn name(&self) -> String {
        "softmax-linear".to_string()
    }
}

/// Trains [`SoftmaxLinearPolicy`] by gradient ascent on the IPS surrogate.
#[derive(Debug, Clone)]
pub struct IpsPolicyLearner {
    config: IpsPolicyConfig,
}

impl IpsPolicyLearner {
    /// Creates a learner.
    pub fn new(config: IpsPolicyConfig) -> Result<Self, HarvestError> {
        if !(config.learning_rate.is_finite() && config.learning_rate > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "learning_rate",
                message: format!("must be positive, got {}", config.learning_rate),
            });
        }
        if config.epochs == 0 {
            return Err(HarvestError::InvalidParameter {
                name: "epochs",
                message: "must be at least 1".to_string(),
            });
        }
        if config.weight_clip <= 0.0 || config.weight_clip.is_nan() {
            return Err(HarvestError::InvalidParameter {
                name: "weight_clip",
                message: "must be positive".to_string(),
            });
        }
        Ok(IpsPolicyLearner { config })
    }

    /// A learner with default hyperparameters.
    pub fn default_config() -> Self {
        IpsPolicyLearner {
            config: IpsPolicyConfig::default(),
        }
    }

    /// Fits the policy from exploration data.
    pub fn fit<C: Context>(&self, data: &Dataset<C>) -> Result<SoftmaxLinearPolicy, HarvestError> {
        if data.is_empty() {
            return Err(HarvestError::EmptyDataset);
        }
        let k = data
            .iter()
            .map(|s| s.context.num_actions())
            .max()
            .expect("non-empty");
        let dim = phi_shared(&data.samples()[0].context).len();

        // Baseline: the logging policy's IPS value estimate.
        let baseline = data.mean_logged_reward().unwrap_or(0.0);

        let cfg = &self.config;
        let mut policy = SoftmaxLinearPolicy {
            weights: vec![vec![0.0; dim]; k],
        };
        for epoch in 0..cfg.epochs {
            let lr = cfg.learning_rate / (1.0 + epoch as f64 * 0.2);
            for s in data {
                let x = phi_shared(&s.context);
                if x.len() != dim {
                    return Err(HarvestError::DimensionMismatch {
                        expected: dim,
                        got: x.len(),
                    });
                }
                let probs = policy.action_probabilities(&s.context);
                let w =
                    ((s.reward - baseline) / s.propensity).clamp(-cfg.weight_clip, cfg.weight_clip);
                // ∇ log π(a|x) for softmax: (1{a=j} − π(j|x)) · x.
                for (j, wj) in policy.weights.iter_mut().enumerate() {
                    let indicator = if j == s.action { 1.0 } else { 0.0 };
                    let pj = probs.get(j).copied().unwrap_or(0.0);
                    let g = w * (indicator - pj);
                    for (wi, &xi) in wj.iter_mut().zip(&x) {
                        *wi += lr * (g * xi - cfg.l2 * *wi);
                    }
                }
            }
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, UniformPolicy};
    use crate::sample::LoggedDecision;
    use crate::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    fn crossing_dataset(n: usize, seed: u64) -> Dataset<SimpleContext> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pol = UniformPolicy::new();
        let mut data = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let (a, p) = pol.sample(&ctx, &mut rng);
            let r = if a == 0 { x } else { -x };
            data.push(LoggedDecision {
                context: ctx,
                action: a,
                reward: r,
                propensity: p,
            })
            .unwrap();
        }
        data
    }

    #[test]
    fn learns_the_crossing_policy_without_a_reward_model() {
        let data = crossing_dataset(4000, 1);
        let learner = IpsPolicyLearner::default_config();
        let policy = learner.fit(&data).unwrap().greedy();
        assert_eq!(policy.choose(&SimpleContext::new(vec![0.8], 2)), 0);
        assert_eq!(policy.choose(&SimpleContext::new(vec![-0.8], 2)), 1);
    }

    #[test]
    fn stochastic_form_is_a_valid_distribution() {
        let data = crossing_dataset(500, 2);
        let policy = IpsPolicyLearner::default_config().fit(&data).unwrap();
        let ctx = SimpleContext::new(vec![0.3], 2);
        let probs = policy.action_probabilities(&ctx);
        crate::policy::validate_distribution(&probs).unwrap();
        // Sampling returns the reported propensity.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (a, p) = policy.sample(&ctx, &mut rng);
        assert!((p - probs[a]).abs() < 1e-12);
    }

    #[test]
    fn beats_best_constant_on_context_dependent_rewards() {
        let data = crossing_dataset(6000, 4);
        let policy = IpsPolicyLearner::default_config()
            .fit(&data)
            .unwrap()
            .greedy();
        // Evaluate exactly: E[r | follow policy] over fresh contexts.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut total = 0.0;
        let n = 2000;
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let a = policy.choose(&ctx);
            total += if a == 0 { x } else { -x };
        }
        let value = total / n as f64;
        // Optimal is E|x| = 0.5; any constant action scores 0.
        assert!(value > 0.35, "policy value {value}");
    }

    #[test]
    fn rejects_bad_config_and_empty_data() {
        assert!(IpsPolicyLearner::new(IpsPolicyConfig {
            learning_rate: 0.0,
            ..IpsPolicyConfig::default()
        })
        .is_err());
        assert!(IpsPolicyLearner::new(IpsPolicyConfig {
            epochs: 0,
            ..IpsPolicyConfig::default()
        })
        .is_err());
        let empty: Dataset<SimpleContext> = Dataset::new();
        assert!(matches!(
            IpsPolicyLearner::default_config().fit(&empty),
            Err(HarvestError::EmptyDataset)
        ));
    }

    #[test]
    fn weight_clipping_survives_tiny_propensities() {
        let mut data = Dataset::new();
        for i in 0..100 {
            data.push(LoggedDecision {
                context: SimpleContext::new(vec![i as f64 / 100.0], 2),
                action: i % 2,
                reward: 1.0,
                propensity: 0.001, // huge importance weights
            })
            .unwrap();
        }
        let policy = IpsPolicyLearner::default_config().fit(&data).unwrap();
        let probs = policy.action_probabilities(&SimpleContext::new(vec![0.5], 2));
        assert!(probs.iter().all(|p| p.is_finite()));
    }
}

//! Error type shared across the CB framework.

use std::fmt;

/// Errors produced by the contextual-bandit framework.
#[derive(Debug, Clone, PartialEq)]
pub enum HarvestError {
    /// A logged propensity was outside `(0, 1]` or non-finite. Off-policy
    /// estimators are undefined for zero propensities (paper §4: "the
    /// estimate is defined only if p > 0").
    InvalidPropensity {
        /// The offending value.
        value: f64,
        /// Index of the sample within its dataset, if known.
        index: Option<usize>,
    },
    /// A reward was non-finite.
    InvalidReward {
        /// The offending value.
        value: f64,
    },
    /// A logged action index was out of range for its context's action set.
    ActionOutOfRange {
        /// The logged action.
        action: usize,
        /// The size of the context's action set.
        num_actions: usize,
    },
    /// An operation that needs data was given an empty dataset.
    EmptyDataset,
    /// Feature vectors of inconsistent dimension were mixed.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually seen.
        got: usize,
    },
    /// A linear system was singular (or not positive definite) and could not
    /// be solved. Usually means a regularizer of zero with collinear
    /// features.
    SingularSystem,
    /// A probability vector did not form a distribution (negative entries or
    /// sum far from one).
    InvalidDistribution {
        /// Sum of the offending vector.
        sum: f64,
    },
    /// A configuration parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        message: String,
    },
}

impl fmt::Display for HarvestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarvestError::InvalidPropensity { value, index } => match index {
                Some(i) => write!(
                    f,
                    "invalid propensity {value} at sample {i}; must be in (0, 1]"
                ),
                None => write!(f, "invalid propensity {value}; must be in (0, 1]"),
            },
            HarvestError::InvalidReward { value } => {
                write!(f, "invalid reward {value}; must be finite")
            }
            HarvestError::ActionOutOfRange {
                action,
                num_actions,
            } => {
                write!(f, "action {action} out of range for {num_actions} actions")
            }
            HarvestError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            HarvestError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
            HarvestError::SingularSystem => {
                write!(f, "linear system is singular or not positive definite")
            }
            HarvestError::InvalidDistribution { sum } => {
                write!(f, "probabilities do not form a distribution (sum = {sum})")
            }
            HarvestError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for HarvestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HarvestError::InvalidPropensity {
            value: 0.0,
            index: Some(3),
        };
        let s = e.to_string();
        assert!(s.contains("0") && s.contains("sample 3"), "{s}");

        let e = HarvestError::DimensionMismatch {
            expected: 4,
            got: 7,
        };
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&HarvestError::EmptyDataset);
    }
}

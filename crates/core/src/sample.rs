//! Exploration data: logged decisions and datasets.
//!
//! The unit of harvested data is the tuple `⟨x, a, r, p⟩` (paper §2): a
//! context, the action the deployed policy took, the reward observed for
//! that action only, and the propensity with which the action was chosen.
//! [`Dataset`] collects and validates them.
//!
//! The machine-health scenario additionally yields *full feedback*: the safe
//! default of waiting the maximum time reveals what would have happened at
//! every shorter wait (paper §3). [`FullFeedbackDataset`] models that and is
//! the source of both ground-truth policy values and simulated exploration
//! data.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::error::HarvestError;
use crate::policy::Policy;

/// One harvested exploration datapoint `⟨x, a, r, p⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedDecision<C> {
    /// The context observed at decision time.
    pub context: C,
    /// The action the deployed policy took.
    pub action: usize,
    /// The reward observed for that action.
    pub reward: f64,
    /// The probability with which the deployed policy chose `action`,
    /// in `(0, 1]`.
    pub propensity: f64,
}

impl<C: Context> LoggedDecision<C> {
    /// Validates this decision: finite reward, propensity in `(0, 1]`,
    /// action within the context's action set.
    pub fn validate(&self) -> Result<(), HarvestError> {
        if !self.reward.is_finite() {
            return Err(HarvestError::InvalidReward { value: self.reward });
        }
        if self.propensity <= 0.0 || self.propensity > 1.0 || !self.propensity.is_finite() {
            return Err(HarvestError::InvalidPropensity {
                value: self.propensity,
                index: None,
            });
        }
        if self.action >= self.context.num_actions() {
            return Err(HarvestError::ActionOutOfRange {
                action: self.action,
                num_actions: self.context.num_actions(),
            });
        }
        Ok(())
    }
}

/// A validated collection of exploration datapoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset<C> {
    samples: Vec<LoggedDecision<C>>,
}

impl<C> Default for Dataset<C> {
    fn default() -> Self {
        Dataset {
            samples: Vec::new(),
        }
    }
}

impl<C: Context> Dataset<C> {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dataset from samples, validating each.
    pub fn from_samples(samples: Vec<LoggedDecision<C>>) -> Result<Self, HarvestError> {
        for (i, s) in samples.iter().enumerate() {
            s.validate().map_err(|e| match e {
                HarvestError::InvalidPropensity { value, .. } => HarvestError::InvalidPropensity {
                    value,
                    index: Some(i),
                },
                other => other,
            })?;
        }
        Ok(Dataset { samples })
    }

    /// Appends one validated sample.
    pub fn push(&mut self, sample: LoggedDecision<C>) -> Result<(), HarvestError> {
        sample.validate()?;
        self.samples.push(sample);
        Ok(())
    }

    /// The samples in logging order.
    pub fn samples(&self) -> &[LoggedDecision<C>] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, LoggedDecision<C>> {
        self.samples.iter()
    }

    /// The smallest propensity in the data — the `ε` of Eq. 1, which governs
    /// off-policy evaluation accuracy. `None` if empty.
    pub fn min_propensity(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.propensity)
            .min_by(|a, b| a.partial_cmp(b).expect("validated propensities"))
    }

    /// Observed reward range `(min, max)`. `None` if empty.
    pub fn reward_range(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.samples {
            lo = lo.min(s.reward);
            hi = hi.max(s.reward);
        }
        Some((lo, hi))
    }

    /// Mean logged reward — the on-policy (logging policy) value estimate.
    pub fn mean_logged_reward(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.reward).sum::<f64>() / self.samples.len() as f64)
    }

    /// Returns a dataset whose rewards are affinely rescaled to `[0, 1]`
    /// using the observed range, along with the `(offset, scale)` used, so
    /// estimates can be mapped back. Constant rewards map to 0.5.
    ///
    /// Eq. 1's guarantees assume rewards in `[0, 1]`; harvested rewards
    /// (latencies, downtimes) rarely are.
    pub fn normalized(&self) -> (Dataset<C>, RewardScaling)
    where
        C: Clone,
    {
        let (lo, hi) = self.reward_range().unwrap_or((0.0, 1.0));
        let scaling = RewardScaling::from_range(lo, hi);
        let samples = self
            .samples
            .iter()
            .map(|s| LoggedDecision {
                context: s.context.clone(),
                action: s.action,
                reward: scaling.apply(s.reward),
                propensity: s.propensity,
            })
            .collect();
        (Dataset { samples }, scaling)
    }

    /// Splits into `(train, test)` with the first `n_train` samples in
    /// train. Preserves logging order (time order), which is what a real
    /// deployment would do to avoid leaking the future into training.
    pub fn split_at(mut self, n_train: usize) -> (Dataset<C>, Dataset<C>) {
        let n = n_train.min(self.samples.len());
        let test = self.samples.split_off(n);
        (
            Dataset {
                samples: self.samples,
            },
            Dataset { samples: test },
        )
    }

    /// Randomly shuffles sample order in place (Fisher–Yates).
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.samples.swap(i, j);
        }
    }

    /// A dataset containing the first `n` samples (or all, if fewer).
    pub fn truncated(&self, n: usize) -> Dataset<C>
    where
        C: Clone,
    {
        Dataset {
            samples: self.samples[..n.min(self.samples.len())].to_vec(),
        }
    }
}

impl<C> IntoIterator for Dataset<C> {
    type Item = LoggedDecision<C>;
    type IntoIter = std::vec::IntoIter<LoggedDecision<C>>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a, C> IntoIterator for &'a Dataset<C> {
    type Item = &'a LoggedDecision<C>;
    type IntoIter = std::slice::Iter<'a, LoggedDecision<C>>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// The affine map used to normalize rewards to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardScaling {
    /// Subtracted before scaling.
    pub offset: f64,
    /// Multiplied after offsetting.
    pub scale: f64,
}

impl RewardScaling {
    /// Identity scaling.
    pub fn identity() -> Self {
        RewardScaling {
            offset: 0.0,
            scale: 1.0,
        }
    }

    /// Scaling that maps `[lo, hi]` onto `[0, 1]`. A degenerate range maps
    /// everything to 0.5.
    pub fn from_range(lo: f64, hi: f64) -> Self {
        if hi > lo {
            RewardScaling {
                offset: lo,
                scale: 1.0 / (hi - lo),
            }
        } else {
            RewardScaling {
                offset: lo - 0.5,
                scale: 1.0,
            }
        }
    }

    /// Maps a raw reward into normalized space.
    pub fn apply(&self, reward: f64) -> f64 {
        (reward - self.offset) * self.scale
    }

    /// Maps a normalized value back to raw reward units.
    pub fn invert(&self, normalized: f64) -> f64 {
        normalized / self.scale + self.offset
    }
}

/// One full-feedback datapoint: a context and the reward of *every* action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullFeedbackSample<C> {
    /// The context.
    pub context: C,
    /// `rewards[a]` is the reward action `a` would have obtained.
    pub rewards: Vec<f64>,
}

impl<C: Context> FullFeedbackSample<C> {
    /// Validates shape and finiteness.
    pub fn validate(&self) -> Result<(), HarvestError> {
        if self.rewards.len() != self.context.num_actions() {
            return Err(HarvestError::DimensionMismatch {
                expected: self.context.num_actions(),
                got: self.rewards.len(),
            });
        }
        for &r in &self.rewards {
            if !r.is_finite() {
                return Err(HarvestError::InvalidReward { value: r });
            }
        }
        Ok(())
    }

    /// The best action and its reward for this sample.
    pub fn best(&self) -> (usize, f64) {
        let mut best = 0;
        for (a, &r) in self.rewards.iter().enumerate() {
            if r > self.rewards[best] {
                best = a;
            }
        }
        (best, self.rewards[best])
    }
}

/// A supervised-style dataset with the counterfactual reward of every action
/// (the machine-health scenario, paper §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullFeedbackDataset<C> {
    samples: Vec<FullFeedbackSample<C>>,
}

impl<C> Default for FullFeedbackDataset<C> {
    fn default() -> Self {
        FullFeedbackDataset {
            samples: Vec::new(),
        }
    }
}

impl<C: Context> FullFeedbackDataset<C> {
    /// Builds a dataset from samples, validating each.
    pub fn from_samples(samples: Vec<FullFeedbackSample<C>>) -> Result<Self, HarvestError> {
        for s in &samples {
            s.validate()?;
        }
        Ok(FullFeedbackDataset { samples })
    }

    /// Appends one validated sample.
    pub fn push(&mut self, sample: FullFeedbackSample<C>) -> Result<(), HarvestError> {
        sample.validate()?;
        self.samples.push(sample);
        Ok(())
    }

    /// The samples.
    pub fn samples(&self) -> &[FullFeedbackSample<C>] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// **Ground truth**: the exact average reward `π` would obtain on this
    /// data. This is what off-policy estimates are compared against in
    /// Figs. 3–4.
    pub fn value_of_policy<P: Policy<C> + ?Sized>(&self, policy: &P) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let total: f64 = self
            .samples
            .iter()
            .map(|s| s.rewards[policy.choose(&s.context).min(s.rewards.len() - 1)])
            .sum();
        Some(total / self.samples.len() as f64)
    }

    /// Value of the pointwise-best action (the unreachable skyline).
    pub fn oracle_value(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let total: f64 = self.samples.iter().map(|s| s.best().1).sum();
        Some(total / self.samples.len() as f64)
    }

    /// Value of the best *constant* action, and which action that is.
    pub fn best_fixed_action(&self) -> Option<(usize, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let k = self.samples[0].rewards.len();
        let mut best: Option<(usize, f64)> = None;
        for a in 0..k {
            let v: f64 = self
                .samples
                .iter()
                .map(|s| *s.rewards.get(a).unwrap_or(&f64::NEG_INFINITY))
                .sum::<f64>()
                / self.samples.len() as f64;
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        best
    }

    /// Splits into `(train, test)` at `n_train`.
    pub fn split_at(mut self, n_train: usize) -> (Self, Self) {
        let n = n_train.min(self.samples.len());
        let test = self.samples.split_off(n);
        (
            FullFeedbackDataset {
                samples: self.samples,
            },
            FullFeedbackDataset { samples: test },
        )
    }

    /// Reward range across all actions and samples.
    pub fn reward_range(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.samples {
            for &r in &s.rewards {
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::ConstantPolicy;

    fn ctx(k: usize) -> SimpleContext {
        SimpleContext::new(vec![1.0], k)
    }

    fn decision(a: usize, r: f64, p: f64) -> LoggedDecision<SimpleContext> {
        LoggedDecision {
            context: ctx(3),
            action: a,
            reward: r,
            propensity: p,
        }
    }

    #[test]
    fn validation_rejects_bad_propensity() {
        assert!(matches!(
            decision(0, 1.0, 0.0).validate(),
            Err(HarvestError::InvalidPropensity { .. })
        ));
        assert!(matches!(
            decision(0, 1.0, 1.5).validate(),
            Err(HarvestError::InvalidPropensity { .. })
        ));
        assert!(decision(0, 1.0, 1.0).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_action_and_reward() {
        assert!(matches!(
            decision(3, 1.0, 0.5).validate(),
            Err(HarvestError::ActionOutOfRange { .. })
        ));
        assert!(matches!(
            decision(0, f64::NAN, 0.5).validate(),
            Err(HarvestError::InvalidReward { .. })
        ));
    }

    #[test]
    fn from_samples_reports_offending_index() {
        let err =
            Dataset::from_samples(vec![decision(0, 1.0, 0.5), decision(1, 1.0, -0.1)]).unwrap_err();
        assert_eq!(
            err,
            HarvestError::InvalidPropensity {
                value: -0.1,
                index: Some(1)
            }
        );
    }

    #[test]
    fn min_propensity_and_range() {
        let d = Dataset::from_samples(vec![
            decision(0, 2.0, 0.5),
            decision(1, -1.0, 0.25),
            decision(2, 4.0, 1.0),
        ])
        .unwrap();
        assert_eq!(d.min_propensity(), Some(0.25));
        assert_eq!(d.reward_range(), Some((-1.0, 4.0)));
        assert!((d.mean_logged_reward().unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_round_trips() {
        let d = Dataset::from_samples(vec![decision(0, -2.0, 0.5), decision(1, 8.0, 0.5)]).unwrap();
        let (nd, scaling) = d.normalized();
        assert_eq!(nd.reward_range(), Some((0.0, 1.0)));
        assert_eq!(scaling.invert(scaling.apply(3.0)), 3.0);
        assert_eq!(scaling.apply(-2.0), 0.0);
        assert_eq!(scaling.apply(8.0), 1.0);
    }

    #[test]
    fn normalization_of_constant_rewards() {
        let d = Dataset::from_samples(vec![decision(0, 5.0, 0.5), decision(1, 5.0, 0.5)]).unwrap();
        let (nd, _) = d.normalized();
        assert!(nd.iter().all(|s| s.reward == 0.5));
    }

    #[test]
    fn split_preserves_order() {
        let d =
            Dataset::from_samples((0..10).map(|i| decision(0, i as f64, 0.5)).collect()).unwrap();
        let (train, test) = d.split_at(7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(test.samples()[0].reward, 7.0);
    }

    #[test]
    fn split_beyond_len_is_safe() {
        let d = Dataset::from_samples(vec![decision(0, 1.0, 0.5)]).unwrap();
        let (train, test) = d.split_at(100);
        assert_eq!(train.len(), 1);
        assert!(test.is_empty());
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use rand::SeedableRng;
        let mk = || {
            Dataset::from_samples((0..20).map(|i| decision(0, i as f64, 0.5)).collect()).unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        a.shuffle(&mut rand::rngs::StdRng::seed_from_u64(5));
        b.shuffle(&mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut rewards: Vec<f64> = a.iter().map(|s| s.reward).collect();
        rewards.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(rewards, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn full_feedback_values() {
        let d = FullFeedbackDataset::from_samples(vec![
            FullFeedbackSample {
                context: ctx(3),
                rewards: vec![1.0, 0.0, 0.0],
            },
            FullFeedbackSample {
                context: ctx(3),
                rewards: vec![0.0, 2.0, 0.0],
            },
        ])
        .unwrap();
        assert_eq!(d.oracle_value(), Some(1.5));
        assert_eq!(d.best_fixed_action(), Some((1, 1.0)));
        let send0 = ConstantPolicy::new(0);
        assert_eq!(d.value_of_policy(&send0), Some(0.5));
        assert_eq!(d.reward_range(), Some((0.0, 2.0)));
    }

    #[test]
    fn full_feedback_validates_shape() {
        let bad = FullFeedbackSample {
            context: ctx(3),
            rewards: vec![1.0, 2.0],
        };
        assert!(matches!(
            bad.validate(),
            Err(HarvestError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_dataset_queries_are_none() {
        let d: Dataset<SimpleContext> = Dataset::new();
        assert_eq!(d.min_propensity(), None);
        assert_eq!(d.reward_range(), None);
        let f: FullFeedbackDataset<SimpleContext> = FullFeedbackDataset::default();
        assert_eq!(f.oracle_value(), None);
        assert_eq!(f.best_fixed_action(), None);
    }
}

//! Contextual-bandit (CB) framework for harvesting randomness in systems.
//!
//! This crate implements the machine-learning core of *Harvesting Randomness
//! to Optimize Distributed Systems* (HotNets'17): the `⟨x, a, r, p⟩`
//! exploration-data model, policies over contexts, and learners that
//! optimize policies from logged partial feedback.
//!
//! # The model
//!
//! An interaction is: observe a *context* `x`, take an *action* `a` from a
//! finite set, obtain a *reward* `r`. A deployed randomized policy records
//! the *propensity* `p` with which it chose `a`. The resulting tuples are
//! [`LoggedDecision`]s collected into a [`Dataset`]; off-policy estimators
//! (the `harvest-estimators` crate) consume them to evaluate any candidate
//! [`Policy`] offline.
//!
//! Contextual bandits add two independence assumptions (paper §2):
//! contexts are i.i.d. (**A1**) and rewards given (context, action) are
//! i.i.d. (**A2**). The simulators in this workspace deliberately include
//! scenarios that violate each, reproducing the paper's negative results.
//!
//! # Layout
//!
//! * [`context`] — the [`Context`] trait (shared + per-action features) and
//!   [`SimpleContext`], the standard implementation.
//! * [`sample`] — logged decisions, datasets, and *full-feedback* datasets
//!   (the machine-health scenario observes the reward of every action).
//! * [`policy`] — deterministic [`Policy`] and randomized
//!   [`StochasticPolicy`] traits with the standard implementations
//!   (constant, uniform, ε-greedy, softmax, weighted).
//! * [`scorer`] — the [`Scorer`] abstraction (a score per (context,
//!   action)) bridging reward models and greedy policies.
//! * [`linalg`] — small dense linear algebra (Cholesky solves) for ridge
//!   regression; hand-rolled because the reproduction mandate is to build
//!   estimators from scratch.
//! * [`regression`] — batch ridge and online SGD regressors with importance
//!   weighting.
//! * [`learner`] — CB learners: batch regression learner (per-action or
//!   pooled features), the online epoch-greedy algorithm, and the
//!   full-feedback supervised skyline.
//! * [`simulate`] — turning a full-feedback dataset into exploration data by
//!   revealing only a randomly chosen action's reward (paper §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod learner;
pub mod linalg;
pub mod policy;
pub mod regression;
pub mod sample;
pub mod scorer;
pub mod simulate;

pub use context::{Context, SimpleContext};
pub use error::HarvestError;
pub use policy::{Policy, StochasticPolicy};
pub use sample::{Dataset, FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
pub use scorer::Scorer;

//! Small dense linear algebra: just enough for ridge regression.
//!
//! Hand-rolled per the reproduction mandate (no external linear-algebra or
//! bandit crates). Provides a row-major [`Matrix`], Cholesky factorization
//! for symmetric positive-definite systems, and the vector helpers the
//! regressors need. Dimensions in this workspace are tiny (tens of
//! features), so clarity beats blocking/SIMD tricks.

use crate::error::HarvestError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from rows; all rows must share a length.
    ///
    /// # Panics
    ///
    /// Panics on ragged input or zero rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must share a length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds `value` to each diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Rank-1 symmetric update: `self += weight · x xᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `len(x) × len(x)`.
    pub fn rank1_update(&mut self, x: &[f64], weight: f64) {
        assert_eq!(self.rows, x.len(), "rank1 dimension mismatch");
        assert_eq!(self.cols, x.len(), "rank1 dimension mismatch");
        for i in 0..x.len() {
            let wxi = weight * x[i];
            for j in 0..x.len() {
                self[(i, j)] += wxi * x[j];
            }
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "mat_vec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                dot(row, x)
            })
            .collect()
    }

    /// Cholesky factorization `A = L Lᵀ` for a symmetric positive-definite
    /// matrix; returns the lower-triangular `L`.
    ///
    /// Fails with [`HarvestError::SingularSystem`] if a pivot is not
    /// strictly positive (matrix not PD, e.g. λ = 0 with collinear
    /// features).
    pub fn cholesky(&self) -> Result<Matrix, HarvestError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(HarvestError::SingularSystem);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A w = b` for symmetric positive-definite `A` (this matrix)
    /// via Cholesky: forward substitution then back substitution.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, HarvestError> {
        assert_eq!(self.rows, b.len(), "solve dimension mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Backward: Lᵀ w = y.
        let mut w = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * w[k];
            }
            w[i] = sum / l[(i, i)];
        }
        Ok(w)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`, in place.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let w = a.solve_spd(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(w, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // A = [[4,2],[2,3]], b = [2,1] => w = [0.5, 0].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let w = a.solve_spd(&[2.0, 1.0]).unwrap();
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!(w[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_matches_reference() {
        // Classic example: A = [[25,15,-5],[15,18,0],[-5,0,11]].
        let a = Matrix::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let l = a.cholesky().unwrap();
        let expect = [[5.0, 0.0, 0.0], [3.0, 3.0, 0.0], [-1.0, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert!((l[(i, j)] - expect[i][j]).abs() < 1e-12, "L[{i}][{j}]");
            }
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(a.solve_spd(&[1.0, 1.0]), Err(HarvestError::SingularSystem));
        // But ridge-regularizing it makes it solvable.
        let mut a2 = a.clone();
        a2.add_diagonal(0.1);
        assert!(a2.solve_spd(&[1.0, 1.0]).is_ok());
    }

    #[test]
    fn rank1_update_accumulates_gram_matrix() {
        let mut g = Matrix::zeros(2, 2);
        g.rank1_update(&[1.0, 2.0], 1.0);
        g.rank1_update(&[3.0, -1.0], 2.0);
        // G = [1,2]^T[1,2] + 2*[3,-1]^T[3,-1] = [[19,-4],[-4,6]].
        assert_eq!(g[(0, 0)], 19.0);
        assert_eq!(g[(0, 1)], -4.0);
        assert_eq!(g[(1, 0)], -4.0);
        assert_eq!(g[(1, 1)], 6.0);
    }

    #[test]
    fn mat_vec_multiplies() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_recovers_random_spd_solution() {
        // Build an SPD system from a random-ish Gram matrix and check the
        // residual, exercising larger dimensions.
        let n = 8;
        let mut g = Matrix::zeros(n, n);
        let mut rows = Vec::new();
        for i in 0..20 {
            let row: Vec<f64> = (0..n)
                .map(|j| ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.4)
                .collect();
            rows.push(row);
        }
        for r in &rows {
            g.rank1_update(r, 1.0);
        }
        g.add_diagonal(0.5);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let w = g.solve_spd(&b).unwrap();
        let r = g.mat_vec(&w);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9, "residual at {i}");
        }
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

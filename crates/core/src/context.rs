//! Contexts: what a policy sees when it makes a decision.
//!
//! A context carries two kinds of features:
//!
//! * **shared features** describe the world at decision time and are common
//!   to all actions — e.g. the machine's hardware SKU and failure history in
//!   the machine-health scenario;
//! * **per-action features** describe each eligible action — e.g. the open
//!   connection count of each backend server, or the size and recency of
//!   each eviction candidate.
//!
//! Splitting them lets learners choose between *per-action* modeling (one
//! weight vector per semantic action slot — right when actions are fixed,
//! like wait times 1–10 min) and *pooled* modeling (one weight vector over
//! action features — right when actions are interchangeable candidates,
//! like items sampled for eviction, where the action set changes per
//! decision).

use serde::{Deserialize, Serialize};

/// A decision context: shared features plus a finite action set, optionally
/// with per-action features.
///
/// Action indices are `0..num_actions()`. The action set — both its size and
/// the per-action features — may vary between contexts (paper Table 1: the
/// action set for cache eviction is "a subsample of items").
pub trait Context {
    /// Number of eligible actions in this context. Must be at least 1.
    fn num_actions(&self) -> usize;

    /// Features common to every action.
    fn shared_features(&self) -> &[f64];

    /// Features of a particular action. May be empty if actions carry no
    /// features (pure slot semantics).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()`.
    fn action_features(&self, action: usize) -> &[f64];

    /// Dimension of per-action feature vectors (0 if actions carry none).
    fn action_feature_dim(&self) -> usize {
        if self.num_actions() == 0 {
            0
        } else {
            self.action_features(0).len()
        }
    }
}

/// The standard owned context: a shared feature vector and either a plain
/// action count or explicit per-action feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleContext {
    shared: Vec<f64>,
    per_action: Vec<Vec<f64>>,
    num_actions: usize,
}

impl SimpleContext {
    /// A context with `num_actions` featureless actions.
    ///
    /// # Panics
    ///
    /// Panics if `num_actions == 0`.
    pub fn new(shared: Vec<f64>, num_actions: usize) -> Self {
        assert!(num_actions > 0, "a context needs at least one action");
        SimpleContext {
            shared,
            per_action: Vec::new(),
            num_actions,
        }
    }

    /// A context whose actions carry feature vectors (all the same length).
    ///
    /// # Panics
    ///
    /// Panics if `per_action` is empty or its vectors have differing
    /// lengths.
    pub fn with_action_features(shared: Vec<f64>, per_action: Vec<Vec<f64>>) -> Self {
        assert!(
            !per_action.is_empty(),
            "a context needs at least one action"
        );
        let dim = per_action[0].len();
        assert!(
            per_action.iter().all(|f| f.len() == dim),
            "per-action features must share a dimension"
        );
        let num_actions = per_action.len();
        SimpleContext {
            shared,
            per_action,
            num_actions,
        }
    }

    /// A context with no features at all — `num_actions` anonymous arms.
    /// Degenerates the contextual bandit to a plain multi-armed bandit;
    /// useful in tests and as a baseline.
    pub fn contextless(num_actions: usize) -> Self {
        SimpleContext::new(Vec::new(), num_actions)
    }
}

impl Context for SimpleContext {
    fn num_actions(&self) -> usize {
        self.num_actions
    }

    fn shared_features(&self) -> &[f64] {
        &self.shared
    }

    fn action_features(&self, action: usize) -> &[f64] {
        assert!(
            action < self.num_actions,
            "action {action} out of range for {} actions",
            self.num_actions
        );
        if self.per_action.is_empty() {
            &[]
        } else {
            &self.per_action[action]
        }
    }
}

/// Assembles the regression feature vector φ(x, a) for a (context, action)
/// pair: shared features, then the action's features, then a constant 1.0
/// bias term.
///
/// Every regressor and scorer in the workspace uses this same assembly, so
/// models trained by one component are usable by any other.
pub fn phi<C: Context>(ctx: &C, action: usize) -> Vec<f64> {
    let shared = ctx.shared_features();
    let af = ctx.action_features(action);
    let mut v = Vec::with_capacity(shared.len() + af.len() + 1);
    v.extend_from_slice(shared);
    v.extend_from_slice(af);
    v.push(1.0);
    v
}

/// Dimension of [`phi`] vectors for contexts shaped like `ctx`.
pub fn phi_dim<C: Context>(ctx: &C) -> usize {
    ctx.shared_features().len() + ctx.action_feature_dim() + 1
}

/// Assembles the shared-only feature vector (shared features plus bias),
/// used by per-action models that ignore action features.
pub fn phi_shared<C: Context>(ctx: &C) -> Vec<f64> {
    let shared = ctx.shared_features();
    let mut v = Vec::with_capacity(shared.len() + 1);
    v.extend_from_slice(shared);
    v.push(1.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_context_slot_actions() {
        let c = SimpleContext::new(vec![1.0, 2.0], 3);
        assert_eq!(c.num_actions(), 3);
        assert_eq!(c.shared_features(), &[1.0, 2.0]);
        assert_eq!(c.action_features(2), &[] as &[f64]);
        assert_eq!(c.action_feature_dim(), 0);
    }

    #[test]
    fn simple_context_with_action_features() {
        let c =
            SimpleContext::with_action_features(vec![0.5], vec![vec![1.0, 10.0], vec![2.0, 20.0]]);
        assert_eq!(c.num_actions(), 2);
        assert_eq!(c.action_features(1), &[2.0, 20.0]);
        assert_eq!(c.action_feature_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_action_panics() {
        let c = SimpleContext::new(vec![], 2);
        let _ = c.action_features(2);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_action_features_panic() {
        let _ = SimpleContext::with_action_features(vec![], vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn zero_actions_panic() {
        let _ = SimpleContext::new(vec![], 0);
    }

    #[test]
    fn phi_concatenates_with_bias() {
        let c = SimpleContext::with_action_features(vec![1.0, 2.0], vec![vec![3.0], vec![4.0]]);
        assert_eq!(phi(&c, 0), vec![1.0, 2.0, 3.0, 1.0]);
        assert_eq!(phi(&c, 1), vec![1.0, 2.0, 4.0, 1.0]);
        assert_eq!(phi_dim(&c), 4);
        assert_eq!(phi_shared(&c), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn contextless_has_only_bias() {
        let c = SimpleContext::contextless(4);
        assert_eq!(phi(&c, 3), vec![1.0]);
        assert_eq!(phi_dim(&c), 1);
    }

    #[test]
    fn serde_round_trip() {
        let c = SimpleContext::with_action_features(vec![1.0], vec![vec![2.0], vec![3.0]]);
        let json = serde_json::to_string(&c).unwrap();
        let back: SimpleContext = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

//! Regressors: batch ridge regression and online SGD, both with
//! per-sample importance weights.
//!
//! These are the "regression oracles" the CB learners reduce to. Importance
//! weights matter twice in this workspace: inverse-propensity weighting
//! de-biases reward models trained on exploration data, and the propensity
//! estimator in `harvest-log` reuses the same machinery.

use serde::{Deserialize, Serialize};

use crate::error::HarvestError;
use crate::linalg::{dot, Matrix};

/// A fitted linear model `ŷ = w · x` (any bias term is part of `x`, as
/// produced by [`crate::context::phi`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// The learned weights.
    pub weights: Vec<f64>,
}

impl LinearModel {
    /// A zero model of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        LinearModel {
            weights: vec![0.0; dim],
        }
    }

    /// Predicts `w · x`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x)
    }
}

/// Batch ridge regression via accumulated normal equations.
///
/// Minimizes `Σ wᵢ (yᵢ − w·xᵢ)² + λ‖w‖²`. Accumulation is streaming
/// (`XᵀWX` and `XᵀWy` only), so datasets never need to be materialized as
/// matrices; `fit` is O(d³) once.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    dim: usize,
    lambda: f64,
    xtx: Matrix,
    xty: Vec<f64>,
    n: usize,
}

impl RidgeRegression {
    /// Creates a ridge accumulator for feature dimension `dim` with
    /// regularizer `lambda`.
    ///
    /// `lambda` must be positive: λ = 0 with collinear features (common
    /// with one-hot encodings) yields a singular system.
    pub fn new(dim: usize, lambda: f64) -> Result<Self, HarvestError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "lambda",
                message: format!("must be positive, got {lambda}"),
            });
        }
        Ok(RidgeRegression {
            dim,
            lambda,
            xtx: Matrix::zeros(dim, dim),
            xty: vec![0.0; dim],
            n: 0,
        })
    }

    /// Adds one observation with importance weight `weight` (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn push(&mut self, x: &[f64], y: f64, weight: f64) {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        if !y.is_finite() || !weight.is_finite() || weight <= 0.0 {
            return; // Degenerate observations carry no information.
        }
        self.xtx.rank1_update(x, weight);
        for (acc, &xi) in self.xty.iter_mut().zip(x) {
            *acc += weight * xi * y;
        }
        self.n += 1;
    }

    /// Number of (usable) observations pushed.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Solves for the ridge weights. Succeeds even with zero observations
    /// (returns the zero model, the regularizer's minimizer).
    pub fn fit(&self) -> Result<LinearModel, HarvestError> {
        let mut a = self.xtx.clone();
        a.add_diagonal(self.lambda);
        let weights = a.solve_spd(&self.xty)?;
        Ok(LinearModel { weights })
    }
}

/// Online stochastic-gradient regressor for squared loss, with importance
/// weights and an inverse-time learning-rate schedule
/// `η_t = η₀ / (1 + decay · t)`.
///
/// Used by the online epoch-greedy learner, where refitting a batch solve
/// per decision would be wasteful.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdRegressor {
    weights: Vec<f64>,
    lr0: f64,
    decay: f64,
    t: u64,
}

impl SgdRegressor {
    /// Creates an SGD regressor of dimension `dim` with initial learning
    /// rate `lr0` and decay `decay` (both must be positive / non-negative).
    pub fn new(dim: usize, lr0: f64, decay: f64) -> Result<Self, HarvestError> {
        if !(lr0.is_finite() && lr0 > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "lr0",
                message: format!("must be positive, got {lr0}"),
            });
        }
        if !(decay.is_finite() && decay >= 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "decay",
                message: format!("must be non-negative, got {decay}"),
            });
        }
        Ok(SgdRegressor {
            weights: vec![0.0; dim],
            lr0,
            decay,
            t: 0,
        })
    }

    /// Predicts `w · x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x)
    }

    /// One SGD step on `(x, y)` with importance weight `weight`.
    ///
    /// The gradient of `½ weight (y − w·x)²` is clipped to keep a single
    /// outlier (or a huge 1/p importance weight) from destabilizing the
    /// model.
    pub fn update(&mut self, x: &[f64], y: f64, weight: f64) {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        if !y.is_finite() || !weight.is_finite() || weight <= 0.0 {
            return;
        }
        self.t += 1;
        let lr = self.lr0 / (1.0 + self.decay * self.t as f64);
        let err = y - self.predict(x);
        let g = (weight * err).clamp(-1e3, 1e3);
        for (w, &xi) in self.weights.iter_mut().zip(x) {
            *w += lr * g * xi;
        }
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.t
    }

    /// Snapshot of the current weights as a [`LinearModel`].
    pub fn to_model(&self) -> LinearModel {
        LinearModel {
            weights: self.weights.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn synthetic(n: usize, w: &[f64], noise: f64, seed: u64) -> Vec<(Vec<f64>, f64)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut x: Vec<f64> = (0..w.len() - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
                x.push(1.0); // bias
                let y = dot(w, &x) + noise * rng.gen_range(-1.0..1.0);
                (x, y)
            })
            .collect()
    }

    #[test]
    fn ridge_recovers_noiseless_weights() {
        let w_true = [2.0, -1.0, 0.5];
        let data = synthetic(200, &w_true, 0.0, 1);
        let mut r = RidgeRegression::new(3, 1e-6).unwrap();
        for (x, y) in &data {
            r.push(x, *y, 1.0);
        }
        let m = r.fit().unwrap();
        for (wi, ti) in m.weights.iter().zip(&w_true) {
            assert!((wi - ti).abs() < 1e-3, "weights {:?}", m.weights);
        }
    }

    #[test]
    fn ridge_shrinks_with_lambda() {
        let w_true = [5.0, 1.0];
        let data = synthetic(100, &w_true, 0.0, 2);
        let fit_with = |lambda: f64| {
            let mut r = RidgeRegression::new(2, lambda).unwrap();
            for (x, y) in &data {
                r.push(x, *y, 1.0);
            }
            r.fit().unwrap().weights[0].abs()
        };
        assert!(fit_with(1000.0) < fit_with(0.001));
    }

    #[test]
    fn ridge_importance_weights_tilt_fit() {
        // Two inconsistent points; weight decides which dominates.
        let mut r = RidgeRegression::new(1, 1e-9).unwrap();
        r.push(&[1.0], 0.0, 1.0);
        r.push(&[1.0], 10.0, 99.0);
        let m = r.fit().unwrap();
        assert!((m.predict(&[1.0]) - 9.9).abs() < 0.01);
    }

    #[test]
    fn ridge_ignores_degenerate_observations() {
        let mut r = RidgeRegression::new(1, 1.0).unwrap();
        r.push(&[1.0], f64::NAN, 1.0);
        r.push(&[1.0], 1.0, 0.0);
        r.push(&[1.0], 1.0, -5.0);
        assert_eq!(r.count(), 0);
        let m = r.fit().unwrap();
        assert_eq!(m.weights, vec![0.0]);
    }

    #[test]
    fn ridge_empty_fit_is_zero_model() {
        let r = RidgeRegression::new(4, 0.5).unwrap();
        assert_eq!(r.fit().unwrap().weights, vec![0.0; 4]);
    }

    #[test]
    fn ridge_rejects_bad_lambda() {
        assert!(RidgeRegression::new(2, 0.0).is_err());
        assert!(RidgeRegression::new(2, -1.0).is_err());
        assert!(RidgeRegression::new(2, f64::NAN).is_err());
    }

    #[test]
    fn sgd_converges_on_linear_target() {
        let w_true = [1.5, -0.5, 0.25];
        let data = synthetic(5000, &w_true, 0.01, 3);
        let mut s = SgdRegressor::new(3, 0.1, 0.001).unwrap();
        for (x, y) in &data {
            s.update(x, *y, 1.0);
        }
        let m = s.to_model();
        for (wi, ti) in m.weights.iter().zip(&w_true) {
            assert!((wi - ti).abs() < 0.1, "weights {:?}", m.weights);
        }
    }

    #[test]
    fn sgd_gradient_clipping_bounds_step() {
        let mut s = SgdRegressor::new(1, 1.0, 0.0).unwrap();
        s.update(&[1.0], 1e12, 1e12);
        assert!(s.predict(&[1.0]).is_finite());
        assert!(s.predict(&[1.0]).abs() <= 1e3);
    }

    #[test]
    fn sgd_rejects_bad_hyperparameters() {
        assert!(SgdRegressor::new(1, 0.0, 0.0).is_err());
        assert!(SgdRegressor::new(1, 0.1, -1.0).is_err());
    }

    #[test]
    fn linear_model_predicts() {
        let m = LinearModel {
            weights: vec![2.0, 3.0],
        };
        assert_eq!(m.predict(&[1.0, 1.0]), 5.0);
        assert_eq!(LinearModel::zeros(2).predict(&[5.0, 5.0]), 0.0);
    }
}

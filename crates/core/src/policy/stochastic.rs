//! Randomized (logging) policies.
//!
//! These are the policies whose randomness gets *harvested*: uniform random
//! (Redis eviction sampling, random load balancing), static weighted random
//! (Nginx `weight=` upstreams), ε-greedy (an exploiting policy with an
//! exploration floor), and softmax over scores.

use crate::context::Context;
use crate::error::HarvestError;
use crate::policy::{Policy, StochasticPolicy};
use crate::scorer::Scorer;

/// Uniform random over the context's eligible actions — the canonical
/// maximally-exploring logging policy; its propensities are `1/K`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformPolicy;

impl UniformPolicy {
    /// Creates the uniform policy.
    pub fn new() -> Self {
        UniformPolicy
    }
}

impl<C: Context> StochasticPolicy<C> for UniformPolicy {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let k = ctx.num_actions();
        vec![1.0 / k as f64; k]
    }

    fn name(&self) -> String {
        "uniform-random".to_string()
    }
}

/// Fixed-weight random choice (e.g. an Nginx upstream block with `weight=`
/// directives). Weights are normalized at construction.
///
/// If a context has fewer actions than weights, the distribution
/// renormalizes over the eligible prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPolicy {
    probs: Vec<f64>,
}

impl WeightedPolicy {
    /// Creates a weighted policy from non-negative weights.
    pub fn new(weights: Vec<f64>) -> Result<Self, HarvestError> {
        if weights.is_empty() {
            return Err(HarvestError::InvalidParameter {
                name: "weights",
                message: "must be non-empty".to_string(),
            });
        }
        let sum: f64 = weights.iter().sum();
        if !sum.is_finite() || sum <= 0.0 || weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(HarvestError::InvalidDistribution { sum });
        }
        Ok(WeightedPolicy {
            probs: weights.iter().map(|w| w / sum).collect(),
        })
    }

    /// The normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }
}

impl<C: Context> StochasticPolicy<C> for WeightedPolicy {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let k = ctx.num_actions();
        if k >= self.probs.len() {
            let mut p = self.probs.clone();
            p.resize(k, 0.0);
            p
        } else {
            let head: f64 = self.probs[..k].iter().sum();
            if head <= 0.0 {
                vec![1.0 / k as f64; k]
            } else {
                self.probs[..k].iter().map(|&w| w / head).collect()
            }
        }
    }

    fn name(&self) -> String {
        "weighted-random".to_string()
    }
}

/// Wraps a deterministic base policy with an ε exploration floor: with
/// probability `1 - ε` follow the base, with probability `ε` pick uniformly.
///
/// The resulting minimum propensity is `ε / K` (or `1 - ε + ε/K` for the
/// base's action), which is exactly the `ε` knob of Eq. 1.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyPolicy<P> {
    base: P,
    epsilon: f64,
}

impl<P> EpsilonGreedyPolicy<P> {
    /// Creates an ε-greedy wrapper. `epsilon` must be in `[0, 1]`.
    pub fn new(base: P, epsilon: f64) -> Result<Self, HarvestError> {
        if !(0.0..=1.0).contains(&epsilon) || !epsilon.is_finite() {
            return Err(HarvestError::InvalidParameter {
                name: "epsilon",
                message: format!("must be in [0, 1], got {epsilon}"),
            });
        }
        Ok(EpsilonGreedyPolicy { base, epsilon })
    }

    /// The exploration fraction.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The exploited base policy.
    pub fn base(&self) -> &P {
        &self.base
    }
}

impl<C: Context, P: Policy<C>> StochasticPolicy<C> for EpsilonGreedyPolicy<P> {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let k = ctx.num_actions();
        let exploit = self.base.choose(ctx).min(k - 1);
        let floor = self.epsilon / k as f64;
        let mut probs = vec![floor; k];
        probs[exploit] += 1.0 - self.epsilon;
        probs
    }

    fn name(&self) -> String {
        format!("eps-greedy({:.2}, {})", self.epsilon, self.base.name())
    }
}

/// A point mass on a deterministic policy's choice. Adapts any [`Policy`]
/// into a (degenerate) [`StochasticPolicy`]; data logged by it supports
/// off-policy evaluation of *no other* policy (propensity 1 on one action,
/// 0 elsewhere) — which is exactly the paper's argument for why
/// non-randomized production policies waste optimization potential.
#[derive(Debug, Clone)]
pub struct PointMassPolicy<P> {
    base: P,
}

impl<P> PointMassPolicy<P> {
    /// Wraps `base`.
    pub fn new(base: P) -> Self {
        PointMassPolicy { base }
    }
}

impl<C: Context, P: Policy<C>> StochasticPolicy<C> for PointMassPolicy<P> {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let k = ctx.num_actions();
        let mut probs = vec![0.0; k];
        probs[self.base.choose(ctx).min(k - 1)] = 1.0;
        probs
    }

    fn name(&self) -> String {
        self.base.name()
    }
}

/// Boltzmann/softmax exploration over a scorer: action `a` gets probability
/// proportional to `exp(score(x, a) / temperature)`.
#[derive(Debug, Clone)]
pub struct SoftmaxPolicy<S> {
    scorer: S,
    temperature: f64,
}

impl<S> SoftmaxPolicy<S> {
    /// Creates a softmax policy. `temperature` must be positive; smaller
    /// values concentrate probability on the best-scoring action.
    pub fn new(scorer: S, temperature: f64) -> Result<Self, HarvestError> {
        if !(temperature.is_finite() && temperature > 0.0) {
            return Err(HarvestError::InvalidParameter {
                name: "temperature",
                message: format!("must be positive, got {temperature}"),
            });
        }
        Ok(SoftmaxPolicy {
            scorer,
            temperature,
        })
    }
}

impl<C: Context, S: Scorer<C>> StochasticPolicy<C> for SoftmaxPolicy<S> {
    fn action_probabilities(&self, ctx: &C) -> Vec<f64> {
        let k = ctx.num_actions();
        let scores: Vec<f64> = (0..k)
            .map(|a| self.scorer.score(ctx, a) / self.temperature)
            .collect();
        // Stabilized softmax.
        let m = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|&s| (s - m).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    fn name(&self) -> String {
        format!("softmax(T={})", self.temperature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::{validate_distribution, ConstantPolicy};

    fn ctx(k: usize) -> SimpleContext {
        SimpleContext::contextless(k)
    }

    #[test]
    fn uniform_probs() {
        let p = UniformPolicy::new();
        let probs = p.action_probabilities(&ctx(4));
        assert_eq!(probs, vec![0.25; 4]);
        assert_eq!(p.min_propensity(&ctx(4)), 0.25);
    }

    #[test]
    fn weighted_normalizes() {
        let p = WeightedPolicy::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(p.probabilities(), &[0.25, 0.75]);
        validate_distribution(&p.action_probabilities(&ctx(2))).unwrap();
    }

    #[test]
    fn weighted_rejects_garbage() {
        assert!(WeightedPolicy::new(vec![]).is_err());
        assert!(WeightedPolicy::new(vec![0.0, 0.0]).is_err());
        assert!(WeightedPolicy::new(vec![-1.0, 2.0]).is_err());
        assert!(WeightedPolicy::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn weighted_renormalizes_for_smaller_action_sets() {
        let p = WeightedPolicy::new(vec![1.0, 1.0, 2.0]).unwrap();
        let probs = p.action_probabilities(&ctx(2));
        assert_eq!(probs, vec![0.5, 0.5]);
        let probs = p.action_probabilities(&ctx(5));
        assert_eq!(probs.len(), 5);
        assert_eq!(probs[3], 0.0);
        validate_distribution(&probs).unwrap();
    }

    #[test]
    fn epsilon_greedy_floor() {
        let p = EpsilonGreedyPolicy::new(ConstantPolicy::new(1), 0.2).unwrap();
        let probs = p.action_probabilities(&ctx(4));
        assert!((probs[1] - (0.8 + 0.05)).abs() < 1e-12);
        for a in [0, 2, 3] {
            assert!((probs[a] - 0.05).abs() < 1e-12);
        }
        assert!((p.min_propensity(&ctx(4)) - 0.05).abs() < 1e-12);
        validate_distribution(&probs).unwrap();
    }

    #[test]
    fn epsilon_bounds_checked() {
        assert!(EpsilonGreedyPolicy::new(ConstantPolicy::new(0), -0.1).is_err());
        assert!(EpsilonGreedyPolicy::new(ConstantPolicy::new(0), 1.1).is_err());
        assert!(EpsilonGreedyPolicy::new(ConstantPolicy::new(0), f64::NAN).is_err());
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let p = EpsilonGreedyPolicy::new(ConstantPolicy::new(0), 1.0).unwrap();
        let probs = p.action_probabilities(&ctx(5));
        for &q in &probs {
            assert!((q - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn point_mass_is_degenerate() {
        let p = PointMassPolicy::new(ConstantPolicy::new(2));
        let probs = p.action_probabilities(&ctx(4));
        assert_eq!(probs, vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(p.min_propensity(&ctx(4)), 0.0);
    }

    #[test]
    fn softmax_orders_by_score_and_sharpens_with_temperature() {
        struct Fixed;
        impl Scorer<SimpleContext> for Fixed {
            fn score(&self, _c: &SimpleContext, a: usize) -> f64 {
                a as f64
            }
        }
        let warm = SoftmaxPolicy::new(Fixed, 1.0).unwrap();
        let cold = SoftmaxPolicy::new(Fixed, 0.1).unwrap();
        let pw = warm.action_probabilities(&ctx(3));
        let pc = cold.action_probabilities(&ctx(3));
        validate_distribution(&pw).unwrap();
        validate_distribution(&pc).unwrap();
        assert!(pw[2] > pw[1] && pw[1] > pw[0]);
        assert!(pc[2] > pw[2], "lower temperature concentrates mass");
    }

    #[test]
    fn softmax_is_stable_for_huge_scores() {
        struct Huge;
        impl Scorer<SimpleContext> for Huge {
            fn score(&self, _c: &SimpleContext, a: usize) -> f64 {
                1e6 * (a as f64 + 1.0)
            }
        }
        let p = SoftmaxPolicy::new(Huge, 1.0).unwrap();
        let probs = p.action_probabilities(&ctx(3));
        assert!(probs.iter().all(|q| q.is_finite()));
        validate_distribution(&probs).unwrap();
        assert!((probs[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_rejects_bad_temperature() {
        struct Z;
        impl Scorer<SimpleContext> for Z {
            fn score(&self, _c: &SimpleContext, _a: usize) -> f64 {
                0.0
            }
        }
        assert!(SoftmaxPolicy::new(Z, 0.0).is_err());
    }
}

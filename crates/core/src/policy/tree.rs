//! Decision-stump and shallow-tree policy templates.
//!
//! Paper §4: "Typically Π is defined by a tunable template, such as
//! decision trees, neural nets, or linear vectors", and the efficiency
//! argument of Figs. 1–2 is about evaluating *millions* of template
//! instances simultaneously. This module provides the tree templates and
//! their enumeration: a single [`DecisionStump`] family over `F` features ×
//! `T` thresholds × `A²` leaf actions already reaches |Π| = F·T·A², and
//! [`DepthTwoTree`]s square that — comfortably past the paper's 10⁶.

use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::policy::Policy;

/// A one-split decision policy: test one shared feature against a
/// threshold, take one of two actions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionStump {
    /// Index into the context's shared features.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// Action when `feature value ≤ threshold`.
    pub low_action: usize,
    /// Action when `feature value > threshold`.
    pub high_action: usize,
}

impl DecisionStump {
    /// Which branch's action this stump takes for `ctx` (clamped into the
    /// context's action set). Missing features compare as 0.0, matching
    /// how absent log fields default.
    fn raw_choose<C: Context>(&self, ctx: &C) -> usize {
        let x = ctx
            .shared_features()
            .get(self.feature)
            .copied()
            .unwrap_or(0.0);
        if x <= self.threshold {
            self.low_action
        } else {
            self.high_action
        }
    }
}

impl<C: Context> Policy<C> for DecisionStump {
    fn choose(&self, ctx: &C) -> usize {
        self.raw_choose(ctx).min(ctx.num_actions() - 1)
    }

    fn name(&self) -> String {
        format!(
            "stump(f{}<={:.3} ? {} : {})",
            self.feature, self.threshold, self.low_action, self.high_action
        )
    }
}

/// A depth-two tree: a root stump whose branches each delegate to another
/// stump. |Π| grows with the square of the stump count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthTwoTree {
    /// The root split (its leaf actions are ignored).
    pub root_feature: usize,
    /// The root threshold.
    pub root_threshold: f64,
    /// The stump used when the root test is ≤.
    pub low: DecisionStump,
    /// The stump used when the root test is >.
    pub high: DecisionStump,
}

impl<C: Context> Policy<C> for DepthTwoTree {
    fn choose(&self, ctx: &C) -> usize {
        let x = ctx
            .shared_features()
            .get(self.root_feature)
            .copied()
            .unwrap_or(0.0);
        let leaf = if x <= self.root_threshold {
            &self.low
        } else {
            &self.high
        };
        leaf.raw_choose(ctx).min(ctx.num_actions() - 1)
    }

    fn name(&self) -> String {
        format!(
            "tree(f{}<={:.3} ? {} : {})",
            self.root_feature,
            self.root_threshold,
            Policy::<C>::name(&self.low),
            Policy::<C>::name(&self.high)
        )
    }
}

/// Enumerates every stump over `features` feature indices, the given
/// thresholds, and `actions` actions — the policy class Π whose size enters
/// Eq. 1 as K = features · thresholds · actions².
pub fn enumerate_stumps(features: usize, thresholds: &[f64], actions: usize) -> Vec<DecisionStump> {
    let mut out = Vec::with_capacity(features * thresholds.len() * actions * actions);
    for feature in 0..features {
        for &threshold in thresholds {
            for low_action in 0..actions {
                for high_action in 0..actions {
                    out.push(DecisionStump {
                        feature,
                        threshold,
                        low_action,
                        high_action,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimpleContext;

    #[test]
    fn stump_splits_on_its_feature() {
        let s = DecisionStump {
            feature: 1,
            threshold: 0.5,
            low_action: 0,
            high_action: 2,
        };
        assert_eq!(s.choose(&SimpleContext::new(vec![9.0, 0.4], 3)), 0);
        assert_eq!(s.choose(&SimpleContext::new(vec![9.0, 0.6], 3)), 2);
        // Boundary goes low.
        assert_eq!(s.choose(&SimpleContext::new(vec![9.0, 0.5], 3)), 0);
    }

    #[test]
    fn stump_clamps_actions_and_tolerates_missing_features() {
        let s = DecisionStump {
            feature: 7,
            threshold: -1.0,
            low_action: 9,
            high_action: 9,
        };
        // Feature 7 is missing => 0.0 > -1.0 => high action, clamped to 1.
        assert_eq!(s.choose(&SimpleContext::new(vec![1.0], 2)), 1);
    }

    #[test]
    fn depth_two_tree_composes_stumps() {
        let low = DecisionStump {
            feature: 1,
            threshold: 0.0,
            low_action: 0,
            high_action: 1,
        };
        let high = DecisionStump {
            feature: 1,
            threshold: 0.0,
            low_action: 2,
            high_action: 3,
        };
        let t = DepthTwoTree {
            root_feature: 0,
            root_threshold: 0.0,
            low,
            high,
        };
        let ctx = |a: f64, b: f64| SimpleContext::new(vec![a, b], 4);
        assert_eq!(t.choose(&ctx(-1.0, -1.0)), 0);
        assert_eq!(t.choose(&ctx(-1.0, 1.0)), 1);
        assert_eq!(t.choose(&ctx(1.0, -1.0)), 2);
        assert_eq!(t.choose(&ctx(1.0, 1.0)), 3);
    }

    #[test]
    fn enumeration_counts_match() {
        let thresholds = [0.25, 0.5, 0.75];
        let class = enumerate_stumps(4, &thresholds, 5);
        assert_eq!(class.len(), 4 * 3 * 5 * 5);
        // All members are distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &class {
            assert!(seen.insert((
                s.feature,
                s.threshold.to_bits(),
                s.low_action,
                s.high_action
            )));
        }
        // With 10 features, 100 thresholds, 10 actions the class passes
        // the paper's 10^5; depth-2 trees square the stump count.
        assert_eq!(10usize * 100 * 10 * 10, 100_000);
    }

    #[test]
    fn names_are_descriptive() {
        let s = DecisionStump {
            feature: 2,
            threshold: 0.125,
            low_action: 0,
            high_action: 1,
        };
        let n = Policy::<SimpleContext>::name(&s);
        assert!(n.contains("f2") && n.contains("0.125"), "{n}");
    }
}

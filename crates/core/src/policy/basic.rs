//! Deterministic policies: constant, closure-based, and greedy-over-scorer.

use crate::context::Context;
use crate::policy::Policy;
use crate::scorer::Scorer;

/// Always takes the same action ("send to 1" in Table 2; a fixed wait time
/// in the machine-health scenario).
///
/// If the configured action exceeds a context's action count, the highest
/// eligible action is taken instead — matching how a fixed configuration
/// behaves when a system shrinks its action set at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantPolicy {
    action: usize,
}

impl ConstantPolicy {
    /// A policy that always takes `action`.
    pub fn new(action: usize) -> Self {
        ConstantPolicy { action }
    }

    /// The configured action.
    pub fn action(&self) -> usize {
        self.action
    }
}

impl<C: Context> Policy<C> for ConstantPolicy {
    fn choose(&self, ctx: &C) -> usize {
        self.action.min(ctx.num_actions() - 1)
    }

    fn name(&self) -> String {
        format!("send-to-{}", self.action)
    }
}

/// A policy defined by a closure; the workhorse for hand-written heuristics
/// ("least loaded", "freq/size") and for constructing large policy classes
/// in the Fig 1 / Fig 2 experiments.
pub struct FnPolicy<F> {
    f: F,
    name: String,
}

impl<F> FnPolicy<F> {
    /// Wraps `f` as a policy with a display `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnPolicy {
            f,
            name: name.into(),
        }
    }
}

impl<C: Context, F: Fn(&C) -> usize> Policy<C> for FnPolicy<F> {
    fn choose(&self, ctx: &C) -> usize {
        let a = (self.f)(ctx);
        debug_assert!(a < ctx.num_actions(), "FnPolicy chose {a} out of range");
        a.min(ctx.num_actions() - 1)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// Takes the action with the highest score under a [`Scorer`] — the policy a
/// CB learner induces from its reward model ("greedily picking the lowest
/// latency yields a good policy", paper §5).
///
/// Ties break toward the lowest action index, making the policy
/// deterministic and reproducible.
#[derive(Debug, Clone)]
pub struct GreedyPolicy<S> {
    scorer: S,
    name: String,
}

impl<S> GreedyPolicy<S> {
    /// A greedy policy over `scorer`.
    pub fn new(scorer: S) -> Self {
        GreedyPolicy {
            scorer,
            name: "greedy".to_string(),
        }
    }

    /// Sets the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The underlying scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }
}

impl<C: Context, S: Scorer<C>> Policy<C> for GreedyPolicy<S> {
    fn choose(&self, ctx: &C) -> usize {
        let k = ctx.num_actions();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for a in 0..k {
            let s = self.scorer.score(ctx, a);
            if s > best_score {
                best_score = s;
                best = a;
            }
        }
        best
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;

    #[test]
    fn constant_clamps_to_action_set() {
        let p = ConstantPolicy::new(5);
        let small = SimpleContext::contextless(3);
        assert_eq!(p.choose(&small), 2);
        let big = SimpleContext::contextless(10);
        assert_eq!(p.choose(&big), 5);
    }

    #[test]
    fn fn_policy_runs_closure() {
        let p = FnPolicy::new(
            "parity",
            |ctx: &SimpleContext| {
                if ctx.shared_features()[0] > 0.0 {
                    1
                } else {
                    0
                }
            },
        );
        assert_eq!(p.choose(&SimpleContext::new(vec![1.0], 2)), 1);
        assert_eq!(p.choose(&SimpleContext::new(vec![-1.0], 2)), 0);
        assert_eq!(Policy::<SimpleContext>::name(&p), "parity");
    }

    #[test]
    fn greedy_picks_argmax_with_low_index_ties() {
        struct Fixed(Vec<f64>);
        impl Scorer<SimpleContext> for Fixed {
            fn score(&self, _ctx: &SimpleContext, a: usize) -> f64 {
                self.0[a]
            }
        }
        let ctx = SimpleContext::contextless(4);
        let g = GreedyPolicy::new(Fixed(vec![0.0, 3.0, 3.0, 1.0]));
        assert_eq!(g.choose(&ctx), 1, "ties break to the lower index");
        let g = GreedyPolicy::new(Fixed(vec![5.0, 3.0, 3.0, 1.0])).named("custom");
        assert_eq!(g.choose(&ctx), 0);
        assert_eq!(Policy::<SimpleContext>::name(&g), "custom");
    }
}

//! Policies: mappings from contexts to actions.
//!
//! Two traits:
//!
//! * [`Policy`] — deterministic: each context maps to one action. Candidate
//!   policies being *evaluated* offline are deterministic in this
//!   reproduction (as in the paper's Fig 3 / Tables 2–3).
//! * [`StochasticPolicy`] — randomized: each context maps to a distribution
//!   over actions. *Logging* policies must be stochastic — the whole premise
//!   of harvesting randomness is that the deployed policy explores every
//!   action with nonzero probability.
//!
//! Every deterministic policy is trivially stochastic (a point mass), and a
//! stochastic policy's mode gives a deterministic policy; the adapters here
//! provide both directions.

mod basic;
mod stochastic;
mod tree;

pub use basic::{ConstantPolicy, FnPolicy, GreedyPolicy};
pub use stochastic::{
    EpsilonGreedyPolicy, PointMassPolicy, SoftmaxPolicy, UniformPolicy, WeightedPolicy,
};
pub use tree::{enumerate_stumps, DecisionStump, DepthTwoTree};

use rand::Rng;

use crate::context::Context;
use crate::error::HarvestError;

/// A deterministic decision rule.
pub trait Policy<C: Context> {
    /// The action this policy takes in `ctx`. Must be `< ctx.num_actions()`.
    fn choose(&self, ctx: &C) -> usize;

    /// A short human-readable name for reports and tables.
    fn name(&self) -> String {
        "policy".to_string()
    }
}

// Allow `&P` and boxed policies wherever a policy is expected.
impl<C: Context, P: Policy<C> + ?Sized> Policy<C> for &P {
    fn choose(&self, ctx: &C) -> usize {
        (**self).choose(ctx)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<C: Context> Policy<C> for Box<dyn Policy<C> + '_> {
    fn choose(&self, ctx: &C) -> usize {
        (**self).choose(ctx)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// A randomized decision rule: a distribution over eligible actions per
/// context.
pub trait StochasticPolicy<C: Context> {
    /// The probability assigned to each action in `ctx`. Must have length
    /// `ctx.num_actions()`, non-negative entries summing to ~1.
    fn action_probabilities(&self, ctx: &C) -> Vec<f64>;

    /// Samples an action and returns it with its propensity.
    ///
    /// The default implementation inverse-CDF samples from
    /// [`action_probabilities`](Self::action_probabilities).
    fn sample<R: Rng + ?Sized>(&self, ctx: &C, rng: &mut R) -> (usize, f64) {
        let probs = self.action_probabilities(ctx);
        debug_assert_eq!(probs.len(), ctx.num_actions());
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        for (a, &p) in probs.iter().enumerate() {
            cum += p;
            if u < cum {
                return (a, p);
            }
        }
        // Numerical slack: fall back to the last action with positive mass.
        let a = probs
            .iter()
            .rposition(|&p| p > 0.0)
            .unwrap_or(probs.len() - 1);
        (a, probs[a])
    }

    /// The probability this policy assigns to a specific action.
    fn propensity_of(&self, ctx: &C, action: usize) -> f64 {
        self.action_probabilities(ctx)[action]
    }

    /// The minimum probability assigned to any action in `ctx` — the
    /// per-context `ε` of Eq. 1.
    fn min_propensity(&self, ctx: &C) -> f64 {
        self.action_probabilities(ctx)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// A short human-readable name for reports and tables.
    fn name(&self) -> String {
        "stochastic-policy".to_string()
    }
}

/// Validates that `probs` is a distribution: non-negative, finite, summing
/// to 1 within `1e-6`.
pub fn validate_distribution(probs: &[f64]) -> Result<(), HarvestError> {
    let mut sum = 0.0;
    for &p in probs {
        if !p.is_finite() || p < 0.0 {
            return Err(HarvestError::InvalidDistribution { sum: f64::NAN });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(HarvestError::InvalidDistribution { sum });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use rand::SeedableRng;

    #[test]
    fn validate_distribution_accepts_simplex() {
        assert!(validate_distribution(&[0.25, 0.25, 0.5]).is_ok());
        assert!(validate_distribution(&[1.0]).is_ok());
    }

    #[test]
    fn validate_distribution_rejects_bad() {
        assert!(validate_distribution(&[0.5, 0.6]).is_err());
        assert!(validate_distribution(&[-0.1, 1.1]).is_err());
        assert!(validate_distribution(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn default_sample_matches_probabilities() {
        let ctx = SimpleContext::contextless(3);
        let pol = WeightedPolicy::new(vec![1.0, 2.0, 7.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let (a, p) = pol.sample(&ctx, &mut rng);
            counts[a] += 1;
            let expect = [0.1, 0.2, 0.7][a];
            assert!((p - expect).abs() < 1e-12);
        }
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.02);
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn boxed_policy_dispatches() {
        let ctx = SimpleContext::contextless(4);
        let boxed: Box<dyn Policy<SimpleContext>> = Box::new(ConstantPolicy::new(2));
        assert_eq!(boxed.choose(&ctx), 2);
        assert_eq!(boxed.name(), "send-to-2");
        // And a reference to a policy is a policy.
        let by_ref = &ConstantPolicy::new(1);
        assert_eq!(Policy::choose(&by_ref, &ctx), 1);
    }
}

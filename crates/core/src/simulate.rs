//! Simulating exploration from full feedback.
//!
//! The machine-health dataset has full feedback, which lets the paper "both
//! optimize a CB policy — by simulating randomized data and applying
//! off-policy evaluation — as well as obtain the ground truth performance"
//! (§3). This module implements that conversion: draw an action from a
//! logging policy, reveal only that action's reward, and record the
//! propensity.

use rand::Rng;

use crate::context::Context;
use crate::policy::StochasticPolicy;
use crate::sample::{Dataset, FullFeedbackDataset, LoggedDecision};

/// Converts a full-feedback dataset into exploration data `⟨x, a, r, p⟩` by
/// sampling one action per sample from `logging` and hiding all other
/// rewards.
///
/// Each call with a fresh RNG state produces an independent *partial
/// information simulation* — Fig 3 runs one thousand of them to get error
/// percentiles.
pub fn simulate_exploration<C, L, R>(
    full: &FullFeedbackDataset<C>,
    logging: &L,
    rng: &mut R,
) -> Dataset<C>
where
    C: Context + Clone,
    L: StochasticPolicy<C>,
    R: Rng + ?Sized,
{
    let mut out = Dataset::new();
    for s in full.samples() {
        let (a, p) = logging.sample(&s.context, rng);
        out.push(LoggedDecision {
            context: s.context.clone(),
            action: a,
            reward: s.rewards[a],
            propensity: p,
        })
        .expect("full-feedback samples are pre-validated");
    }
    out
}

/// Like [`simulate_exploration`], but stops after `n` samples (or the whole
/// dataset if shorter). Used for learning curves (Fig 4).
pub fn simulate_exploration_n<C, L, R>(
    full: &FullFeedbackDataset<C>,
    logging: &L,
    n: usize,
    rng: &mut R,
) -> Dataset<C>
where
    C: Context + Clone,
    L: StochasticPolicy<C>,
    R: Rng + ?Sized,
{
    let mut out = Dataset::new();
    for s in full.samples().iter().take(n) {
        let (a, p) = logging.sample(&s.context, rng);
        out.push(LoggedDecision {
            context: s.context.clone(),
            action: a,
            reward: s.rewards[a],
            propensity: p,
        })
        .expect("full-feedback samples are pre-validated");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimpleContext;
    use crate::policy::{ConstantPolicy, EpsilonGreedyPolicy, UniformPolicy};
    use crate::sample::FullFeedbackSample;
    use rand::SeedableRng;

    fn full(n: usize) -> FullFeedbackDataset<SimpleContext> {
        let mut d = FullFeedbackDataset::default();
        for i in 0..n {
            d.push(FullFeedbackSample {
                context: SimpleContext::new(vec![i as f64], 3),
                rewards: vec![0.0, 0.5, 1.0],
            })
            .unwrap();
        }
        d
    }

    #[test]
    fn rewards_match_the_chosen_action() {
        let data = full(200);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let expl = simulate_exploration(&data, &UniformPolicy::new(), &mut rng);
        assert_eq!(expl.len(), 200);
        for s in &expl {
            let expected = [0.0, 0.5, 1.0][s.action];
            assert_eq!(s.reward, expected);
            assert!((s.propensity - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn propensities_reflect_logging_policy() {
        let data = full(2000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let logging = EpsilonGreedyPolicy::new(ConstantPolicy::new(2), 0.3).unwrap();
        let expl = simulate_exploration(&data, &logging, &mut rng);
        let greedy_count = expl.iter().filter(|s| s.action == 2).count();
        // Expected share: 0.7 + 0.1 = 0.8.
        let share = greedy_count as f64 / expl.len() as f64;
        assert!((share - 0.8).abs() < 0.03, "share {share}");
        for s in &expl {
            if s.action == 2 {
                assert!((s.propensity - 0.8).abs() < 1e-12);
            } else {
                assert!((s.propensity - 0.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn truncated_simulation_takes_prefix() {
        let data = full(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let expl = simulate_exploration_n(&data, &UniformPolicy::new(), 10, &mut rng);
        assert_eq!(expl.len(), 10);
        // Contexts are in dataset order.
        assert_eq!(expl.samples()[9].context.shared_features()[0], 9.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let data = full(50);
        let mk = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            simulate_exploration(&data, &UniformPolicy::new(), &mut rng)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }
}

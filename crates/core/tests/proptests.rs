//! Property tests for the CB framework's core laws.

use proptest::prelude::*;

use harvest_core::context::{phi, phi_dim, phi_shared, SimpleContext};
use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::linalg::{axpy, dot, Matrix};
use harvest_core::policy::{
    ConstantPolicy, GreedyPolicy, Policy, SoftmaxPolicy, StochasticPolicy, UniformPolicy,
};
use harvest_core::regression::{LinearModel, RidgeRegression, SgdRegressor};
use harvest_core::sample::{Dataset, LoggedDecision};
use harvest_core::scorer::{Scorer, TableScorer};

fn ctx_with_features(shared: Vec<f64>, k: usize) -> SimpleContext {
    SimpleContext::new(shared, k)
}

proptest! {
    #[test]
    fn phi_has_consistent_dimension(
        shared in proptest::collection::vec(-10.0f64..10.0, 0..8),
        af in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 2), 1..5)
    ) {
        let ctx = SimpleContext::with_action_features(shared.clone(), af.clone());
        for a in 0..af.len() {
            prop_assert_eq!(phi(&ctx, a).len(), phi_dim(&ctx));
        }
        prop_assert_eq!(phi_shared(&ctx).len(), shared.len() + 1);
        // The bias term is always the trailing 1.
        prop_assert_eq!(*phi(&ctx, 0).last().unwrap(), 1.0);
    }

    #[test]
    fn greedy_policy_always_picks_a_maximal_action(
        scores in proptest::collection::vec(-100.0f64..100.0, 1..12)
    ) {
        let k = scores.len();
        let pol = GreedyPolicy::new(TableScorer::new(scores.clone()));
        let ctx = SimpleContext::contextless(k);
        let a = pol.choose(&ctx);
        prop_assert!(a < k);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(scores[a], max);
        // Low-index tie break: no earlier action has the same score.
        for (i, &s) in scores.iter().enumerate().take(a) {
            prop_assert!(s < max, "index {i} also maximal, tie-break broken");
        }
    }

    #[test]
    fn softmax_probabilities_order_matches_scores(
        scores in proptest::collection::vec(-5.0f64..5.0, 2..8),
        temp in 0.1f64..10.0
    ) {
        let k = scores.len();
        let pol = SoftmaxPolicy::new(TableScorer::new(scores.clone()), temp).unwrap();
        let probs = pol.action_probabilities(&SimpleContext::contextless(k));
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for i in 0..k {
            for j in 0..k {
                if scores[i] > scores[j] {
                    prop_assert!(probs[i] >= probs[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn uniform_policy_min_propensity_is_one_over_k(k in 1usize..32) {
        let ctx = SimpleContext::contextless(k);
        let p = UniformPolicy::new().min_propensity(&ctx);
        prop_assert!((p - 1.0 / k as f64).abs() < 1e-12);
    }

    #[test]
    fn linalg_dot_axpy_laws(
        x in proptest::collection::vec(-10.0f64..10.0, 1..16),
        alpha in -5.0f64..5.0
    ) {
        let mut y = vec![0.0; x.len()];
        axpy(alpha, &x, &mut y);
        // y = alpha x  =>  dot(y, x) = alpha * |x|^2.
        prop_assert!((dot(&y, &x) - alpha * dot(&x, &x)).abs() < 1e-6);
    }

    #[test]
    fn cholesky_of_gram_plus_ridge_always_succeeds(
        rows in proptest::collection::vec(
            proptest::collection::vec(-3.0f64..3.0, 3), 0..20),
        lambda in 0.01f64..10.0
    ) {
        let mut g = Matrix::zeros(3, 3);
        for r in &rows {
            g.rank1_update(r, 1.0);
        }
        g.add_diagonal(lambda);
        prop_assert!(g.cholesky().is_ok());
    }

    #[test]
    fn ridge_interpolates_consistent_data(
        w_true in proptest::collection::vec(-2.0f64..2.0, 3),
        xs in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 2), 10..60)
    ) {
        // y = w·[x ‖ 1] exactly; a tiny ridge must recover predictions.
        let mut reg = RidgeRegression::new(3, 1e-8).unwrap();
        for x in &xs {
            let mut xb = x.clone();
            xb.push(1.0);
            reg.push(&xb, dot(&w_true, &xb), 1.0);
        }
        let model = reg.fit().unwrap();
        for x in xs.iter().take(5) {
            let mut xb = x.clone();
            xb.push(1.0);
            let err = (model.predict(&xb) - dot(&w_true, &xb)).abs();
            prop_assert!(err < 1e-3, "prediction error {err}");
        }
    }

    #[test]
    fn sgd_predictions_stay_finite_under_any_updates(
        updates in proptest::collection::vec(
            (proptest::collection::vec(-100.0f64..100.0, 2), -1e6f64..1e6, 0.0f64..1e3),
            0..200)
    ) {
        let mut sgd = SgdRegressor::new(2, 0.05, 0.01).unwrap();
        for (x, y, w) in &updates {
            sgd.update(x, *y, *w);
        }
        prop_assert!(sgd.predict(&[1.0, 1.0]).is_finite());
    }

    #[test]
    fn linear_model_prediction_is_linear(
        w in proptest::collection::vec(-5.0f64..5.0, 4),
        x in proptest::collection::vec(-5.0f64..5.0, 4),
        y in proptest::collection::vec(-5.0f64..5.0, 4),
        a in -3.0f64..3.0
    ) {
        let m = LinearModel { weights: w };
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        let lhs = m.predict(&combo);
        let rhs = a * m.predict(&x) + m.predict(&y);
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn learner_never_panics_on_arbitrary_valid_datasets(
        samples in proptest::collection::vec(
            (0usize..3, -10.0f64..10.0, 0.1f64..1.0, -5.0f64..5.0), 1..60)
    ) {
        let decisions: Vec<LoggedDecision<SimpleContext>> = samples.iter()
            .map(|&(a, r, p, x)| LoggedDecision {
                context: ctx_with_features(vec![x], 3),
                action: a,
                reward: r,
                propensity: p,
            })
            .collect();
        let data = Dataset::from_samples(decisions).unwrap();
        for weighting in [SampleWeighting::Uniform, SampleWeighting::InversePropensity] {
            let learner = RegressionCbLearner::new(ModelingMode::PerAction, weighting, 0.5)
                .unwrap();
            let scorer = learner.fit(&data).unwrap();
            let probe = ctx_with_features(vec![0.0], 3);
            for a in 0..3 {
                prop_assert!(scorer.score(&probe, a).is_finite());
            }
        }
    }

    #[test]
    fn constant_policy_is_constant(
        action in 0usize..10, k in 1usize..10,
        features in proptest::collection::vec(-1.0f64..1.0, 0..5)
    ) {
        let pol = ConstantPolicy::new(action);
        let ctx = SimpleContext::new(features, k);
        let choice = pol.choose(&ctx);
        prop_assert_eq!(choice, action.min(k - 1));
    }
}

proptest! {
    #[test]
    fn stumps_always_choose_valid_actions(
        feature in 0usize..12,
        threshold in -10.0f64..10.0,
        low in 0usize..20,
        high in 0usize..20,
        shared in proptest::collection::vec(-10.0f64..10.0, 0..6),
        k in 1usize..8
    ) {
        use harvest_core::policy::DecisionStump;
        let s = DecisionStump { feature, threshold, low_action: low, high_action: high };
        let ctx = SimpleContext::new(shared, k);
        prop_assert!(s.choose(&ctx) < k);
    }

    #[test]
    fn depth_two_trees_always_choose_valid_actions(
        rf in 0usize..6, rt in -5.0f64..5.0,
        lf in 0usize..6, lt in -5.0f64..5.0, la in 0usize..10, lb in 0usize..10,
        hf in 0usize..6, ht in -5.0f64..5.0, ha in 0usize..10, hb in 0usize..10,
        shared in proptest::collection::vec(-10.0f64..10.0, 0..6),
        k in 1usize..6
    ) {
        use harvest_core::policy::{DecisionStump, DepthTwoTree};
        let t = DepthTwoTree {
            root_feature: rf,
            root_threshold: rt,
            low: DecisionStump { feature: lf, threshold: lt, low_action: la, high_action: lb },
            high: DecisionStump { feature: hf, threshold: ht, low_action: ha, high_action: hb },
        };
        let ctx = SimpleContext::new(shared, k);
        prop_assert!(t.choose(&ctx) < k);
    }

    #[test]
    fn stump_enumeration_members_partition_the_feature_space(
        thresholds in proptest::collection::vec(-1.0f64..1.0, 1..4),
        x in -1.0f64..1.0
    ) {
        use harvest_core::policy::enumerate_stumps;
        // For any single-feature context, each stump picks exactly its
        // low/high action according to the threshold test.
        let class = enumerate_stumps(1, &thresholds, 3);
        let ctx = SimpleContext::new(vec![x], 3);
        for s in &class {
            let expected = if x <= s.threshold { s.low_action } else { s.high_action };
            prop_assert_eq!(s.choose(&ctx), expected.min(2));
        }
    }
}

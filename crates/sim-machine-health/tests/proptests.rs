//! Property tests for the machine-health model.

use proptest::prelude::*;

use harvest_core::Context;
use harvest_sim_mh::dataset::{generate_with_incidents, MachineHealthConfig};
use harvest_sim_mh::failure::{
    downtime_minutes, transient_probability, wait_minutes, Incident, NUM_ACTIONS,
};
use harvest_sim_mh::machine::{FailureKind, HardwareSku, MachineSpec};

fn arb_spec() -> impl Strategy<Value = MachineSpec> {
    (0usize..3, 0.0f64..7.0, 0u32..8, 0usize..4, 1u32..20).prop_map(
        |(sku, age, fails, kind, vms)| MachineSpec {
            sku: HardwareSku::ALL[sku],
            age_years: age,
            recent_failures: fails,
            failure_kind: FailureKind::ALL[kind],
            vm_count: vms,
        },
    )
}

fn arb_incident() -> impl Strategy<Value = Incident> {
    (arb_spec(), any::<bool>(), 0.5f64..20.0, 4.0f64..12.0).prop_map(
        |(spec, transient, recovery, reboot)| Incident {
            spec,
            transient,
            recovery_time_min: recovery,
            reboot_cost_min: reboot,
        },
    )
}

proptest! {
    #[test]
    fn transient_probability_is_a_probability(spec in arb_spec()) {
        let p = transient_probability(&spec);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p >= 0.02, "floor keeps every incident possible");
    }

    #[test]
    fn downtime_is_bounded_and_sane(incident in arb_incident(), action in 0usize..NUM_ACTIONS) {
        let d = downtime_minutes(&incident, action);
        prop_assert!(d > 0.0);
        // Downtime can never exceed wait + reboot.
        prop_assert!(d <= wait_minutes(action) + incident.reboot_cost_min + 1e-12);
        // And can never be less than the smaller of recovery and wait.
        if incident.transient {
            prop_assert!(d >= incident.recovery_time_min.min(wait_minutes(action)) - 1e-12);
        }
    }

    #[test]
    fn hard_failures_make_waiting_monotonically_worse(incident in arb_incident()) {
        let hard = Incident { transient: false, ..incident };
        let mut last = 0.0;
        for a in 0..NUM_ACTIONS {
            let d = downtime_minutes(&hard, a);
            prop_assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn transient_downtime_is_non_increasing_in_wait_after_recovery_point(
        incident in arb_incident()
    ) {
        // Once the wait exceeds the recovery time, downtime is constant
        // (the machine came back on its own).
        let t = Incident { transient: true, ..incident };
        let mut prev: Option<f64> = None;
        for a in 0..NUM_ACTIONS {
            if wait_minutes(a) >= t.recovery_time_min {
                let d = downtime_minutes(&t, a);
                if let Some(p) = prev {
                    prop_assert!((d - p).abs() < 1e-12);
                }
                prev = Some(d);
            }
        }
    }

    #[test]
    fn rewards_are_normalized_and_shaped(incident in arb_incident()) {
        let r = incident.rewards();
        prop_assert_eq!(r.len(), NUM_ACTIONS);
        for &v in &r {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn generated_datasets_have_consistent_shape(
        n in 1usize..200, seed in 0u64..50
    ) {
        let (data, incidents) = generate_with_incidents(&MachineHealthConfig {
            incidents: n,
            seed,
        });
        prop_assert_eq!(data.len(), n);
        prop_assert_eq!(incidents.len(), n);
        for (s, inc) in data.samples().iter().zip(&incidents) {
            prop_assert_eq!(s.context.num_actions(), NUM_ACTIONS);
            prop_assert_eq!(s.context.shared_features().len(), MachineSpec::FEATURE_DIM);
            // The dataset's rewards are exactly the incident's.
            prop_assert_eq!(&s.rewards, &inc.rewards());
        }
    }
}

//! Full-feedback dataset generation.

use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample};
use harvest_core::SimpleContext;
use harvest_sim_net::rng::fork_rng;

use crate::failure::Incident;
use crate::machine::MachineSpec;

/// Configuration for the synthetic machine-health dataset.
#[derive(Debug, Clone, Copy)]
pub struct MachineHealthConfig {
    /// Number of incidents to generate.
    pub incidents: usize,
    /// Master seed; all randomness forks from it.
    pub seed: u64,
}

impl Default for MachineHealthConfig {
    fn default() -> Self {
        MachineHealthConfig {
            incidents: 20_000,
            seed: 0xA22E,
        }
    }
}

/// Generates the full-feedback dataset: one sample per incident, with the
/// normalized reward of every wait action.
///
/// Also returns the underlying incidents so tests and benches can inspect
/// ground truth.
pub fn generate_with_incidents(
    cfg: &MachineHealthConfig,
) -> (FullFeedbackDataset<SimpleContext>, Vec<Incident>) {
    let mut rng = fork_rng(cfg.seed, "machine-health");
    let mut data = FullFeedbackDataset::default();
    let mut incidents = Vec::with_capacity(cfg.incidents);
    for _ in 0..cfg.incidents {
        let spec = MachineSpec::sample(&mut rng);
        let incident = Incident::sample(spec, &mut rng);
        let rewards = incident.rewards();
        data.push(FullFeedbackSample {
            context: SimpleContext::new(spec.features(), rewards.len()),
            rewards,
        })
        .expect("generated rewards are valid");
        incidents.push(incident);
    }
    (data, incidents)
}

/// Generates just the full-feedback dataset.
pub fn generate_dataset(cfg: &MachineHealthConfig) -> FullFeedbackDataset<SimpleContext> {
    generate_with_incidents(cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{DEFAULT_ACTION, NUM_ACTIONS};
    use harvest_core::learner::SupervisedLearner;
    use harvest_core::policy::ConstantPolicy;
    use harvest_core::Context;

    fn small() -> MachineHealthConfig {
        MachineHealthConfig {
            incidents: 4000,
            seed: 7,
        }
    }

    #[test]
    fn dataset_shape() {
        let data = generate_dataset(&small());
        assert_eq!(data.len(), 4000);
        for s in data.samples().iter().take(50) {
            assert_eq!(s.context.num_actions(), NUM_ACTIONS);
            assert_eq!(s.rewards.len(), NUM_ACTIONS);
            assert_eq!(s.context.shared_features().len(), MachineSpec::FEATURE_DIM);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_dataset(&small());
        let b = generate_dataset(&small());
        assert_eq!(a, b);
        let c = generate_dataset(&MachineHealthConfig { seed: 8, ..small() });
        assert_ne!(a, c);
    }

    #[test]
    fn default_policy_is_not_optimal() {
        // The safe default (wait 10 min) must leave headroom: some fixed
        // shorter wait beats it on average — that is the optimization
        // opportunity the paper exploits.
        let data = generate_dataset(&small());
        let default_value = data
            .value_of_policy(&ConstantPolicy::new(DEFAULT_ACTION))
            .unwrap();
        let (best_a, best_v) = data.best_fixed_action().unwrap();
        assert!(best_a < DEFAULT_ACTION, "best fixed action {best_a}");
        assert!(
            best_v > default_value + 0.005,
            "best {best_v} vs default {default_value}"
        );
    }

    #[test]
    fn contextual_policy_beats_best_fixed_action() {
        // The headline property: context (failure kind, SKU, …) predicts
        // the right wait, so a supervised contextual policy beats every
        // constant policy.
        let data = generate_dataset(&MachineHealthConfig {
            incidents: 12_000,
            seed: 9,
        });
        let (train, test) = data.split_at(8_000);
        let learner = SupervisedLearner::new(1e-2).unwrap();
        let policy = learner.fit_policy(&train).unwrap();
        let contextual = test.value_of_policy(&policy).unwrap();
        let (_, fixed) = test.best_fixed_action().unwrap();
        assert!(
            contextual > fixed + 0.002,
            "contextual {contextual} vs best fixed {fixed}"
        );
    }

    #[test]
    fn oracle_dominates_everything() {
        let data = generate_dataset(&small());
        let oracle = data.oracle_value().unwrap();
        let (_, fixed) = data.best_fixed_action().unwrap();
        assert!(oracle > fixed);
    }
}

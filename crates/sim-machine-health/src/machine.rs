//! Machine specifications and their feature encoding.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harvest_sim_net::rng::DetRng;

/// Hardware generation of a machine. Azure logs "detailed
/// hardware/configuration information about each machine" (§3); we model
/// the part that plausibly predicts recovery behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HardwareSku {
    /// Oldest generation: slow boot firmware, flaky NICs.
    Gen4,
    /// Mid-life generation.
    Gen5,
    /// Newest generation: fast NVMe boot, reliable management plane.
    Gen6,
}

impl HardwareSku {
    /// All SKUs, for enumeration.
    pub const ALL: [HardwareSku; 3] = [HardwareSku::Gen4, HardwareSku::Gen5, HardwareSku::Gen6];

    fn one_hot(self) -> [f64; 3] {
        match self {
            HardwareSku::Gen4 => [1.0, 0.0, 0.0],
            HardwareSku::Gen5 => [0.0, 1.0, 0.0],
            HardwareSku::Gen6 => [0.0, 0.0, 1.0],
        }
    }
}

/// The kind of the machine's most recent failure — logged failure history
/// is part of the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Network partition / NIC flap: usually transient.
    Network,
    /// Kernel soft-lockup: often recovers, slowly.
    Kernel,
    /// Disk controller fault: rarely recovers on its own.
    Disk,
    /// Power or firmware fault: essentially never self-recovers.
    Power,
}

impl FailureKind {
    /// All kinds, for enumeration.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::Network,
        FailureKind::Kernel,
        FailureKind::Disk,
        FailureKind::Power,
    ];

    fn one_hot(self) -> [f64; 4] {
        match self {
            FailureKind::Network => [1.0, 0.0, 0.0, 0.0],
            FailureKind::Kernel => [0.0, 1.0, 0.0, 0.0],
            FailureKind::Disk => [0.0, 0.0, 1.0, 0.0],
            FailureKind::Power => [0.0, 0.0, 0.0, 1.0],
        }
    }
}

/// Everything the controller knows about a machine when it goes
/// unresponsive. "Neither is fast-changing" (§3) — these are all
/// slow-moving inventory facts, safe to read from logs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Hardware generation.
    pub sku: HardwareSku,
    /// Machine age in years.
    pub age_years: f64,
    /// Failures recorded in the last 90 days.
    pub recent_failures: u32,
    /// Kind of the current (and most recent) failure signal.
    pub failure_kind: FailureKind,
    /// Number of customer VMs placed on the machine — scales the downtime
    /// impact (Table 1: reward is "total downtime (scaled by # of VMs)").
    pub vm_count: u32,
}

impl MachineSpec {
    /// Samples a random machine from a plausible fleet mix.
    pub fn sample(rng: &mut DetRng) -> Self {
        let sku = match rng.gen_range(0..10) {
            0..=2 => HardwareSku::Gen4,
            3..=6 => HardwareSku::Gen5,
            _ => HardwareSku::Gen6,
        };
        let failure_kind = match rng.gen_range(0..10) {
            0..=3 => FailureKind::Network,
            4..=6 => FailureKind::Kernel,
            7..=8 => FailureKind::Disk,
            _ => FailureKind::Power,
        };
        MachineSpec {
            sku,
            age_years: rng.gen_range(0.0..7.0),
            recent_failures: rng.gen_range(0..8),
            failure_kind,
            vm_count: rng.gen_range(1..20),
        }
    }

    /// Encodes the spec as the shared feature vector the policy sees.
    ///
    /// Layout: `[sku one-hot (3) ‖ failure-kind one-hot (4) ‖ age/7 ‖
    /// recent_failures/8 ‖ vm_count/20]` — 10 features, all roughly in
    /// `[0, 1]` so ridge regularization treats them comparably.
    pub fn features(&self) -> Vec<f64> {
        let mut f = Vec::with_capacity(10);
        f.extend_from_slice(&self.sku.one_hot());
        f.extend_from_slice(&self.failure_kind.one_hot());
        f.push(self.age_years / 7.0);
        f.push(self.recent_failures as f64 / 8.0);
        f.push(self.vm_count as f64 / 20.0);
        f
    }

    /// Dimension of [`MachineSpec::features`] vectors.
    pub const FEATURE_DIM: usize = 10;
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim_net::fork_rng;

    #[test]
    fn features_have_documented_layout() {
        let spec = MachineSpec {
            sku: HardwareSku::Gen5,
            age_years: 3.5,
            recent_failures: 4,
            failure_kind: FailureKind::Disk,
            vm_count: 10,
        };
        let f = spec.features();
        assert_eq!(f.len(), MachineSpec::FEATURE_DIM);
        assert_eq!(&f[0..3], &[0.0, 1.0, 0.0]); // Gen5
        assert_eq!(&f[3..7], &[0.0, 0.0, 1.0, 0.0]); // Disk
        assert!((f[7] - 0.5).abs() < 1e-12);
        assert!((f[8] - 0.5).abs() < 1e-12);
        assert!((f[9] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn features_are_bounded() {
        let mut rng = fork_rng(1, "spec");
        for _ in 0..500 {
            let spec = MachineSpec::sample(&mut rng);
            for (i, &v) in spec.features().iter().enumerate() {
                assert!((0.0..=1.0).contains(&v), "feature {i} = {v}");
            }
        }
    }

    #[test]
    fn fleet_mix_covers_all_categories() {
        let mut rng = fork_rng(2, "fleet");
        let specs: Vec<MachineSpec> = (0..2000).map(|_| MachineSpec::sample(&mut rng)).collect();
        for sku in HardwareSku::ALL {
            assert!(specs.iter().any(|s| s.sku == sku), "missing {sku:?}");
        }
        for kind in FailureKind::ALL {
            assert!(
                specs.iter().any(|s| s.failure_kind == kind),
                "missing {kind:?}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = MachineSpec::sample(&mut fork_rng(3, "det"));
        let b = MachineSpec::sample(&mut fork_rng(3, "det"));
        assert_eq!(a, b);
    }
}

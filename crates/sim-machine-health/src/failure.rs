//! The incident model: latent failure behaviour and counterfactual
//! downtimes.
//!
//! An unresponsive machine is either *transient* (it will come back on its
//! own after a context-dependent recovery time) or *hard* (only a reboot
//! brings it back). The controller cannot observe which; it picks a wait
//! time `a` minutes and:
//!
//! * if the machine recovers at `T ≤ a`, downtime is `T`;
//! * otherwise the machine is rebooted at `a`, adding a context-dependent
//!   reboot cost `R`, for downtime `a + R`.
//!
//! Both the transient probability and the time scales depend on the
//! machine's observable features — that dependence is what a contextual
//! policy can exploit and a fixed wait time cannot.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harvest_sim_net::rng::DetRng;

use crate::machine::{FailureKind, HardwareSku, MachineSpec};

/// Number of wait-time actions: wait `index + 1 ∈ {1, …, 10}` minutes.
/// Action 9 (wait 10 min) is the safe default Azure ran during data
/// collection.
pub const NUM_ACTIONS: usize = 10;

/// Index of the safe-default action (wait the maximum 10 minutes).
pub const DEFAULT_ACTION: usize = NUM_ACTIONS - 1;

/// The wait time, in minutes, of action index `a`.
pub fn wait_minutes(action: usize) -> f64 {
    (action + 1) as f64
}

/// One incident with its latent (unobservable) ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// The machine's observable context.
    pub spec: MachineSpec,
    /// Whether the machine would self-recover.
    pub transient: bool,
    /// Self-recovery time in minutes (meaningful only if `transient`).
    pub recovery_time_min: f64,
    /// Reboot duration in minutes for this machine.
    pub reboot_cost_min: f64,
}

/// Probability that an incident on `spec` is transient.
pub fn transient_probability(spec: &MachineSpec) -> f64 {
    let base = match spec.failure_kind {
        FailureKind::Network => 0.80,
        FailureKind::Kernel => 0.60,
        FailureKind::Disk => 0.25,
        FailureKind::Power => 0.05,
    };
    let sku_adj = match spec.sku {
        HardwareSku::Gen4 => -0.05,
        HardwareSku::Gen5 => 0.0,
        HardwareSku::Gen6 => 0.05,
    };
    let history_adj = -0.02 * spec.recent_failures as f64;
    (base + sku_adj + history_adj).clamp(0.02, 0.95)
}

/// Mean self-recovery time in minutes for `spec` (given transience).
pub fn mean_recovery_minutes(spec: &MachineSpec) -> f64 {
    let base = match spec.failure_kind {
        FailureKind::Network => 2.0,
        FailureKind::Kernel => 5.0,
        FailureKind::Disk => 6.5,
        FailureKind::Power => 8.0,
    };
    let sku_adj = match spec.sku {
        HardwareSku::Gen4 => 1.5,
        HardwareSku::Gen5 => 0.5,
        HardwareSku::Gen6 => 0.0,
    };
    base + sku_adj + 0.1 * spec.age_years
}

/// Reboot duration in minutes for `spec`.
pub fn reboot_cost_minutes(spec: &MachineSpec) -> f64 {
    let base = match spec.sku {
        HardwareSku::Gen4 => 9.0,
        HardwareSku::Gen5 => 7.0,
        HardwareSku::Gen6 => 5.0,
    };
    base + 0.2 * spec.age_years
}

impl Incident {
    /// Samples an incident's latent outcome for a machine.
    pub fn sample(spec: MachineSpec, rng: &mut DetRng) -> Self {
        let transient = rng.gen_bool(transient_probability(&spec));
        // Shifted exponential: recoveries take at least 30 s, with a
        // context-dependent mean.
        let mean = mean_recovery_minutes(&spec);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let recovery_time_min = 0.5 + (mean - 0.5).max(0.1) * (-u.ln());
        // Reboot time jitters ±10%.
        let reboot_cost_min = reboot_cost_minutes(&spec) * rng.gen_range(0.9..1.1);
        Incident {
            spec,
            transient,
            recovery_time_min,
            reboot_cost_min,
        }
    }

    /// The counterfactual downtime (minutes) of waiting `wait_min` minutes.
    pub fn downtime(&self, wait_min: f64) -> f64 {
        if self.transient && self.recovery_time_min <= wait_min {
            self.recovery_time_min
        } else {
            wait_min + self.reboot_cost_min
        }
    }

    /// The *reward* of each wait action: negated VM-scaled downtime,
    /// normalized into `[0, 1]` (1 = no downtime, 0 = worst representable).
    pub fn rewards(&self) -> Vec<f64> {
        (0..NUM_ACTIONS)
            .map(|a| {
                let dt = downtime_minutes(self, a) * self.spec.vm_count as f64;
                (1.0 - dt / MAX_SCALED_DOWNTIME).clamp(0.0, 1.0)
            })
            .collect()
    }
}

/// Worst representable VM-scaled downtime used for normalization: waiting
/// the maximum then paying the slowest reboot, on the largest machine.
pub const MAX_SCALED_DOWNTIME: f64 = (10.0 + 12.0) * 20.0;

/// The downtime (minutes) of taking action index `action` on `incident`.
pub fn downtime_minutes(incident: &Incident, action: usize) -> f64 {
    incident.downtime(wait_minutes(action))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim_net::fork_rng;

    fn spec(kind: FailureKind, sku: HardwareSku) -> MachineSpec {
        MachineSpec {
            sku,
            age_years: 2.0,
            recent_failures: 1,
            failure_kind: kind,
            vm_count: 5,
        }
    }

    #[test]
    fn transient_probability_orders_by_kind() {
        let net = transient_probability(&spec(FailureKind::Network, HardwareSku::Gen5));
        let kern = transient_probability(&spec(FailureKind::Kernel, HardwareSku::Gen5));
        let disk = transient_probability(&spec(FailureKind::Disk, HardwareSku::Gen5));
        let power = transient_probability(&spec(FailureKind::Power, HardwareSku::Gen5));
        assert!(net > kern && kern > disk && disk > power);
        assert!(power >= 0.02, "probability floor");
    }

    #[test]
    fn downtime_of_transient_quick_recovery() {
        let inc = Incident {
            spec: spec(FailureKind::Network, HardwareSku::Gen6),
            transient: true,
            recovery_time_min: 1.5,
            reboot_cost_min: 5.0,
        };
        // Waiting at least 1.5 min captures the self-recovery.
        assert_eq!(inc.downtime(2.0), 1.5);
        assert_eq!(inc.downtime(10.0), 1.5);
        // Waiting only 1 min forces a reboot: 1 + 5.
        assert_eq!(inc.downtime(1.0), 6.0);
    }

    #[test]
    fn downtime_of_hard_failure_grows_with_wait() {
        let inc = Incident {
            spec: spec(FailureKind::Power, HardwareSku::Gen4),
            transient: false,
            recovery_time_min: 3.0, // irrelevant
            reboot_cost_min: 9.0,
        };
        assert_eq!(inc.downtime(1.0), 10.0);
        assert_eq!(inc.downtime(10.0), 19.0);
        // For hard failures, shorter waits strictly dominate.
        let r = inc.rewards();
        for w in r.windows(2) {
            assert!(w[0] >= w[1], "rewards must decrease with wait: {r:?}");
        }
    }

    #[test]
    fn rewards_are_normalized_and_ordered_correctly() {
        let mut rng = fork_rng(1, "inc");
        for _ in 0..500 {
            let inc = Incident::sample(MachineSpec::sample(&mut rng), &mut rng);
            let r = inc.rewards();
            assert_eq!(r.len(), NUM_ACTIONS);
            for &v in &r {
                assert!((0.0..=1.0).contains(&v), "reward {v}");
            }
        }
    }

    #[test]
    fn wait_minutes_maps_index() {
        assert_eq!(wait_minutes(0), 1.0);
        assert_eq!(wait_minutes(DEFAULT_ACTION), 10.0);
    }

    #[test]
    fn sampled_incident_statistics_match_model() {
        let s = spec(FailureKind::Network, HardwareSku::Gen6);
        let q = transient_probability(&s);
        let mut rng = fork_rng(2, "stats");
        let n = 20_000;
        let mut transients = 0;
        let mut recovery_sum = 0.0;
        for _ in 0..n {
            let inc = Incident::sample(s, &mut rng);
            if inc.transient {
                transients += 1;
            }
            recovery_sum += inc.recovery_time_min;
        }
        let frac = transients as f64 / n as f64;
        assert!((frac - q).abs() < 0.01, "transient fraction {frac} vs {q}");
        let mean_rec = recovery_sum / n as f64;
        let expect = mean_recovery_minutes(&s);
        assert!((mean_rec - expect).abs() < 0.2, "mean recovery {mean_rec}");
    }

    #[test]
    fn optimal_wait_depends_on_context() {
        // Network/Gen6 incidents (likely transient, fast recovery, cheap
        // reboot) favour a moderate wait; Power incidents (almost never
        // transient) favour the shortest wait. Check expected downtimes.
        let mut rng = fork_rng(3, "ctx");
        let mut mean_downtime = |k: FailureKind, action: usize| -> f64 {
            let s = spec(k, HardwareSku::Gen6);
            let n = 20_000;
            (0..n)
                .map(|_| downtime_minutes(&Incident::sample(s, &mut rng), action))
                .sum::<f64>()
                / n as f64
        };
        // For power failures, waiting 1 min beats waiting 10 min.
        assert!(mean_downtime(FailureKind::Power, 0) < mean_downtime(FailureKind::Power, 9));
        // For network failures, waiting ~4 min beats waiting 1 min
        // (recoveries take ≥ 0.5 min with mean ≈ 2.2).
        assert!(mean_downtime(FailureKind::Network, 3) < mean_downtime(FailureKind::Network, 0));
    }
}

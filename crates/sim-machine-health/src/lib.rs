//! Machine-health simulator — the Azure Compute scenario.
//!
//! The paper's most successful application (§3–§4): when a machine becomes
//! unresponsive, the controller must decide *how long to wait* before
//! rebooting it. Waiting risks downtime if the machine is truly dead;
//! rebooting early wastes the chance of a quick self-recovery (and a reboot
//! takes minutes on its own). At data-collection time Azure used a safe
//! default of waiting the maximum (10 min), which reveals the downtime of
//! *every* shorter wait — full feedback.
//!
//! The Azure logs are proprietary, so this crate generates a synthetic
//! fleet with the same structure (see DESIGN.md): each incident has
//! hardware/OS/failure-history context, a latent failure type (transient,
//! recovering on its own, or hard, needing the reboot), and a
//! context-dependent recovery-time distribution. The generator emits a
//! [`FullFeedbackDataset`] whose rewards are negated, normalized downtimes,
//! so greater is better — ready for `harvest_core::simulate` to turn into
//! exploration data and for the supervised skyline of Fig 4.
//!
//! [`FullFeedbackDataset`]: harvest_core::FullFeedbackDataset

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod failure;
pub mod machine;

pub use dataset::{generate_dataset, MachineHealthConfig};
pub use failure::{downtime_minutes, Incident};
pub use machine::{FailureKind, HardwareSku, MachineSpec};

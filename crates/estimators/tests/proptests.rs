//! Property tests for estimator identities and laws.

use proptest::prelude::*;

use harvest_core::policy::{ConstantPolicy, PointMassPolicy, UniformPolicy};
use harvest_core::sample::{Dataset, FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
use harvest_core::scorer::TableScorer;
use harvest_core::simulate::simulate_exploration;
use harvest_core::SimpleContext;
use harvest_estimators::ab::ab_test;
use harvest_estimators::bounds::{ab_radius, ips_min_n, ips_radius, BoundConfig};
use harvest_estimators::direct::direct_method;
use harvest_estimators::evaluator::{diagnose, ModelEstimatorKind};
use harvest_estimators::ips::ips_terms;
use harvest_estimators::trajectory::{per_decision_is, trajectory_is, Episode, Step};
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};

fn arb_dataset(k: usize) -> impl Strategy<Value = Dataset<SimpleContext>> {
    proptest::collection::vec((0..k, -3.0f64..3.0, 0.05f64..1.0), 1..80).prop_map(move |v| {
        Dataset::from_samples(
            v.into_iter()
                .map(|(a, r, p)| LoggedDecision {
                    context: SimpleContext::contextless(k),
                    action: a,
                    reward: r,
                    propensity: p,
                })
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #[test]
    fn ips_value_equals_mean_of_terms(data in arb_dataset(4), target in 0usize..4) {
        let pol = ConstantPolicy::new(target);
        let terms = ips_terms(&data, &pol);
        let est = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&data, &pol);
        let mean = terms.iter().sum::<f64>() / terms.len() as f64;
        prop_assert!((est.value - mean).abs() < 1e-9);
        prop_assert_eq!(est.n, data.len());
    }

    #[test]
    fn clipping_never_increases_magnitude_on_positive_rewards(
        samples in proptest::collection::vec((0usize..3, 0.0f64..3.0, 0.05f64..1.0), 1..60),
        max_w in 1.0f64..20.0,
        target in 0usize..3
    ) {
        let data = Dataset::from_samples(samples.into_iter().map(|(a, r, p)| LoggedDecision {
            context: SimpleContext::contextless(3),
            action: a, reward: r, propensity: p,
        }).collect()).unwrap();
        let pol = ConstantPolicy::new(target);
        let clipped = OffPolicyEvaluator::new(EstimatorKind::ClippedIps(max_w)).evaluate(&data, &pol);
        let raw = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&data, &pol);
        prop_assert!(clipped.value <= raw.value + 1e-12);
        prop_assert!(clipped.value >= 0.0);
    }

    #[test]
    fn dr_with_zero_model_equals_ips(data in arb_dataset(3), target in 0usize..3) {
        let pol = ConstantPolicy::new(target);
        let zero = TableScorer::new(vec![0.0; 3]);
        let dr = OffPolicyEvaluator::evaluate_with_model(
            &data, &pol, &zero, ModelEstimatorKind::DoublyRobust);
        let plain = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&data, &pol);
        prop_assert!((dr.value - plain.value).abs() < 1e-9);
    }

    #[test]
    fn dm_is_invariant_to_logged_rewards(
        data in arb_dataset(3),
        model_scores in proptest::collection::vec(-2.0f64..2.0, 3),
        target in 0usize..3
    ) {
        let pol = ConstantPolicy::new(target);
        let model = TableScorer::new(model_scores.clone());
        let dm = direct_method(&data, &pol, &model);
        // For a constant policy and a context-free model, DM is exactly the
        // model's score of the target action.
        prop_assert!((dm.value - model_scores[target]).abs() < 1e-9);
    }

    #[test]
    fn snips_and_ips_agree_when_all_propensities_equal(
        rewards_actions in proptest::collection::vec((0usize..2, -2.0f64..2.0), 2..60),
        target in 0usize..2
    ) {
        // With constant propensity p, snips = (sum matched r)/(#matched)
        // and ips = (sum matched r/p)/N. They agree when the match count
        // equals p·N exactly; more usefully, snips must equal the plain
        // mean of matched rewards.
        let p = 0.5;
        let data = Dataset::from_samples(rewards_actions.iter().map(|&(a, r)| LoggedDecision {
            context: SimpleContext::contextless(2),
            action: a, reward: r, propensity: p,
        }).collect()).unwrap();
        let pol = ConstantPolicy::new(target);
        let matched: Vec<f64> = rewards_actions.iter()
            .filter(|(a, _)| *a == target).map(|&(_, r)| r).collect();
        let est = OffPolicyEvaluator::new(EstimatorKind::Snips).evaluate(&data, &pol);
        if matched.is_empty() {
            prop_assert_eq!(est.matched, 0);
        } else {
            let mean = matched.iter().sum::<f64>() / matched.len() as f64;
            prop_assert!((est.value - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn bound_functions_are_monotone(
        eps1 in 0.01f64..0.5, eps2 in 0.01f64..0.5,
        n in 1e3f64..1e8, k in 1.0f64..1e7
    ) {
        let cfg = BoundConfig { c: 2.0, delta: 0.05 };
        let (lo, hi) = if eps1 < eps2 { (eps1, eps2) } else { (eps2, eps1) };
        prop_assert!(ips_radius(&cfg, hi, n, k) <= ips_radius(&cfg, lo, n, k));
        prop_assert!(ips_radius(&cfg, lo, 2.0 * n, k) < ips_radius(&cfg, lo, n, k));
        prop_assert!(ab_radius(&cfg, n, k) >= 0.0);
        // min_n inverts radius.
        let target = 0.05;
        let n_req = ips_min_n(&cfg, lo, k, target);
        prop_assert!((ips_radius(&cfg, lo, n_req, k) - target).abs() < 1e-9);
    }

    #[test]
    fn ab_test_partitions_all_samples(
        n in 1usize..500, arms in 1usize..6, seed in 0u64..100
    ) {
        use rand::SeedableRng;
        let data = FullFeedbackDataset::from_samples(
            (0..n).map(|_| FullFeedbackSample {
                context: SimpleContext::contextless(2),
                rewards: vec![0.2, 0.8],
            }).collect()
        ).unwrap();
        let policies: Vec<ConstantPolicy> =
            (0..arms).map(|i| ConstantPolicy::new(i % 2)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let results = ab_test(&data, &policies, &mut rng);
        prop_assert_eq!(results.len(), arms);
        let total: usize = results.iter().map(|a| a.estimate.n).sum();
        prop_assert_eq!(total, n);
        for arm in &results {
            if arm.estimate.n > 0 {
                // Each arm's estimate is an average of 0.2s and 0.8s
                // (within float summation slack).
                prop_assert!(arm.estimate.value > 0.2 - 1e-9);
                prop_assert!(arm.estimate.value < 0.8 + 1e-9);
            }
        }
    }

    #[test]
    fn trajectory_is_horizon_one_equals_single_step_pdis(
        steps in proptest::collection::vec((0usize..2, -2.0f64..2.0), 1..50),
        target in 0usize..2
    ) {
        let episodes: Vec<Episode<SimpleContext>> = steps.iter().map(|&(a, r)| Episode {
            steps: vec![Step {
                context: SimpleContext::contextless(2),
                action: a, reward: r, propensity: 0.5,
            }],
        }).collect();
        let pol = PointMassPolicy::new(ConstantPolicy::new(target));
        let tis = trajectory_is(&episodes, &pol);
        let pdis = per_decision_is(&episodes, &pol);
        prop_assert!((tis.value - pdis.value).abs() < 1e-12);
    }

    #[test]
    fn diagnostics_are_consistent(data in arb_dataset(3), target in 0usize..3) {
        let pol = ConstantPolicy::new(target);
        let d = diagnose(&data, &pol);
        prop_assert_eq!(d.n, data.len());
        prop_assert!((0.0..=1.0).contains(&d.match_rate));
        prop_assert!(d.effective_sample_size <= data.len() as f64 + 1e-9);
        prop_assert!(d.min_propensity > 0.0);
        if d.match_rate > 0.0 {
            prop_assert!(d.max_weight >= 1.0);
            prop_assert!(d.effective_sample_size > 0.0);
        }
    }

    #[test]
    fn ips_is_unbiased_in_expectation_over_seeds(
        k in 2usize..5,
        rewards in proptest::collection::vec(0.0f64..1.0, 2..5)
    ) {
        use rand::SeedableRng;
        // Small-scale empirical unbiasedness: average IPS over many action
        // reveals approaches the constant truth.
        let k = rewards.len().max(2).min(k.max(2));
        let rewards: Vec<f64> = (0..k).map(|i| rewards[i % rewards.len()]).collect();
        let full = FullFeedbackDataset::from_samples(
            (0..200).map(|_| FullFeedbackSample {
                context: SimpleContext::contextless(k),
                rewards: rewards.clone(),
            }).collect()
        ).unwrap();
        let pol = ConstantPolicy::new(0);
        let truth = rewards[0];
        let mut acc = 0.0;
        let reps = 40;
        for seed in 0..reps {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
            acc += OffPolicyEvaluator::new(EstimatorKind::Ips)
                .evaluate(&expl, &pol)
                .value;
        }
        let mean = acc / reps as f64;
        // Standard error of the mean over reps is small; allow generous slack.
        prop_assert!((mean - truth).abs() < 0.15, "mean {mean} vs truth {truth}");
    }
}

proptest! {
    #[test]
    fn drift_report_is_reflexively_clean_and_ks_bounded(
        values in proptest::collection::vec(-100.0f64..100.0, 2..80),
        other in proptest::collection::vec(-100.0f64..100.0, 2..80)
    ) {
        use harvest_estimators::drift::context_drift;
        let make = |vals: &[f64]| {
            Dataset::from_samples(vals.iter().map(|&x| LoggedDecision {
                context: SimpleContext::new(vec![x], 2),
                action: 0,
                reward: 0.0,
                propensity: 0.5,
            }).collect()).unwrap()
        };
        let a = make(&values);
        let b = make(&other);
        // Self-comparison never trips the wire.
        let self_report = context_drift(&a, &a);
        prop_assert!(!self_report.a1_violation_suspected(), "{self_report:?}");
        // Cross-comparison statistics are well-formed and symmetric.
        let ab = context_drift(&a, &b);
        let ba = context_drift(&b, &a);
        for (x, y) in ab.features.iter().zip(&ba.features) {
            prop_assert!((0.0..=1.0).contains(&x.ks_statistic));
            prop_assert!((x.ks_statistic - y.ks_statistic).abs() < 1e-9);
            prop_assert!((x.effect_size - y.effect_size).abs() < 1e-9
                || (x.effect_size.is_infinite() && y.effect_size.is_infinite()));
        }
    }

    #[test]
    fn weighted_pdis_is_bounded_by_stepwise_reward_range(
        steps in proptest::collection::vec(
            proptest::collection::vec((0usize..2, -3.0f64..3.0), 1..6), 1..50)
    ) {
        use harvest_estimators::trajectory::weighted_per_decision_is;
        let episodes: Vec<Episode<SimpleContext>> = steps.iter().map(|ep| Episode {
            steps: ep.iter().map(|&(a, r)| Step {
                context: SimpleContext::contextless(2),
                action: a,
                reward: r,
                propensity: 0.5,
            }).collect(),
        }).collect();
        let target = PointMassPolicy::new(ConstantPolicy::new(0));
        let est = weighted_per_decision_is(&episodes, &target);
        // Each step's normalized contribution lies within that step's
        // observed reward range, so |estimate| ≤ H · max |r|.
        let max_h = steps.iter().map(Vec::len).max().unwrap();
        let max_r = steps.iter().flatten().map(|&(_, r)| r.abs()).fold(0.0, f64::max);
        prop_assert!(est.value.abs() <= max_h as f64 * max_r + 1e-9,
            "wpdis {} exceeds {}", est.value, max_h as f64 * max_r);
    }
}

//! The deprecated free-function estimators must keep returning exactly what
//! the frozen [`OffPolicyEvaluator`] API returns, until they are removed.
//!
//! This file is the sanctioned home for `allow(deprecated)` in the
//! estimators crate (CI rejects the attribute anywhere else).

#![allow(deprecated)]

use harvest_core::policy::ConstantPolicy;
use harvest_core::sample::LoggedDecision;
use harvest_core::scorer::TableScorer;
use harvest_core::{Dataset, SimpleContext};
use harvest_estimators::dr::doubly_robust;
use harvest_estimators::evaluator::ModelEstimatorKind;
use harvest_estimators::ips::{clipped_ips, ips};
use harvest_estimators::snips::snips;
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};

/// A small dataset with uneven propensities so clipping and
/// self-normalization both have work to do.
fn data() -> Dataset<SimpleContext> {
    let mut d = Dataset::new();
    for i in 0..40u64 {
        let action = (i % 3) as usize;
        let propensity = match action {
            0 => 0.05,
            1 => 0.35,
            _ => 0.60,
        };
        d.push(LoggedDecision {
            context: SimpleContext::contextless(3),
            action,
            reward: (i as f64 * 0.73).sin(),
            propensity,
        })
        .unwrap();
    }
    d
}

#[test]
fn ips_shim_matches_the_evaluator() {
    let d = data();
    let p = ConstantPolicy::new(0);
    let old = ips(&d, &p);
    let new = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&d, &p);
    assert_eq!(old, new);
}

#[test]
fn clipped_ips_shim_matches_the_evaluator() {
    let d = data();
    let p = ConstantPolicy::new(0);
    for clip in [1.0, 5.0, 50.0] {
        let old = clipped_ips(&d, &p, clip);
        let new = OffPolicyEvaluator::new(EstimatorKind::ClippedIps(clip)).evaluate(&d, &p);
        assert_eq!(old, new, "clip {clip}");
    }
}

#[test]
fn snips_shim_matches_the_evaluator() {
    let d = data();
    for a in 0..3 {
        let p = ConstantPolicy::new(a);
        let old = snips(&d, &p);
        let new = OffPolicyEvaluator::new(EstimatorKind::Snips).evaluate(&d, &p);
        assert_eq!(old, new, "action {a}");
    }
}

#[test]
fn doubly_robust_shim_matches_the_evaluator() {
    let d = data();
    let p = ConstantPolicy::new(1);
    let model = TableScorer::new(vec![0.2, -0.1, 0.4]);
    let old = doubly_robust(&d, &p, &model);
    let new =
        OffPolicyEvaluator::evaluate_with_model(&d, &p, &model, ModelEstimatorKind::DoublyRobust);
    assert_eq!(old, new);
}

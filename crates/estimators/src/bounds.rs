//! Finite-sample guarantees: Eq. 1 and the A/B-testing counterpart.
//!
//! The paper's Eq. 1: with probability `1 − δ`, the IPS estimator evaluates
//! all `K` policies simultaneously to within
//!
//! ```text
//! radius = sqrt( C / (ε N) · ln(K / δ) )
//! ```
//!
//! where `ε` is the minimum propensity in the exploration data and `C` a
//! small constant, with rewards in `[0, 1]`. For A/B testing, each policy
//! sees only `N / K` of the traffic, so "the error could be as large as
//! `C · sqrt(K / N · ln(K/δ))`". The error scales **logarithmically** in K
//! for CB versus **polynomially** for A/B — since `1/ε ≪ K`, A/B is
//! exponentially worse (Fig 1).
//!
//! These closed forms regenerate Fig 1 (N required vs K) and Fig 2
//! (accuracy vs N for several ε).

use serde::{Deserialize, Serialize};

/// Constants shared by the bound computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundConfig {
    /// The small constant `C` of Eq. 1.
    pub c: f64,
    /// Failure probability `δ`.
    pub delta: f64,
}

impl BoundConfig {
    /// Typical constants used for Fig 1 in the paper (δ = 0.01).
    pub fn fig1() -> Self {
        BoundConfig {
            c: 2.0,
            delta: 0.01,
        }
    }

    /// Typical constants used for Fig 2 in the paper (δ = 0.05).
    pub fn fig2() -> Self {
        BoundConfig {
            c: 2.0,
            delta: 0.05,
        }
    }

    pub(crate) fn validate(&self, k: f64) {
        assert!(self.c.is_finite() && self.c > 0.0, "C must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1)"
        );
        assert!(k >= 1.0, "need at least one policy");
    }
}

/// Eq. 1: the simultaneous confidence radius for evaluating `k` policies
/// with IPS from `n` exploration samples of minimum propensity `epsilon`.
pub fn ips_radius(cfg: &BoundConfig, epsilon: f64, n: f64, k: f64) -> f64 {
    cfg.validate(k);
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    assert!(n > 0.0, "n must be positive");
    (cfg.c / (epsilon * n) * (k / cfg.delta).ln()).sqrt()
}

/// The A/B-testing counterpart: error for evaluating `k` policies by
/// splitting `n` samples of live traffic across them.
pub fn ab_radius(cfg: &BoundConfig, n: f64, k: f64) -> f64 {
    cfg.validate(k);
    assert!(n > 0.0, "n must be positive");
    cfg.c * (k / n * (k / cfg.delta).ln()).sqrt()
}

/// Fig 1, CB curve: samples needed so that the IPS radius over `k` policies
/// is at most `target_error`.
pub fn ips_min_n(cfg: &BoundConfig, epsilon: f64, k: f64, target_error: f64) -> f64 {
    cfg.validate(k);
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    assert!(target_error > 0.0, "target error must be positive");
    cfg.c * (k / cfg.delta).ln() / (epsilon * target_error * target_error)
}

/// Fig 1, A/B curve: samples needed so that the A/B radius over `k`
/// policies is at most `target_error`.
pub fn ab_min_n(cfg: &BoundConfig, k: f64, target_error: f64) -> f64 {
    cfg.validate(k);
    assert!(target_error > 0.0, "target error must be positive");
    cfg.c * cfg.c * k * (k / cfg.delta).ln() / (target_error * target_error)
}

/// Empirical Bernstein confidence radius (Maurer & Pontil 2009): a
/// data-dependent bound that replaces Eq. 1's worst-case `1/ε` with the
/// *observed* sample variance of the estimator terms:
///
/// ```text
/// radius = sqrt(2 V̂ ln(3K/δ) / n) + 3 R ln(3K/δ) / n
/// ```
///
/// where `V̂` is the sample variance of the per-sample terms and `R` their
/// range. Much tighter than Eq. 1 when the candidate policy matches the
/// logging policy often (small weights), and valid simultaneously for `k`
/// policies by the same union bound.
pub fn empirical_bernstein_radius(
    cfg: &BoundConfig,
    sample_variance: f64,
    range: f64,
    n: f64,
    k: f64,
) -> f64 {
    cfg.validate(k);
    assert!(n > 1.0, "need at least two samples");
    assert!(sample_variance >= 0.0, "variance must be non-negative");
    assert!(range >= 0.0, "range must be non-negative");
    let log_term = (3.0 * k / cfg.delta).ln();
    (2.0 * sample_variance * log_term / n).sqrt() + 3.0 * range * log_term / n
}

/// One row of the Fig 1 series: policies evaluated vs data required.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Number of policies evaluated simultaneously.
    pub k: f64,
    /// Samples required by off-policy (CB) evaluation.
    pub n_cb: f64,
    /// Samples required by A/B testing.
    pub n_ab: f64,
}

/// Generates the Fig 1 series: for each `k` in `ks`, the N required by CB
/// (at exploration floor `epsilon`) and by A/B testing to reach
/// `target_error`.
pub fn fig1_series(cfg: &BoundConfig, epsilon: f64, target_error: f64, ks: &[f64]) -> Vec<Fig1Row> {
    ks.iter()
        .map(|&k| Fig1Row {
            k,
            n_cb: ips_min_n(cfg, epsilon, k, target_error),
            n_ab: ab_min_n(cfg, k, target_error),
        })
        .collect()
}

/// One point of a Fig 2 curve: data size vs theoretical accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Number of exploration samples.
    pub n: f64,
    /// The Eq. 1 radius at that size.
    pub radius: f64,
}

/// Generates one Fig 2 curve: Eq. 1 accuracy over `ns` for a fixed
/// exploration floor `epsilon` and policy-class size `k`.
pub fn fig2_curve(cfg: &BoundConfig, epsilon: f64, k: f64, ns: &[f64]) -> Vec<Fig2Point> {
    ns.iter()
        .map(|&n| Fig2Point {
            n,
            radius: ips_radius(cfg, epsilon, n, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: BoundConfig = BoundConfig {
        c: 2.0,
        delta: 0.05,
    };

    #[test]
    fn radius_shrinks_with_n_and_epsilon() {
        let r1 = ips_radius(&CFG, 0.02, 1e6, 1e6);
        let r2 = ips_radius(&CFG, 0.02, 2e6, 1e6);
        let r3 = ips_radius(&CFG, 0.04, 1e6, 1e6);
        assert!(r2 < r1);
        assert!(r3 < r1);
        // Doubling epsilon = doubling N (the paper's "halves the data
        // required" insight).
        assert!((r2 - r3).abs() < 1e-12);
    }

    #[test]
    fn radius_grows_logarithmically_in_k() {
        let r_small = ips_radius(&CFG, 0.1, 1e6, 1e3);
        let r_big = ips_radius(&CFG, 0.1, 1e6, 1e6);
        assert!(r_big > r_small);
        // Going from 10^3 to 10^6 policies should grow the radius by
        // sqrt(ln(1e6/δ)/ln(1e3/δ)) ≈ 1.3, not 1000×.
        assert!(r_big / r_small < 1.5);
    }

    #[test]
    fn ab_radius_grows_polynomially_in_k() {
        let r_small = ab_radius(&CFG, 1e6, 10.0);
        let r_big = ab_radius(&CFG, 1e6, 1000.0);
        assert!(r_big / r_small > 9.0, "A/B error must scale ~sqrt(K)");
    }

    #[test]
    fn min_n_inverts_radius() {
        let eps = 0.04;
        let k = 1e6;
        let target = 0.05;
        let n = ips_min_n(&CFG, eps, k, target);
        let r = ips_radius(&CFG, eps, n, k);
        assert!((r - target).abs() < 1e-9, "radius {r} at inverted n {n}");
        let n_ab = ab_min_n(&CFG, k, target);
        let r_ab = ab_radius(&CFG, n_ab, k);
        assert!((r_ab - target).abs() < 1e-9);
    }

    #[test]
    fn cb_is_exponentially_more_efficient_figure1() {
        // Fig 1's headline: at K = 10^6, CB needs orders of magnitude less
        // data than A/B.
        let cfg = BoundConfig::fig1();
        let rows = fig1_series(&cfg, 0.1, 0.05, &[1.0, 1e3, 1e6]);
        let last = rows.last().unwrap();
        assert!(
            last.n_ab / last.n_cb > 1e4,
            "A/B {} vs CB {}",
            last.n_ab,
            last.n_cb
        );
        // CB requirement grows slowly (log K); A/B grows ~linearly in K.
        assert!(rows[2].n_cb / rows[0].n_cb < 10.0);
        assert!(rows[2].n_ab / rows[1].n_ab > 500.0);
    }

    #[test]
    fn fig2_diminishing_returns() {
        // Paper: "increasing N from 1.7 to 3.4 million improves accuracy by
        // less than 0.01" on the ε = 0.04 curve.
        let cfg = BoundConfig::fig2();
        let pts = fig2_curve(&cfg, 0.04, 1e6, &[1.7e6, 3.4e6]);
        let improvement = pts[0].radius - pts[1].radius;
        assert!(improvement > 0.0);
        assert!(improvement < 0.01, "improvement {improvement}");
    }

    #[test]
    fn fig2_epsilon_ordering() {
        let cfg = BoundConfig::fig2();
        let n = [1e6];
        let r_low = fig2_curve(&cfg, 0.02, 1e6, &n)[0].radius;
        let r_high = fig2_curve(&cfg, 0.25, 1e6, &n)[0].radius;
        assert!(r_high < r_low, "more exploration => tighter radius");
    }

    #[test]
    fn empirical_bernstein_tightens_with_low_variance() {
        // Same n and range: less variance => tighter radius.
        let tight = empirical_bernstein_radius(&CFG, 0.01, 2.0, 10_000.0, 1.0);
        let loose = empirical_bernstein_radius(&CFG, 1.0, 2.0, 10_000.0, 1.0);
        assert!(tight < loose);
        // Shrinks roughly as 1/sqrt(n) once the variance term dominates.
        let n1 = empirical_bernstein_radius(&CFG, 1.0, 2.0, 1e4, 1.0);
        let n2 = empirical_bernstein_radius(&CFG, 1.0, 2.0, 4e4, 1.0);
        assert!(n2 < n1 && n2 > n1 / 2.5);
    }

    #[test]
    fn empirical_bernstein_can_beat_eq1_on_benign_data() {
        // A frequently-matching policy under 10-action uniform logging:
        // IPS terms have variance ≈ E[(r/p)^2 · p] − v² ≈ 10·E[r²]·... — but
        // when the realized variance is small (say 2.0), the data-dependent
        // bound beats Eq. 1's worst case at the same n, K, δ.
        let n = 1e5;
        let k = 1e4;
        let eq1 = ips_radius(&CFG, 0.1, n, k);
        let bern = empirical_bernstein_radius(&CFG, 0.5, 10.0, n, k);
        assert!(bern < eq1, "bernstein {bern} vs eq1 {eq1}");
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn empirical_bernstein_needs_samples() {
        let _ = empirical_bernstein_radius(&CFG, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        let _ = ips_radius(&CFG, 0.0, 1e6, 10.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let bad = BoundConfig { c: 1.0, delta: 0.0 };
        let _ = ips_radius(&bad, 0.1, 1e6, 10.0);
    }
}

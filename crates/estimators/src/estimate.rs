//! The common result type returned by every estimator.

use serde::{Deserialize, Serialize};

/// An off-policy estimate of a policy's average reward, with diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The estimated average reward.
    pub value: f64,
    /// Number of exploration samples used.
    pub n: usize,
    /// Samples where the candidate's choice matched the logged action —
    /// the only samples that carry signal for IPS-family estimators.
    pub matched: usize,
    /// Standard error of the per-sample estimator terms (σ/√N). A quick
    /// sanity check; the rigorous bound is `bounds::ips_radius`.
    pub std_err: f64,
}

impl Estimate {
    /// Builds an estimate from the per-sample terms whose mean is the
    /// estimator value.
    pub fn from_terms(terms: &[f64], matched: usize) -> Estimate {
        let n = terms.len();
        if n == 0 {
            return Estimate {
                value: 0.0,
                n: 0,
                matched: 0,
                std_err: 0.0,
            };
        }
        let mean = terms.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            terms.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Estimate {
            value: mean,
            n,
            matched,
            std_err: (var / n as f64).sqrt(),
        }
    }

    /// Fraction of samples where the candidate matched the logged action.
    pub fn match_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.matched as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_terms_computes_mean_and_se() {
        let e = Estimate::from_terms(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(e.value, 2.5);
        assert_eq!(e.n, 4);
        assert_eq!(e.matched, 2);
        assert_eq!(e.match_rate(), 0.5);
        // var = 5/3, se = sqrt(5/12).
        assert!((e.std_err - (5.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_terms_are_safe() {
        let e = Estimate::from_terms(&[], 0);
        assert_eq!(e.value, 0.0);
        assert_eq!(e.match_rate(), 0.0);
    }

    #[test]
    fn single_term_has_zero_se() {
        let e = Estimate::from_terms(&[7.0], 1);
        assert_eq!(e.value, 7.0);
        assert_eq!(e.std_err, 0.0);
    }
}

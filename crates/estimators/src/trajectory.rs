//! Trajectory (episode-level) importance sampling.
//!
//! When decisions influence future contexts — load on a server after routing
//! to it — single-decision IPS breaks (paper §5, Table 2). The fix the paper
//! points to is "off-policy estimators that account for long-term effects
//! \[40\]": reweight by the probability of matching *sequences* of actions.
//!
//! This module implements the two standard sequence estimators over
//! [`Episode`]s:
//!
//! * [`trajectory_is`] — full-trajectory IS: an episode's return is weighted
//!   by the product of per-step ratios over the **whole** episode.
//! * [`per_decision_is`] — per-decision IS (PDIS): each reward `r_t` is
//!   weighted only by the ratios of steps `≤ t`, which is unbiased too but
//!   never pays for ratios of future steps.
//!
//! Both are unbiased — and both suffer variance exponential in the horizon,
//! because the product of `K` uniform-logging ratios for a deterministic
//! target is `Kᴴ` on the single matching trajectory and `0` elsewhere. The
//! `variance_profile` diagnostic quantifies exactly that blow-up, which is
//! the paper's argument for moving to doubly-robust hybrids.

use harvest_core::{Context, StochasticPolicy};
use serde::{Deserialize, Serialize};

use crate::estimate::Estimate;

/// One step of a logged episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step<C> {
    /// Context at this step.
    pub context: C,
    /// Action the logging policy took.
    pub action: usize,
    /// Reward observed at this step.
    pub reward: f64,
    /// Propensity of the logged action.
    pub propensity: f64,
}

/// A logged episode: an ordered sequence of dependent decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode<C> {
    /// The steps, in time order.
    pub steps: Vec<Step<C>>,
}

impl<C> Episode<C> {
    /// Episode length (horizon).
    pub fn horizon(&self) -> usize {
        self.steps.len()
    }

    /// Undiscounted return (sum of rewards).
    pub fn episode_return(&self) -> f64 {
        self.steps.iter().map(|s| s.reward).sum()
    }
}

/// Full-trajectory importance sampling: estimates the expected episode
/// return of `target` from episodes logged by another policy.
///
/// Each episode contributes `(∏ₜ π(aₜ|xₜ)/pₜ) · G` where `G` is its return.
pub fn trajectory_is<C, P>(episodes: &[Episode<C>], target: &P) -> Estimate
where
    C: Context,
    P: StochasticPolicy<C>,
{
    let mut terms = Vec::with_capacity(episodes.len());
    let mut matched = 0;
    for ep in episodes {
        let mut w = 1.0;
        for s in &ep.steps {
            w *= target.propensity_of(&s.context, s.action) / s.propensity;
            if w == 0.0 {
                break;
            }
        }
        if w > 0.0 {
            matched += 1;
        }
        terms.push(w * ep.episode_return());
    }
    Estimate::from_terms(&terms, matched)
}

/// Doubly-robust per-decision importance sampling (Jiang & Li 2016 — the
/// paper's §5 plan: "leveraging doubly robust techniques, which use
/// modeling to predict rewards, to reduce this variance").
///
/// Each episode contributes
///
/// ```text
/// Σₜ [ w_{t−1} · V̂(xₜ) + wₜ · (rₜ − r̂(xₜ, aₜ)) ]
/// ```
///
/// where `wₜ = ∏_{s ≤ t} π(a_s|x_s)/p_s`, `r̂` is a per-step reward model,
/// and `V̂(x) = Σ_a π(a|x) r̂(x, a)` is its value under the target policy.
/// Unbiased whenever PDIS is (the model terms telescope out in
/// expectation); variance shrinks with the model's residuals, because the
/// explosive high-order weights only multiply *residuals* instead of raw
/// rewards.
pub fn doubly_robust_pdis<C, P, M>(episodes: &[Episode<C>], target: &P, model: &M) -> Estimate
where
    C: Context,
    P: StochasticPolicy<C>,
    M: harvest_core::Scorer<C>,
{
    let mut terms = Vec::with_capacity(episodes.len());
    let mut matched = 0;
    for ep in episodes {
        let mut w_prev = 1.0;
        let mut total = 0.0;
        let mut any = false;
        for s in &ep.steps {
            // Model value of the target policy at this step.
            let probs = target.action_probabilities(&s.context);
            let v_hat: f64 = probs
                .iter()
                .enumerate()
                .map(|(a, &p)| p * model.score(&s.context, a))
                .sum();
            total += w_prev * v_hat;
            let w = w_prev * target.propensity_of(&s.context, s.action) / s.propensity;
            if w > 0.0 {
                any = true;
                total += w * (s.reward - model.score(&s.context, s.action));
            }
            w_prev = w;
            if w_prev == 0.0 {
                // Later steps still contribute their (zero-weighted)
                // baseline terms, which are all zero — stop early.
                break;
            }
        }
        if any {
            matched += 1;
        }
        terms.push(total);
    }
    Estimate::from_terms(&terms, matched)
}

/// Per-decision importance sampling (PDIS): each reward is weighted by the
/// cumulative ratio up to its own step only.
///
/// Each episode contributes `Σₜ (∏_{s ≤ t} π(a_s|x_s)/p_s) · rₜ`.
pub fn per_decision_is<C, P>(episodes: &[Episode<C>], target: &P) -> Estimate
where
    C: Context,
    P: StochasticPolicy<C>,
{
    let mut terms = Vec::with_capacity(episodes.len());
    let mut matched = 0;
    for ep in episodes {
        let mut w = 1.0;
        let mut total = 0.0;
        let mut any = false;
        for s in &ep.steps {
            w *= target.propensity_of(&s.context, s.action) / s.propensity;
            if w == 0.0 {
                break;
            }
            any = true;
            total += w * s.reward;
        }
        if any {
            matched += 1;
        }
        terms.push(total);
    }
    Estimate::from_terms(&terms, matched)
}

/// Weighted (self-normalized) per-decision importance sampling: at each
/// step the cumulative weights are normalized by their realized mass,
///
/// ```text
/// Σₜ [ Σᵢ wᵢ,ₜ · rᵢ,ₜ / Σᵢ wᵢ,ₜ ]
/// ```
///
/// (sum over episodes `i` within each step `t`). Like SNIPS for single
/// decisions: biased but consistent, bounded by the per-step reward range,
/// and dramatically lower variance than PDIS on long horizons where raw
/// weights span orders of magnitude. Steps where no episode carries weight
/// contribute zero (no information survives that deep).
pub fn weighted_per_decision_is<C, P>(episodes: &[Episode<C>], target: &P) -> Estimate
where
    C: Context,
    P: StochasticPolicy<C>,
{
    let max_h = episodes.iter().map(Episode::horizon).max().unwrap_or(0);
    // Running cumulative weight per episode.
    let mut weights: Vec<f64> = vec![1.0; episodes.len()];
    let mut total = 0.0;
    let mut any_matched = vec![false; episodes.len()];
    for t in 0..max_h {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, ep) in episodes.iter().enumerate() {
            let Some(s) = ep.steps.get(t) else { continue };
            if weights[i] == 0.0 {
                continue;
            }
            weights[i] *= target.propensity_of(&s.context, s.action) / s.propensity;
            if weights[i] > 0.0 {
                any_matched[i] = true;
                num += weights[i] * s.reward;
                den += weights[i];
            }
        }
        if den > 0.0 {
            total += num / den;
        }
    }
    let matched = any_matched.iter().filter(|&&m| m).count();
    Estimate {
        value: total,
        n: episodes.len(),
        matched,
        // Per-step normalization entangles episodes; use a bootstrap over
        // episodes for uncertainty instead of a per-term standard error.
        std_err: 0.0,
    }
}

/// How the importance-weight distribution degrades with horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightProfile {
    /// Horizon the profile was computed at (steps considered per episode).
    pub horizon: usize,
    /// Mean trajectory weight (should stay ≈ 1 for a well-specified
    /// target/logging pair — weights are a likelihood ratio).
    pub mean_weight: f64,
    /// Maximum trajectory weight observed.
    pub max_weight: f64,
    /// Effective sample size `(Σw)² / Σw²`, the standard "how many samples
    /// is this really" diagnostic; collapses toward 1 as variance explodes.
    pub effective_sample_size: f64,
    /// Fraction of episodes with nonzero weight.
    pub match_fraction: f64,
}

/// Computes [`WeightProfile`]s for truncated horizons `1..=max_horizon`,
/// quantifying the variance blow-up of trajectory IS.
pub fn variance_profile<C, P>(
    episodes: &[Episode<C>],
    target: &P,
    max_horizon: usize,
) -> Vec<WeightProfile>
where
    C: Context,
    P: StochasticPolicy<C>,
{
    (1..=max_horizon)
        .map(|h| {
            let weights: Vec<f64> = episodes
                .iter()
                .map(|ep| {
                    let mut w = 1.0;
                    for s in ep.steps.iter().take(h) {
                        w *= target.propensity_of(&s.context, s.action) / s.propensity;
                        if w == 0.0 {
                            break;
                        }
                    }
                    w
                })
                .collect();
            let sum: f64 = weights.iter().sum();
            let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
            let nonzero = weights.iter().filter(|&&w| w > 0.0).count();
            WeightProfile {
                horizon: h,
                mean_weight: sum / weights.len() as f64,
                max_weight: weights.iter().cloned().fold(0.0, f64::max),
                effective_sample_size: if sum_sq > 0.0 {
                    sum * sum / sum_sq
                } else {
                    0.0
                },
                match_fraction: nonzero as f64 / weights.len() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::policy::{ConstantPolicy, PointMassPolicy, UniformPolicy};
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    fn uniform_episodes(
        n: usize,
        horizon: usize,
        k: usize,
        seed: u64,
    ) -> Vec<Episode<SimpleContext>> {
        // Reward at each step = action index (deterministic), logged by
        // uniform random over k actions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Episode {
                steps: (0..horizon)
                    .map(|_| {
                        let a = rng.gen_range(0..k);
                        Step {
                            context: SimpleContext::contextless(k),
                            action: a,
                            reward: a as f64,
                            propensity: 1.0 / k as f64,
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn horizon_one_reduces_to_ips() {
        let eps = uniform_episodes(50_000, 1, 2, 1);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let tis = trajectory_is(&eps, &target);
        let pdis = per_decision_is(&eps, &target);
        // Truth: always action 1 => return 1 per episode.
        assert!((tis.value - 1.0).abs() < 0.02, "tis {}", tis.value);
        assert!((pdis.value - tis.value).abs() < 1e-12);
    }

    #[test]
    fn unbiased_at_moderate_horizon() {
        let eps = uniform_episodes(200_000, 3, 2, 2);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        // Truth: 3 steps of reward 1 => 3.
        let tis = trajectory_is(&eps, &target);
        assert!((tis.value - 3.0).abs() < 0.15, "tis {}", tis.value);
        let pdis = per_decision_is(&eps, &target);
        assert!((pdis.value - 3.0).abs() < 0.15, "pdis {}", pdis.value);
    }

    #[test]
    fn pdis_variance_not_above_trajectory_is() {
        let eps = uniform_episodes(20_000, 5, 2, 3);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let tis = trajectory_is(&eps, &target);
        let pdis = per_decision_is(&eps, &target);
        assert!(
            pdis.std_err <= tis.std_err + 1e-9,
            "pdis se {} vs tis se {}",
            pdis.std_err,
            tis.std_err
        );
    }

    #[test]
    fn match_fraction_decays_exponentially() {
        // The paper's §5 coverage argument: "a uniform random load
        // balancing policy will almost never choose the same server twenty
        // times in a row."
        let eps = uniform_episodes(10_000, 12, 2, 4);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let profile = variance_profile(&eps, &target, 12);
        assert_eq!(profile.len(), 12);
        // Match fraction halves with each extra step (2 actions).
        assert!((profile[0].match_fraction - 0.5).abs() < 0.02);
        assert!((profile[3].match_fraction - 0.0625).abs() < 0.01);
        assert!(profile[11].match_fraction < 0.002);
        // Mean weight stays ~1 (likelihood ratio) while max weight explodes.
        assert!((profile[0].mean_weight - 1.0).abs() < 0.05);
        assert!(profile[7].max_weight >= 100.0);
        // ESS collapses.
        assert!(profile[0].effective_sample_size > 4000.0);
        assert!(profile[11].effective_sample_size < 50.0);
    }

    #[test]
    fn uniform_target_has_unit_weights() {
        let eps = uniform_episodes(100, 5, 3, 5);
        let profile = variance_profile(&eps, &UniformPolicy::new(), 5);
        for p in profile {
            assert!((p.mean_weight - 1.0).abs() < 1e-9);
            assert!((p.max_weight - 1.0).abs() < 1e-9);
            assert_eq!(p.match_fraction, 1.0);
        }
    }

    #[test]
    fn stochastic_target_partial_credit() {
        // Target = uniform: every logged trajectory matches with ratio 1,
        // so the estimate is just the mean return.
        let eps = uniform_episodes(10_000, 4, 2, 6);
        let mean_return: f64 =
            eps.iter().map(|e| e.episode_return()).sum::<f64>() / eps.len() as f64;
        let tis = trajectory_is(&eps, &UniformPolicy::new());
        assert!((tis.value - mean_return).abs() < 1e-9);
    }

    #[test]
    fn empty_episode_list_is_safe() {
        let eps: Vec<Episode<SimpleContext>> = Vec::new();
        let target = PointMassPolicy::new(ConstantPolicy::new(0));
        assert_eq!(trajectory_is(&eps, &target).n, 0);
        assert_eq!(per_decision_is(&eps, &target).n, 0);
        let zero = harvest_core::scorer::TableScorer::new(vec![0.0, 0.0]);
        assert_eq!(doubly_robust_pdis(&eps, &target, &zero).n, 0);
    }

    #[test]
    fn dr_pdis_with_zero_model_equals_pdis() {
        let eps = uniform_episodes(2_000, 4, 2, 11);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let zero = harvest_core::scorer::TableScorer::new(vec![0.0, 0.0]);
        let dr = doubly_robust_pdis(&eps, &target, &zero);
        let pdis = per_decision_is(&eps, &target);
        assert!((dr.value - pdis.value).abs() < 1e-9);
        assert!((dr.std_err - pdis.std_err).abs() < 1e-9);
    }

    #[test]
    fn dr_pdis_with_perfect_model_cuts_variance() {
        // Rewards are a deterministic function of the action (reward = a),
        // so the table model [0, 1] is exact: the residual terms vanish and
        // only the (lower-order) state-distribution weights w_{t-1}·V̂
        // remain. DR keeps the unbiased value with a fraction of PDIS's
        // standard error.
        let eps = uniform_episodes(20_000, 6, 2, 12);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let perfect = harvest_core::scorer::TableScorer::new(vec![0.0, 1.0]);
        let dr = doubly_robust_pdis(&eps, &target, &perfect);
        let pdis = per_decision_is(&eps, &target);
        // Truth: 6 steps of reward 1.
        assert!((dr.value - 6.0).abs() < 0.15, "dr {}", dr.value);
        assert!(
            dr.std_err < 0.8 * pdis.std_err,
            "dr se {} vs pdis se {}",
            dr.std_err,
            pdis.std_err
        );
    }

    #[test]
    fn dr_pdis_unbiased_with_imperfect_model() {
        let eps = uniform_episodes(100_000, 4, 2, 13);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        // A biased model: thinks both actions pay 0.7.
        let rough = harvest_core::scorer::TableScorer::new(vec![0.7, 0.7]);
        let dr = doubly_robust_pdis(&eps, &target, &rough);
        assert!((dr.value - 4.0).abs() < 0.1, "dr {}", dr.value);
        // And still lower variance than plain PDIS.
        let pdis = per_decision_is(&eps, &target);
        assert!(
            dr.std_err < pdis.std_err,
            "dr se {} vs pdis se {}",
            dr.std_err,
            pdis.std_err
        );
    }

    #[test]
    fn dr_pdis_with_stochastic_target() {
        // Target = uniform: all weights are 1, so DR-PDIS = Σₜ V̂(xₜ) +
        // (rₜ − r̂(xₜ,aₜ)) — the model terms cancel the on-policy mean in
        // expectation, leaving an estimate statistically equal to the mean
        // return.
        let eps = uniform_episodes(20_000, 3, 2, 14);
        let mean_return: f64 =
            eps.iter().map(|e| e.episode_return()).sum::<f64>() / eps.len() as f64;
        let model = harvest_core::scorer::TableScorer::new(vec![0.3, 0.9]);
        let dr = doubly_robust_pdis(&eps, &UniformPolicy::new(), &model);
        assert!(
            (dr.value - mean_return).abs() < 0.02,
            "dr {} vs mean {mean_return}",
            dr.value
        );
    }

    #[test]
    fn weighted_pdis_matches_pdis_on_uniform_target() {
        // All ratios are 1, so per-step normalization divides by the
        // episode count: the estimate is the mean per-step reward summed
        // over steps = mean return.
        let eps = uniform_episodes(5_000, 3, 2, 21);
        let mean_return: f64 =
            eps.iter().map(|e| e.episode_return()).sum::<f64>() / eps.len() as f64;
        let wpdis = weighted_per_decision_is(&eps, &UniformPolicy::new());
        assert!((wpdis.value - mean_return).abs() < 1e-9);
        assert_eq!(wpdis.matched, eps.len());
    }

    #[test]
    fn weighted_pdis_is_bounded_on_long_horizons() {
        // Horizon 12 with a deterministic target: plain PDIS estimates from
        // the vanishing matched tail explode or zero out; the weighted
        // variant stays within the feasible return range [0, 12].
        let eps = uniform_episodes(10_000, 12, 2, 22);
        let target = PointMassPolicy::new(ConstantPolicy::new(1));
        let wpdis = weighted_per_decision_is(&eps, &target);
        assert!(
            (0.0..=12.0).contains(&wpdis.value),
            "wpdis {} out of feasible range",
            wpdis.value
        );
        // It should also land near the truth (12 × reward 1) for the
        // early, well-supported steps — allow generous slack for the deep
        // steps where support vanishes.
        assert!(wpdis.value > 6.0, "wpdis {}", wpdis.value);
    }

    #[test]
    fn weighted_pdis_empty_input() {
        let eps: Vec<Episode<SimpleContext>> = Vec::new();
        let target = PointMassPolicy::new(ConstantPolicy::new(0));
        let e = weighted_per_decision_is(&eps, &target);
        assert_eq!(e.n, 0);
        assert_eq!(e.value, 0.0);
    }
}

//! Policy search over a finite class.
//!
//! "The ability to evaluate any policy allows us to optimize over an entire
//! class of policies Π to find the best one, with accuracy given by Eq. 1"
//! (paper §4). Production systems use clever reductions for huge classes;
//! this reproduction searches explicitly — the class sizes in our
//! experiments (up to ~10⁶ template-generated policies) are enumerable.

use harvest_core::{Context, Dataset, Policy};

use crate::estimate::Estimate;
use crate::evaluator::{EstimatorKind, OffPolicyEvaluator};

/// The result of evaluating one candidate in a search.
#[derive(Debug, Clone)]
pub struct RankedPolicy {
    /// Index of the policy in the candidate list.
    pub index: usize,
    /// Name of the policy.
    pub name: String,
    /// Its off-policy estimate.
    pub estimate: Estimate,
}

/// Evaluates every candidate with the given estimator and returns them
/// ranked by estimated value, best first.
///
/// This is the "evaluate K policies on the same exploration data" operation
/// whose statistical cost is Eq. 1 — each additional candidate costs only
/// `log K` accuracy, not extra data.
pub fn rank_policies<C, P>(
    data: &Dataset<C>,
    candidates: &[P],
    estimator: EstimatorKind,
) -> Vec<RankedPolicy>
where
    C: Context,
    P: Policy<C>,
{
    let eval = OffPolicyEvaluator::new(estimator);
    let mut ranked: Vec<RankedPolicy> = candidates
        .iter()
        .enumerate()
        .map(|(index, p)| RankedPolicy {
            index,
            name: p.name(),
            estimate: eval.evaluate(data, p),
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.estimate
            .value
            .partial_cmp(&a.estimate.value)
            .expect("finite estimates")
    });
    ranked
}

/// Returns the single best candidate (by estimated value) and its estimate.
pub fn best_policy<C, P>(
    data: &Dataset<C>,
    candidates: &[P],
    estimator: EstimatorKind,
) -> Option<RankedPolicy>
where
    C: Context,
    P: Policy<C>,
{
    rank_policies(data, candidates, estimator)
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::policy::{ConstantPolicy, FnPolicy, UniformPolicy};
    use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample};
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    fn crossing_exploration(
        n: usize,
        seed: u64,
    ) -> (FullFeedbackDataset<SimpleContext>, Dataset<SimpleContext>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut full = FullFeedbackDataset::default();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            full.push(FullFeedbackSample {
                context: SimpleContext::new(vec![x], 2),
                rewards: vec![x, 1.0 - x],
            })
            .unwrap();
        }
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        (full, expl)
    }

    /// A family of threshold policies: take action 0 iff x > θ.
    fn threshold_class(n: usize) -> Vec<FnPolicy<impl Fn(&SimpleContext) -> usize + Clone>> {
        (0..n)
            .map(|i| {
                let theta = i as f64 / n as f64;
                FnPolicy::new(format!("theta={theta:.3}"), move |ctx: &SimpleContext| {
                    if ctx.shared_features()[0] > theta {
                        0
                    } else {
                        1
                    }
                })
            })
            .collect()
    }

    #[test]
    fn search_finds_the_true_best_threshold() {
        let (full, expl) = crossing_exploration(20_000, 1);
        let class = threshold_class(21);
        let best = best_policy(&expl, &class, EstimatorKind::Ips).unwrap();
        // Optimal threshold is 0.5; allow the neighbors.
        let theta = best.index as f64 / 21.0;
        assert!(
            (theta - 0.5).abs() <= 0.1,
            "picked theta {theta} ({})",
            best.name
        );
        // The picked policy must be near-optimal in ground truth.
        let truth = full.value_of_policy(&class[best.index]).unwrap();
        let opt = full.value_of_policy(&class[10]).unwrap();
        assert!(opt - truth < 0.02, "picked {truth}, optimal {opt}");
    }

    #[test]
    fn ranking_is_descending() {
        let (_, expl) = crossing_exploration(5000, 2);
        let class = vec![ConstantPolicy::new(0), ConstantPolicy::new(1)];
        let ranked = rank_policies(&expl, &class, EstimatorKind::Snips);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].estimate.value >= ranked[1].estimate.value);
    }

    #[test]
    fn empty_candidates_give_none() {
        let (_, expl) = crossing_exploration(100, 3);
        let class: Vec<ConstantPolicy> = Vec::new();
        assert!(best_policy(&expl, &class, EstimatorKind::Ips).is_none());
    }
}

//! Simulated A/B testing — the baseline off-policy evaluation is measured
//! against.
//!
//! "A/B testing … randomizes over policies" (paper §4): each interaction is
//! assigned to one of the K candidate policies, that policy's action is
//! taken, and only that policy's estimate benefits from the sample. The
//! crucial contrast with IPS: a datapoint informs exactly one policy here,
//! versus *every matching policy* under CB exploration.
//!
//! The simulation runs on full-feedback data (so each policy's chosen
//! action has a known reward) — exactly how the machine-health dataset is
//! used in §4.

use rand::Rng;

use harvest_core::{Context, FullFeedbackDataset, Policy};

use crate::estimate::Estimate;

/// The outcome of one arm of a simulated A/B test.
#[derive(Debug, Clone)]
pub struct AbArm {
    /// Name of the policy under test.
    pub name: String,
    /// Its on-policy estimate from its own traffic share.
    pub estimate: Estimate,
}

/// Simulates an A/B test of `policies` on full-feedback `data`.
///
/// Each sample is assigned uniformly at random to one arm; the arm's policy
/// picks an action and observes that action's reward. Each arm's estimate
/// is the mean reward over its own traffic only (≈ N/K samples each).
pub fn ab_test<C, P, R>(data: &FullFeedbackDataset<C>, policies: &[P], rng: &mut R) -> Vec<AbArm>
where
    C: Context,
    P: Policy<C>,
    R: Rng + ?Sized,
{
    assert!(!policies.is_empty(), "need at least one arm");
    let k = policies.len();
    let mut terms: Vec<Vec<f64>> = vec![Vec::new(); k];
    for s in data.samples() {
        let arm = rng.gen_range(0..k);
        let a = policies[arm].choose(&s.context).min(s.rewards.len() - 1);
        terms[arm].push(s.rewards[a]);
    }
    policies
        .iter()
        .zip(terms)
        .map(|(p, t)| {
            let matched = t.len();
            AbArm {
                name: p.name(),
                estimate: Estimate::from_terms(&t, matched),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EstimatorKind, OffPolicyEvaluator};
    use harvest_core::policy::{ConstantPolicy, UniformPolicy};
    use harvest_core::sample::FullFeedbackSample;
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::SimpleContext;
    use rand::SeedableRng;

    fn arms_data(n: usize, means: &[f64]) -> FullFeedbackDataset<SimpleContext> {
        let mut d = FullFeedbackDataset::default();
        for _ in 0..n {
            d.push(FullFeedbackSample {
                context: SimpleContext::contextless(means.len()),
                rewards: means.to_vec(),
            })
            .unwrap();
        }
        d
    }

    #[test]
    fn each_arm_estimates_its_own_policy() {
        let data = arms_data(9000, &[0.2, 0.5, 0.9]);
        let policies = vec![
            ConstantPolicy::new(0),
            ConstantPolicy::new(1),
            ConstantPolicy::new(2),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let arms = ab_test(&data, &policies, &mut rng);
        assert_eq!(arms.len(), 3);
        for (i, arm) in arms.iter().enumerate() {
            assert!(
                (arm.estimate.value - [0.2, 0.5, 0.9][i]).abs() < 1e-9,
                "arm {i} value {}",
                arm.estimate.value
            );
        }
    }

    #[test]
    fn traffic_splits_roughly_evenly() {
        let data = arms_data(10_000, &[0.0, 0.0]);
        let policies = vec![ConstantPolicy::new(0), ConstantPolicy::new(1)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let arms = ab_test(&data, &policies, &mut rng);
        let total: usize = arms.iter().map(|a| a.estimate.n).sum();
        assert_eq!(total, 10_000);
        for arm in &arms {
            assert!(
                (arm.estimate.n as f64 - 5000.0).abs() < 300.0,
                "share {}",
                arm.estimate.n
            );
        }
    }

    #[test]
    fn ab_per_policy_sample_count_shrinks_with_k_while_ips_does_not() {
        // The data-efficiency story of Fig 1, measured empirically: with K
        // arms, each A/B arm sees N/K samples; IPS evaluates each policy on
        // the matched fraction of *all* N samples (N/K_actions under
        // uniform logging — independent of how many policies you evaluate).
        let n = 12_000;
        let data = arms_data(n, &[0.1, 0.9]);
        let mut policies = Vec::new();
        for _ in 0..12 {
            policies.push(ConstantPolicy::new(0));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let arms = ab_test(&data, &policies, &mut rng);
        for arm in &arms {
            assert!(arm.estimate.n < 1500, "arm saw {} samples", arm.estimate.n);
        }
        // IPS: every one of the 12 identical policies is evaluated on all
        // matched samples (~ N/2 under 2-action uniform logging).
        let expl = simulate_exploration(&data, &UniformPolicy::new(), &mut rng);
        let e =
            OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&expl, &ConstantPolicy::new(0));
        assert!(e.matched > 5_000, "ips matched {}", e.matched);
        assert!((e.value - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arm_list_panics() {
        let data = arms_data(10, &[0.0]);
        let none: Vec<ConstantPolicy> = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = ab_test(&data, &none, &mut rng);
    }
}

//! Self-normalized IPS.
//!
//! ```text
//! snips(π) = Σₜ 1{π(xₜ)=aₜ} rₜ/pₜ  /  Σₜ 1{π(xₜ)=aₜ} 1/pₜ
//! ```
//!
//! Normalizing by the realized importance-weight mass removes the
//! sensitivity to weight noise that plagues plain IPS: the estimate is a
//! weighted average of observed rewards, hence always inside
//! `[min r, max r]` on matched samples. The price is a small (vanishing)
//! bias.

use harvest_core::{Context, Dataset, Policy};

use crate::estimate::Estimate;

/// The SNIPS estimate of `policy`'s average reward on `data`.
///
/// Returns a zero-value estimate with `matched == 0` if the policy matches
/// no logged action (the estimator is undefined there; callers should check
/// `matched`).
#[deprecated(
    since = "0.10.0",
    note = "use OffPolicyEvaluator::new(EstimatorKind::Snips).evaluate(..) or the \
            portfolio::Estimator trait"
)]
pub fn snips<C: Context, P: Policy<C> + ?Sized>(data: &Dataset<C>, policy: &P) -> Estimate {
    crate::evaluator::eval_snips(data, policy)
}

#[cfg(test)]
mod tests {
    use crate::evaluator::{eval_ips, eval_snips};
    use harvest_core::policy::{ConstantPolicy, UniformPolicy};
    use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::Dataset;
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    fn ctx(k: usize) -> SimpleContext {
        SimpleContext::contextless(k)
    }

    #[test]
    fn weighted_average_of_matched_rewards() {
        let data = Dataset::from_samples(vec![
            LoggedDecision {
                context: ctx(2),
                action: 0,
                reward: 1.0,
                propensity: 0.5,
            },
            LoggedDecision {
                context: ctx(2),
                action: 0,
                reward: 3.0,
                propensity: 0.25,
            },
            LoggedDecision {
                context: ctx(2),
                action: 1,
                reward: 100.0,
                propensity: 0.5,
            },
        ])
        .unwrap();
        // Weights 2 and 4 on rewards 1 and 3: (2·1 + 4·3)/6 = 14/6.
        let e = eval_snips(&data, &ConstantPolicy::new(0));
        assert!((e.value - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(e.matched, 2);
    }

    #[test]
    fn bounded_by_matched_reward_range() {
        // Tiny propensity makes IPS explode; SNIPS must stay in [0, 1].
        let data = Dataset::from_samples(vec![
            LoggedDecision {
                context: ctx(2),
                action: 0,
                reward: 1.0,
                propensity: 0.001,
            },
            LoggedDecision {
                context: ctx(2),
                action: 1,
                reward: 0.0,
                propensity: 0.999,
            },
        ])
        .unwrap();
        let pol = ConstantPolicy::new(0);
        assert!(eval_ips(&data, &pol).value > 100.0);
        let e = eval_snips(&data, &pol);
        assert!(e.value >= 0.0 && e.value <= 1.0, "snips {}", e.value);
    }

    #[test]
    fn converges_to_truth() {
        let mut full = FullFeedbackDataset::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            full.push(FullFeedbackSample {
                context: SimpleContext::new(vec![x], 2),
                rewards: vec![x, 1.0 - x],
            })
            .unwrap();
        }
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        let pol = ConstantPolicy::new(0);
        let truth = full.value_of_policy(&pol).unwrap();
        let e = eval_snips(&expl, &pol);
        assert!(
            (e.value - truth).abs() < 0.02,
            "est {} truth {truth}",
            e.value
        );
    }

    #[test]
    fn no_matches_is_flagged() {
        let data = Dataset::from_samples(vec![LoggedDecision {
            context: ctx(3),
            action: 1,
            reward: 1.0,
            propensity: 0.5,
        }])
        .unwrap();
        let e = eval_snips(&data, &ConstantPolicy::new(2));
        assert_eq!(e.matched, 0);
        assert_eq!(e.value, 0.0);
    }
}

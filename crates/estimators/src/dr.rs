//! Doubly robust (DR) estimation.
//!
//! ```text
//! dr(π) = (1/N) Σₜ [ r̂(xₜ, π(xₜ)) + 1{π(xₜ)=aₜ} (rₜ − r̂(xₜ, aₜ)) / pₜ ]
//! ```
//!
//! The direct-method term supplies a low-variance baseline; the IPS term
//! corrects its bias using only the *residual* `r − r̂`. The estimator is
//! unbiased if **either** the propensities or the reward model is correct
//! (Dudík, Langford & Li 2011 — the paper's reference \[7\]), and its
//! variance shrinks with the residual magnitude — the paper's §5 plan for
//! taming the variance of long-horizon estimators.

use harvest_core::{Context, Dataset, Policy, Scorer};

use crate::estimate::Estimate;

/// The doubly-robust estimate of `policy` on `data` under reward model
/// `model`.
#[deprecated(
    since = "0.10.0",
    note = "use OffPolicyEvaluator::evaluate_with_model(.., ModelEstimatorKind::DoublyRobust) \
            or the portfolio::Estimator trait"
)]
pub fn doubly_robust<C, P, M>(data: &Dataset<C>, policy: &P, model: &M) -> Estimate
where
    C: Context,
    P: Policy<C> + ?Sized,
    M: Scorer<C> + ?Sized,
{
    crate::evaluator::eval_dr(data, policy, model)
}

#[cfg(test)]
mod tests {
    use crate::direct::direct_method;
    use crate::evaluator::{eval_dr, eval_ips};
    use crate::ips::ips_terms;
    use harvest_core::policy::{ConstantPolicy, UniformPolicy};
    use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
    use harvest_core::scorer::TableScorer;
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::Dataset;
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    /// Full-feedback data with context-dependent rewards for two actions.
    fn crossing_full(n: usize, seed: u64) -> FullFeedbackDataset<SimpleContext> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = FullFeedbackDataset::default();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            d.push(FullFeedbackSample {
                context: SimpleContext::new(vec![x], 2),
                rewards: vec![x, 1.0 - x],
            })
            .unwrap();
        }
        d
    }

    #[test]
    fn dr_with_perfect_model_has_zero_variance() {
        // r̂ == r exactly: residuals vanish, every term equals the model
        // prediction, std_err ≈ model-prediction spread only.
        let data = Dataset::from_samples(
            (0..100)
                .map(|i| LoggedDecision {
                    context: SimpleContext::contextless(2),
                    action: i % 2,
                    reward: [0.3, 0.8][i % 2],
                    propensity: 0.5,
                })
                .collect(),
        )
        .unwrap();
        let perfect = TableScorer::new(vec![0.3, 0.8]);
        let e = eval_dr(&data, &ConstantPolicy::new(1), &perfect);
        assert!((e.value - 0.8).abs() < 1e-12);
        assert!(e.std_err < 1e-12, "residuals are zero -> no variance");
    }

    #[test]
    fn dr_unbiased_with_wrong_model_but_right_propensities() {
        let full = crossing_full(30_000, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        let wrong = TableScorer::new(vec![0.9, 0.9]); // badly biased model
        let pol = ConstantPolicy::new(0);
        let truth = full.value_of_policy(&pol).unwrap();
        let dm = direct_method(&expl, &pol, &wrong);
        assert!((dm.value - truth).abs() > 0.3, "DM should be badly biased");
        let dr = eval_dr(&expl, &pol, &wrong);
        assert!(
            (dr.value - truth).abs() < 0.03,
            "DR {} vs truth {truth}",
            dr.value
        );
    }

    #[test]
    fn dr_variance_below_ips_with_decent_model() {
        let full = crossing_full(5_000, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        // A decent (not perfect) model: constant 0.5 for both actions —
        // matches E[r] so residuals are centered.
        let model = TableScorer::new(vec![0.5, 0.5]);
        let pol = ConstantPolicy::new(0);
        let dr = eval_dr(&expl, &pol, &model);
        let ips_e = eval_ips(&expl, &pol);
        assert!(
            dr.std_err < ips_e.std_err,
            "dr se {} vs ips se {}",
            dr.std_err,
            ips_e.std_err
        );
        // And both should estimate ~0.5.
        assert!((dr.value - 0.5).abs() < 0.05);
    }

    #[test]
    fn dr_reduces_to_ips_with_zero_model() {
        let full = crossing_full(200, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        let zero = TableScorer::new(vec![0.0, 0.0]);
        let pol = ConstantPolicy::new(1);
        let dr = eval_dr(&expl, &pol, &zero);
        let terms = ips_terms(&expl, &pol);
        let ips_value = terms.iter().sum::<f64>() / terms.len() as f64;
        assert!((dr.value - ips_value).abs() < 1e-12);
    }
}

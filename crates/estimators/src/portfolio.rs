//! Portfolio shadow evaluation: score 100+ candidate policies in one
//! pass over recovered segment logs.
//!
//! The paper's promise is that one run's harvested exploration data
//! answers *many* counterfactual questions at once — the Multiworld
//! Testing loop. This module is that loop's evaluator: a streaming
//! one-pass engine that reads each log segment once and maintains `k`
//! parallel estimator accumulators (IPS, SNIPS, and DR, each with an
//! empirical-Bernstein confidence interval simultaneously valid across
//! the whole portfolio) for every candidate policy.
//!
//! # One-pass accumulator layout
//!
//! Per record, the expensive shared work happens once: segment recovery
//! (CRC + decode), the outcome join, context reconstruction, and the
//! reward-model scores `r̂(x, a)` for each action. Per candidate, the
//! importance weight `w = π(aₜ|xₜ)/pₜ` is computed **once** — as an
//! [`ObservedRecord`] — and shared by all three of that candidate's
//! accumulators; each accumulator then folds the precomputed terms into
//! a handful of running sums ([`crate::diagnostics::WeightStats`] plus
//! term moments). Nothing is buffered: memory is `O(k)`, not `O(n)`.
//!
//! # Parallel ≡ sequential, byte for byte
//!
//! Scavenging is parallelized *per segment* in two phases. Phase one
//! builds the cross-segment [`harvest_log::scavenge::OutcomeIndex`]
//! sequentially in segment order (rewards may land in a later segment
//! than their decision). Phase two evaluates each segment against the
//! finished index — a pure function of `(segment, index)` — on whatever
//! worker thread picks it up, producing one accumulator set per segment.
//! The merge then folds per-segment accumulators **in segment-index
//! order**, so the only thing parallelism changes is *which thread*
//! computes each partial, never the order of any floating-point
//! addition. Same segments, same seed ⇒ byte-identical estimates and
//! leaderboard JSON at any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use harvest_core::scorer::LinearScorer;
use harvest_core::{Context, Dataset, HarvestError, Scorer, SimpleContext, StochasticPolicy};
use harvest_log::record::LogRecord;
use harvest_log::scavenge::{scavenge_with_outcomes, OutcomeIndex, ScavengedSample};
use harvest_log::segment::{recover_segment, RecoveryStats};
use serde::Serialize;

use crate::bounds::{empirical_bernstein_radius, BoundConfig};
use crate::diagnostics::WeightStats;

/// A point estimate with its simultaneous confidence interval and the
/// sample-support diagnostics a promotion decision needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PolicyEstimate {
    /// The estimator's point value.
    pub point: f64,
    /// Lower confidence bound (`point − radius`; `−∞` when `n ≤ 1`).
    pub lcb: f64,
    /// Upper confidence bound (`point + radius`; `+∞` when `n ≤ 1`).
    pub ucb: f64,
    /// Kish effective sample size of this candidate's importance weights.
    pub ess: f64,
    /// Records observed.
    pub n: u64,
}

/// The shared per-(record, candidate) view: every expensive quantity is
/// computed once and handed to all three accumulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedRecord {
    /// The observed reward `rₜ`.
    pub reward: f64,
    /// The importance weight `π(aₜ|xₜ)/pₜ`, uncapped.
    pub weight: f64,
    /// The model baseline `Σₐ π(a|xₜ) r̂(xₜ, a)` (0 without a model).
    pub baseline: f64,
    /// The model's score for the logged action `r̂(xₜ, aₜ)` (0 without a
    /// model).
    pub model_logged: f64,
}

/// A streaming off-policy estimator: fold records in, merge partials,
/// read out a [`PolicyEstimate`].
///
/// Implementations must be mergeable: for a fixed partition of the
/// record stream and a fixed merge order, `observe` + `merge` must be a
/// pure function of the data, independent of which thread computed each
/// partial.
pub trait Estimator {
    /// Folds one precomputed record into the accumulator.
    fn observe(&mut self, record: &ObservedRecord);
    /// Merges another partial (over a disjoint, later record range).
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;
    /// The current estimate with its confidence interval.
    fn estimate(&self) -> PolicyEstimate;
}

/// Streaming moments of the per-record estimator terms, enough for the
/// empirical-Bernstein radius: count, sum, sum of squares, range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
struct TermMoments {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl TermMoments {
    fn new() -> Self {
        TermMoments {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, t: f64) {
        self.n += 1;
        self.sum += t;
        self.sum_sq += t * t;
        self.min = self.min.min(t);
        self.max = self.max.max(t);
    }

    fn merge(&mut self, other: &TermMoments) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn mean(&self) -> f64 {
        if self.n > 0 {
            self.sum / self.n as f64
        } else {
            0.0
        }
    }

    /// Bernstein radius around [`Self::mean`] at the config's δ,
    /// simultaneously valid for `k` candidates; `∞` when `n ≤ 1`.
    fn radius(&self, bound: &BoundConfig, k: f64) -> f64 {
        if self.n <= 1 {
            return f64::INFINITY;
        }
        let n = self.n as f64;
        // Sample variance from the streaming moments, floored at zero
        // against cancellation noise.
        let var = ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0);
        empirical_bernstein_radius(bound, var, self.max - self.min, n, k)
    }
}

fn interval(point: f64, radius: f64) -> (f64, f64) {
    (point - radius, point + radius)
}

/// Streaming clipped-IPS accumulator: terms `r · min(w, clip)`.
#[derive(Debug, Clone, PartialEq)]
pub struct IpsAccumulator {
    clip: f64,
    bound: BoundConfig,
    k: f64,
    terms: TermMoments,
    weights: WeightStats,
}

impl IpsAccumulator {
    /// An empty accumulator under `cfg`, with CIs simultaneously valid
    /// for `k` candidates.
    pub fn new(cfg: &EvaluatorConfig, k: f64) -> Self {
        IpsAccumulator {
            clip: cfg.clip,
            bound: cfg.bound,
            k,
            terms: TermMoments::new(),
            weights: WeightStats::new(cfg.clip),
        }
    }

    /// The weight diagnostics this accumulator has gathered.
    pub fn weight_stats(&self) -> &WeightStats {
        &self.weights
    }
}

impl Estimator for IpsAccumulator {
    fn observe(&mut self, record: &ObservedRecord) {
        self.terms
            .observe(record.reward * record.weight.min(self.clip));
        self.weights.observe(record.weight);
    }

    fn merge(&mut self, other: &Self) {
        self.terms.merge(&other.terms);
        self.weights.merge(&other.weights);
    }

    fn estimate(&self) -> PolicyEstimate {
        let point = self.terms.mean();
        let (lcb, ucb) = interval(point, self.terms.radius(&self.bound, self.k));
        PolicyEstimate {
            point,
            lcb,
            ucb,
            ess: self.weights.ess(),
            n: self.terms.n,
        }
    }
}

/// Streaming SNIPS accumulator: `Σ w·r / Σ w`, with the CI radius taken
/// around the `w·r` terms as the serve gate does.
#[derive(Debug, Clone, PartialEq)]
pub struct SnipsAccumulator {
    bound: BoundConfig,
    k: f64,
    terms: TermMoments,
    weights: WeightStats,
}

impl SnipsAccumulator {
    /// An empty accumulator under `cfg`, with CIs simultaneously valid
    /// for `k` candidates.
    pub fn new(cfg: &EvaluatorConfig, k: f64) -> Self {
        SnipsAccumulator {
            bound: cfg.bound,
            k,
            terms: TermMoments::new(),
            weights: WeightStats::new(cfg.clip),
        }
    }

    /// The weight diagnostics this accumulator has gathered.
    pub fn weight_stats(&self) -> &WeightStats {
        &self.weights
    }
}

impl Estimator for SnipsAccumulator {
    fn observe(&mut self, record: &ObservedRecord) {
        self.terms.observe(record.reward * record.weight);
        self.weights.observe(record.weight);
    }

    fn merge(&mut self, other: &Self) {
        self.terms.merge(&other.terms);
        self.weights.merge(&other.weights);
    }

    fn estimate(&self) -> PolicyEstimate {
        let point = if self.weights.sum > 0.0 {
            self.terms.sum / self.weights.sum
        } else {
            0.0
        };
        let (lcb, ucb) = interval(point, self.terms.radius(&self.bound, self.k));
        PolicyEstimate {
            point,
            lcb,
            ucb,
            ess: self.weights.ess(),
            n: self.terms.n,
        }
    }
}

/// Streaming doubly-robust accumulator: terms
/// `Σₐ π(a|x) r̂(x,a) + w (r − r̂(x, aₜ))`.
#[derive(Debug, Clone, PartialEq)]
pub struct DrAccumulator {
    bound: BoundConfig,
    k: f64,
    terms: TermMoments,
    weights: WeightStats,
}

impl DrAccumulator {
    /// An empty accumulator under `cfg`, with CIs simultaneously valid
    /// for `k` candidates.
    pub fn new(cfg: &EvaluatorConfig, k: f64) -> Self {
        DrAccumulator {
            bound: cfg.bound,
            k,
            terms: TermMoments::new(),
            weights: WeightStats::new(cfg.clip),
        }
    }

    /// The weight diagnostics this accumulator has gathered.
    pub fn weight_stats(&self) -> &WeightStats {
        &self.weights
    }
}

impl Estimator for DrAccumulator {
    fn observe(&mut self, record: &ObservedRecord) {
        self.terms
            .observe(record.baseline + record.weight * (record.reward - record.model_logged));
        self.weights.observe(record.weight);
    }

    fn merge(&mut self, other: &Self) {
        self.terms.merge(&other.terms);
        self.weights.merge(&other.weights);
    }

    fn estimate(&self) -> PolicyEstimate {
        let point = self.terms.mean();
        let (lcb, ucb) = interval(point, self.terms.radius(&self.bound, self.k));
        PolicyEstimate {
            point,
            lcb,
            ucb,
            ess: self.weights.ess(),
            n: self.terms.n,
        }
    }
}

/// A candidate decision rule the portfolio can score: fills the action
/// distribution it would serve for a context into a caller-owned buffer
/// (so the hot loop over 100+ candidates never allocates).
pub trait CandidatePolicy: Send + Sync {
    /// Writes `π(a|ctx)` for every action into `out` (cleared first).
    fn fill_probabilities(&self, ctx: &SimpleContext, out: &mut Vec<f64>);
}

/// Adapts any thread-safe [`StochasticPolicy`] over [`SimpleContext`]
/// into a portfolio candidate: `StochasticCandidate(UniformPolicy::new())`
/// scores the do-nothing incumbent, softmax and ε-greedy policies ride
/// along the same way.
#[derive(Debug, Clone)]
pub struct StochasticCandidate<P>(pub P);

impl<P: StochasticPolicy<SimpleContext> + Send + Sync> CandidatePolicy for StochasticCandidate<P> {
    fn fill_probabilities(&self, ctx: &SimpleContext, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.0.action_probabilities(ctx));
    }
}

/// ε-greedy over a linear scorer — the candidate shape the serve
/// trainer's portfolio uses. Fills probabilities without allocating:
/// `ε/K` everywhere plus `1 − ε` on the scorer's argmax (first action
/// wins ties, matching the serving path).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GreedyScorerCandidate {
    scorer: LinearScorer,
    epsilon: f64,
}

impl GreedyScorerCandidate {
    /// A candidate serving `scorer` greedily under an `epsilon` floor.
    pub fn new(scorer: LinearScorer, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be in [0, 1], got {epsilon}"
        );
        GreedyScorerCandidate { scorer, epsilon }
    }

    /// The scorer this candidate serves.
    pub fn scorer(&self) -> &LinearScorer {
        &self.scorer
    }
}

impl CandidatePolicy for GreedyScorerCandidate {
    fn fill_probabilities(&self, ctx: &SimpleContext, out: &mut Vec<f64>) {
        let k = ctx.num_actions();
        out.clear();
        out.resize(k, self.epsilon / k as f64);
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for a in 0..k {
            let s = self.scorer.score(ctx, a);
            if s > best_score {
                best_score = s;
                best = a;
            }
        }
        out[best] += 1.0 - self.epsilon;
    }
}

/// A named portfolio member.
pub struct Candidate {
    name: String,
    policy: Box<dyn CandidatePolicy>,
}

impl Candidate {
    /// Wraps `policy` under a leaderboard `name`.
    pub fn new(name: impl Into<String>, policy: impl CandidatePolicy + 'static) -> Self {
        Candidate {
            name: name.into(),
            policy: Box::new(policy),
        }
    }

    /// The leaderboard name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Candidate")
            .field("name", &self.name)
            .finish()
    }
}

/// How the evaluator clips, bounds, and parallelizes.
///
/// `#[non_exhaustive]`: construct through [`EvaluatorConfig::builder`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvaluatorConfig {
    /// Importance-weight cap for the IPS terms and the threshold the
    /// clipped-mass diagnostic counts against.
    pub clip: f64,
    /// Empirical-Bernstein bound parameters (the CI's δ lives here).
    pub bound: BoundConfig,
    /// Worker threads for the per-segment scavenge. `1` runs inline;
    /// results are byte-identical at any setting.
    pub parallelism: usize,
}

impl Default for EvaluatorConfig {
    fn default() -> Self {
        EvaluatorConfig {
            clip: 10.0,
            bound: BoundConfig {
                c: 2.0,
                delta: 0.05,
            },
            parallelism: 1,
        }
    }
}

impl EvaluatorConfig {
    /// A builder starting from the defaults (clip 10, δ = 0.05,
    /// sequential).
    pub fn builder() -> EvaluatorConfigBuilder {
        EvaluatorConfigBuilder {
            cfg: EvaluatorConfig::default(),
        }
    }
}

/// Builder for [`EvaluatorConfig`].
#[derive(Debug, Clone)]
pub struct EvaluatorConfigBuilder {
    cfg: EvaluatorConfig,
}

impl EvaluatorConfigBuilder {
    /// Importance-weight cap (must be positive).
    pub fn clip(mut self, clip: f64) -> Self {
        self.cfg.clip = clip;
        self
    }

    /// Confidence level δ for the per-candidate CIs.
    pub fn delta(mut self, delta: f64) -> Self {
        self.cfg.bound.delta = delta;
        self
    }

    /// Full bound configuration (overrides [`Self::delta`]).
    pub fn bound(mut self, bound: BoundConfig) -> Self {
        self.cfg.bound = bound;
        self
    }

    /// Worker threads for the per-segment scavenge (min 1).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Finishes the config, panicking on nonsensical knobs (matching the
    /// serve builders' fail-fast convention).
    pub fn build(self) -> EvaluatorConfig {
        assert!(
            self.cfg.clip > 0.0,
            "clip must be positive, got {}",
            self.cfg.clip
        );
        assert!(self.cfg.parallelism >= 1, "parallelism must be at least 1");
        self.cfg.bound.validate(1.0);
        self.cfg
    }
}

/// One leaderboard row: every estimator's view of one candidate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LeaderboardEntry {
    /// 1-based rank after sorting by the ranking estimator's LCB.
    pub rank: usize,
    /// The candidate's name.
    pub name: String,
    /// Clipped-IPS estimate.
    pub ips: PolicyEstimate,
    /// SNIPS estimate (the default ranking key).
    pub snips: PolicyEstimate,
    /// Doubly-robust estimate.
    pub dr: PolicyEstimate,
    /// Kish effective sample size of this candidate's weights.
    pub ess: f64,
    /// Fraction of this candidate's weight mass above the clip.
    pub clipped_mass: f64,
}

/// The ranked result of one portfolio pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PortfolioReport {
    /// Samples scored (joined decisions).
    pub n: usize,
    /// Segments read.
    pub segments: usize,
    /// Record frames quarantined by segment recovery.
    pub quarantined: usize,
    /// Decisions skipped (missing outcome or invalid fields).
    pub skipped: usize,
    /// One row per candidate, best LCB first.
    pub entries: Vec<LeaderboardEntry>,
}

impl PortfolioReport {
    /// The winning row (rank 1), if any candidates were scored.
    pub fn winner(&self) -> Option<&LeaderboardEntry> {
        self.entries.first()
    }

    /// The leaderboard as deterministic JSON (non-finite bounds render
    /// as `null`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("leaderboard serializes")
    }
}

/// The per-candidate accumulator set for one record range.
struct CandidateState {
    ips: IpsAccumulator,
    snips: SnipsAccumulator,
    dr: DrAccumulator,
}

/// One segment's evaluation output: accumulators plus join counters.
struct SegmentResult {
    states: Vec<CandidateState>,
    joined: usize,
    skipped: usize,
}

/// The frozen portfolio evaluator: a fixed candidate set, an optional
/// DR reward model, and an [`EvaluatorConfig`].
///
/// Build one with [`PortfolioEvaluator::builder`], then call
/// [`evaluate_segments`](Self::evaluate_segments) for the one-pass
/// segment-log path or [`evaluate_dataset`](Self::evaluate_dataset) for
/// already-harvested data.
pub struct PortfolioEvaluator {
    cfg: EvaluatorConfig,
    candidates: Vec<Candidate>,
    model: Option<LinearScorer>,
}

impl std::fmt::Debug for PortfolioEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioEvaluator")
            .field("cfg", &self.cfg)
            .field("candidates", &self.candidates.len())
            .field("model", &self.model.is_some())
            .finish()
    }
}

/// Builder for [`PortfolioEvaluator`].
#[derive(Debug, Default)]
pub struct PortfolioEvaluatorBuilder {
    cfg: Option<EvaluatorConfig>,
    candidates: Vec<Candidate>,
    model: Option<LinearScorer>,
}

impl PortfolioEvaluatorBuilder {
    /// Sets the evaluator configuration (defaults otherwise).
    pub fn config(mut self, cfg: EvaluatorConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Adds one candidate.
    pub fn candidate(mut self, candidate: Candidate) -> Self {
        self.candidates.push(candidate);
        self
    }

    /// Adds many candidates.
    pub fn candidates(mut self, candidates: impl IntoIterator<Item = Candidate>) -> Self {
        self.candidates.extend(candidates);
        self
    }

    /// Sets the reward model backing the DR baseline (without one, DR
    /// degenerates to unclipped IPS).
    pub fn model(mut self, model: LinearScorer) -> Self {
        self.model = Some(model);
        self
    }

    /// Finishes the evaluator. Errors with
    /// [`HarvestError::EmptyDataset`] when no candidates were added —
    /// an empty portfolio can never produce a leaderboard.
    pub fn build(self) -> Result<PortfolioEvaluator, HarvestError> {
        if self.candidates.is_empty() {
            return Err(HarvestError::EmptyDataset);
        }
        let cfg = self.cfg.unwrap_or_default();
        cfg.bound.validate(self.candidates.len() as f64);
        Ok(PortfolioEvaluator {
            cfg,
            candidates: self.candidates,
            model: self.model,
        })
    }
}

impl PortfolioEvaluator {
    /// Starts a builder.
    pub fn builder() -> PortfolioEvaluatorBuilder {
        PortfolioEvaluatorBuilder::default()
    }

    /// The candidate count `k`.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Always false: the builder rejects empty portfolios.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The evaluator configuration.
    pub fn config(&self) -> &EvaluatorConfig {
        &self.cfg
    }

    fn fresh_states(&self) -> Vec<CandidateState> {
        let k = self.candidates.len() as f64;
        self.candidates
            .iter()
            .map(|_| CandidateState {
                ips: IpsAccumulator::new(&self.cfg, k),
                snips: SnipsAccumulator::new(&self.cfg, k),
                dr: DrAccumulator::new(&self.cfg, k),
            })
            .collect()
    }

    /// Folds one scavenged sample into every candidate's accumulators.
    /// The shared per-record work (propensity inversion, model scores)
    /// happens once, outside the candidate loop.
    fn observe_sample(
        &self,
        states: &mut [CandidateState],
        sample: &ScavengedSample,
        probs: &mut Vec<f64>,
        scores: &mut Vec<f64>,
    ) {
        let ctx = &sample.context;
        let num_actions = ctx.num_actions();
        let propensity = sample.propensity.unwrap_or(1.0 / num_actions as f64);
        let inv_p = 1.0 / propensity;
        scores.clear();
        if let Some(model) = &self.model {
            scores.extend((0..num_actions).map(|a| model.score(ctx, a)));
        }
        let model_logged = scores.get(sample.action).copied().unwrap_or(0.0);
        for (candidate, state) in self.candidates.iter().zip(states.iter_mut()) {
            candidate.policy.fill_probabilities(ctx, probs);
            debug_assert_eq!(probs.len(), num_actions, "candidate filled wrong arity");
            let weight = probs[sample.action] * inv_p;
            let baseline = if scores.is_empty() {
                0.0
            } else {
                probs
                    .iter()
                    .zip(scores.iter())
                    .map(|(p, s)| p * s)
                    .sum::<f64>()
            };
            let record = ObservedRecord {
                reward: sample.reward,
                weight,
                baseline,
                model_logged,
            };
            state.ips.observe(&record);
            state.snips.observe(&record);
            state.dr.observe(&record);
        }
    }

    /// Evaluates one recovered segment against the prebuilt outcome
    /// index: a pure function of its inputs, safe to run on any thread.
    fn evaluate_one_segment(&self, records: &[LogRecord], index: &OutcomeIndex) -> SegmentResult {
        let (samples, stats) = scavenge_with_outcomes(records, index);
        let mut states = self.fresh_states();
        let mut probs = Vec::new();
        let mut scores = Vec::new();
        for sample in &samples {
            self.observe_sample(&mut states, sample, &mut probs, &mut scores);
        }
        SegmentResult {
            states,
            joined: stats.joined,
            skipped: stats.missing_outcome + stats.invalid,
        }
    }

    /// One pass over crash-safe log segments (raw or compacted lifecycle
    /// shards): recovers each segment's valid prefix, joins rewards
    /// across segment boundaries, scores every candidate, and returns
    /// the ranked leaderboard plus the recovery ledger.
    ///
    /// With `parallelism > 1` the per-segment work fans out across that
    /// many worker threads; the result is byte-identical to the
    /// sequential pass (see the module docs for why).
    pub fn evaluate_segments(&self, segments: &[Vec<u8>]) -> (PortfolioReport, RecoveryStats) {
        // Phase A: recover every segment (parallel; each segment's
        // recovery is independent).
        let recovered: Vec<(Vec<LogRecord>, _)> =
            run_indexed(self.cfg.parallelism, segments.len(), |i| {
                recover_segment(&segments[i])
            });
        let mut recovery = RecoveryStats {
            segments: segments.len(),
            ..RecoveryStats::default()
        };
        for (_, seg) in &recovered {
            recovery.recovered += seg.recovered;
            recovery.quarantined_records += seg.quarantined_records;
            recovery.quarantined_bytes += seg.quarantined_bytes;
            if !seg.is_clean() {
                recovery.corrupt_segments += 1;
            }
        }

        // Phase B: the cross-segment outcome index, built sequentially
        // in segment order (last write wins, as the one-pass join does).
        let mut index = OutcomeIndex::new();
        for (records, _) in &recovered {
            index.index(records);
        }

        // Phase C: per-segment evaluation, fanned out across workers.
        let results: Vec<SegmentResult> = run_indexed(self.cfg.parallelism, recovered.len(), |i| {
            self.evaluate_one_segment(&recovered[i].0, &index)
        });

        // Merge in segment-index order — the step that pins down every
        // floating-point addition order regardless of thread schedule.
        let mut merged = self.fresh_states();
        let mut joined = 0;
        let mut skipped = 0;
        for result in results {
            joined += result.joined;
            skipped += result.skipped;
            for (into, from) in merged.iter_mut().zip(result.states.iter()) {
                into.ips.merge(&from.ips);
                into.snips.merge(&from.snips);
                into.dr.merge(&from.dr);
            }
        }

        let report = self.report(
            merged,
            joined,
            segments.len(),
            recovery.quarantined_records,
            skipped,
        );
        (report, recovery)
    }

    /// Scores the portfolio on an already-harvested dataset (the serve
    /// gate's path: propensities known, no segment machinery). Runs
    /// sequentially — gate rounds are small.
    pub fn evaluate_dataset(&self, data: &Dataset<SimpleContext>) -> PortfolioReport {
        let mut states = self.fresh_states();
        let mut probs = Vec::new();
        let mut scores = Vec::new();
        for s in data {
            let sample = ScavengedSample {
                context: s.context.clone(),
                action: s.action,
                reward: s.reward,
                propensity: Some(s.propensity),
            };
            self.observe_sample(&mut states, &sample, &mut probs, &mut scores);
        }
        let n = data.len();
        self.report(states, n, 0, 0, 0)
    }

    /// Ranks the merged accumulators into the final leaderboard, best
    /// SNIPS LCB first (ties broken by candidate index — stable sort).
    fn report(
        &self,
        states: Vec<CandidateState>,
        n: usize,
        segments: usize,
        quarantined: usize,
        skipped: usize,
    ) -> PortfolioReport {
        let mut entries: Vec<LeaderboardEntry> = self
            .candidates
            .iter()
            .zip(states.iter())
            .map(|(candidate, state)| {
                let weights = state.snips.weight_stats();
                LeaderboardEntry {
                    rank: 0,
                    name: candidate.name.clone(),
                    ips: state.ips.estimate(),
                    snips: state.snips.estimate(),
                    dr: state.dr.estimate(),
                    ess: weights.ess(),
                    clipped_mass: weights.clipped_mass(),
                }
            })
            .collect();
        entries.sort_by(|a, b| b.snips.lcb.total_cmp(&a.snips.lcb));
        for (i, e) in entries.iter_mut().enumerate() {
            e.rank = i + 1;
        }
        PortfolioReport {
            n,
            segments,
            quarantined,
            skipped,
            entries,
        }
    }
}

/// Runs `work(i)` for every `i < count`, preserving index order in the
/// output. With `parallelism > 1`, workers pull indices from a shared
/// counter and write into per-index slots, so *which thread* computes an
/// item never affects *where* its result lands.
fn run_indexed<T: Send>(
    parallelism: usize,
    count: usize,
    work: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if parallelism <= 1 || count <= 1 {
        return (0..count).map(work).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = parallelism.min(count);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = work(i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every index was computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{eval_dr, eval_ips, eval_snips};
    use harvest_core::policy::GreedyPolicy;
    use harvest_core::sample::LoggedDecision;
    use harvest_log::record::DecisionRecord;
    use harvest_log::segment::{MemorySegments, SegmentConfig, SegmentedLogWriter};

    fn scorer(w0: f64, w1: f64) -> LinearScorer {
        // φ = [x, 1]: action 0 scores w0·x, action 1 scores w1·(1 − x)
        // shaped weights chosen per test.
        LinearScorer::PerAction {
            weights: vec![vec![w0, 0.0], vec![-w1, w1]],
        }
    }

    fn crossing_data(n: usize) -> Dataset<SimpleContext> {
        // Deterministic crossing-reward log: x sweeps [0, 1), actions
        // alternate, propensity 0.5.
        Dataset::from_samples(
            (0..n)
                .map(|i| {
                    let x = (i as f64 + 0.5) / n as f64;
                    let action = i % 2;
                    LoggedDecision {
                        context: SimpleContext::new(vec![x], 2),
                        action,
                        reward: if action == 0 { x } else { 1.0 - x },
                        propensity: 0.5,
                    }
                })
                .collect(),
        )
        .unwrap()
    }

    fn decision(id: u64, x: f64, action: usize, reward: Option<f64>) -> LogRecord {
        LogRecord::Decision(DecisionRecord {
            request_id: id,
            timestamp_ns: id * 1000,
            component: "portfolio-test".to_string(),
            shared_features: vec![x],
            action_features: None,
            num_actions: 2,
            action,
            propensity: Some(0.5),
            reward,
        })
    }

    fn demo_evaluator(k: usize, parallelism: usize) -> PortfolioEvaluator {
        let candidates = (0..k).map(|j| {
            let tilt = j as f64 / k.max(1) as f64;
            Candidate::new(
                format!("cand-{j}"),
                GreedyScorerCandidate::new(scorer(1.0 - tilt, tilt.max(0.05)), 0.1),
            )
        });
        PortfolioEvaluator::builder()
            .config(
                EvaluatorConfig::builder()
                    .clip(10.0)
                    .delta(0.05)
                    .parallelism(parallelism)
                    .build(),
            )
            .candidates(candidates)
            .model(scorer(0.5, 0.5))
            .build()
            .unwrap()
    }

    fn demo_segments(n: u64) -> Vec<Vec<u8>> {
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: 16,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        for id in 0..n {
            let x = (id as f64 + 0.5) / n as f64;
            // Even ids carry the reward inline; odd ids resolve through a
            // later outcome record (often in the next segment).
            if id % 2 == 0 {
                w.write(&decision(id, x, (id % 2) as usize, Some(x)))
                    .unwrap();
            } else {
                w.write(&decision(id, x, (id % 2) as usize, None)).unwrap();
                w.write(&LogRecord::Outcome(harvest_log::record::OutcomeRecord {
                    request_id: id,
                    timestamp_ns: id * 2000,
                    reward: 1.0 - x,
                }))
                .unwrap();
            }
        }
        w.into_sink().unwrap().snapshot()
    }

    #[test]
    fn accumulators_match_batch_estimators_on_deterministic_policy() {
        // With ε = 0 the candidate is a deterministic greedy policy and
        // the streaming weights reduce to the classic indicator form, so
        // the accumulators must reproduce the batch estimators exactly.
        let data = crossing_data(200);
        let cfg = EvaluatorConfig::builder().clip(f64::MAX).build();
        let candidate = GreedyScorerCandidate::new(scorer(1.0, 1.0), 0.0);
        let policy = GreedyPolicy::new(scorer(1.0, 1.0));

        let mut ips_acc = IpsAccumulator::new(&cfg, 1.0);
        let mut snips_acc = SnipsAccumulator::new(&cfg, 1.0);
        let mut dr_acc = DrAccumulator::new(&cfg, 1.0);
        let model = scorer(0.5, 0.5);
        let mut probs = Vec::new();
        for s in &data {
            candidate.fill_probabilities(&s.context, &mut probs);
            let weight = probs[s.action] / s.propensity;
            let a_pi = probs.iter().position(|&p| p > 0.5).unwrap();
            let baseline = model.score(&s.context, a_pi);
            let record = ObservedRecord {
                reward: s.reward,
                weight,
                baseline,
                model_logged: model.score(&s.context, s.action),
            };
            ips_acc.observe(&record);
            snips_acc.observe(&record);
            dr_acc.observe(&record);
        }

        let want_ips = eval_ips(&data, &policy);
        let want_snips = eval_snips(&data, &policy);
        let want_dr = eval_dr(&data, &policy, &model);
        assert!((ips_acc.estimate().point - want_ips.value).abs() < 1e-12);
        assert!((snips_acc.estimate().point - want_snips.value).abs() < 1e-12);
        assert!((dr_acc.estimate().point - want_dr.value).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_stream_for_fixed_partition() {
        let data = crossing_data(100);
        let cfg = EvaluatorConfig::default();
        let candidate = GreedyScorerCandidate::new(scorer(1.0, 1.0), 0.2);
        let observe_range = |lo: usize, hi: usize| {
            let mut acc = SnipsAccumulator::new(&cfg, 8.0);
            let mut probs = Vec::new();
            for s in data.samples()[lo..hi].iter() {
                candidate.fill_probabilities(&s.context, &mut probs);
                acc.observe(&ObservedRecord {
                    reward: s.reward,
                    weight: probs[s.action] / s.propensity,
                    baseline: 0.0,
                    model_logged: 0.0,
                });
            }
            acc
        };
        let mut a = observe_range(0, 40);
        a.merge(&observe_range(40, 100));
        let mut b = observe_range(0, 40);
        b.merge(&observe_range(40, 100));
        let ea = a.estimate();
        let eb = b.estimate();
        assert_eq!(ea.point.to_bits(), eb.point.to_bits());
        assert_eq!(ea.lcb.to_bits(), eb.lcb.to_bits());
        assert_eq!(ea.ess.to_bits(), eb.ess.to_bits());
        assert_eq!(ea.n, 100);
    }

    #[test]
    fn parallel_segments_equal_sequential_byte_for_byte() {
        let segments = demo_segments(300);
        let sequential = demo_evaluator(16, 1);
        let parallel = demo_evaluator(16, 8);
        let (seq_report, seq_rec) = sequential.evaluate_segments(&segments);
        let (par_report, par_rec) = parallel.evaluate_segments(&segments);
        assert_eq!(seq_rec, par_rec);
        assert_eq!(seq_report.to_json(), par_report.to_json());
        assert_eq!(seq_report, par_report);
        assert!(seq_report.n > 0);
    }

    #[test]
    fn leaderboard_is_ranked_by_snips_lcb() {
        let segments = demo_segments(400);
        let (report, _) = demo_evaluator(8, 1).evaluate_segments(&segments);
        assert_eq!(report.entries.len(), 8);
        for (i, e) in report.entries.iter().enumerate() {
            assert_eq!(e.rank, i + 1);
        }
        for pair in report.entries.windows(2) {
            assert!(
                pair[0].snips.lcb >= pair[1].snips.lcb,
                "leaderboard out of order: {} before {}",
                pair[0].snips.lcb,
                pair[1].snips.lcb
            );
        }
        assert_eq!(report.winner().unwrap().rank, 1);
    }

    #[test]
    fn dataset_path_scores_all_candidates() {
        let data = crossing_data(500);
        let report = demo_evaluator(12, 1).evaluate_dataset(&data);
        assert_eq!(report.n, 500);
        assert_eq!(report.entries.len(), 12);
        for e in &report.entries {
            assert_eq!(e.snips.n, 500);
            assert!(e.ess > 0.0);
            assert!(e.snips.lcb <= e.snips.point && e.snips.point <= e.snips.ucb);
        }
    }

    #[test]
    fn empty_portfolio_is_rejected() {
        let err = PortfolioEvaluator::builder().build().unwrap_err();
        assert!(matches!(err, HarvestError::EmptyDataset));
    }

    #[test]
    fn tiny_data_has_infinite_bounds_not_nans() {
        let data = crossing_data(1);
        let report = demo_evaluator(3, 1).evaluate_dataset(&data);
        for e in &report.entries {
            assert_eq!(e.snips.n, 1);
            assert!(e.snips.lcb == f64::NEG_INFINITY);
            assert!(e.snips.ucb == f64::INFINITY);
            assert!(!e.snips.point.is_nan());
        }
        // And the JSON still serializes (non-finite → null).
        assert!(report.to_json().contains("null"));
    }

    #[test]
    fn quarantined_damage_is_reported_not_scored() {
        let segments = demo_segments(200);
        let clean = demo_evaluator(4, 1).evaluate_segments(&segments).0;
        // Corrupt one mid-log segment: its quarantined suffix must drop
        // out of the score and show up in the ledger.
        let store = MemorySegments::new();
        store.replace_all(segments.clone());
        assert!(store.corrupt_payload(2, 1, 0x01));
        let (damaged, recovery) = demo_evaluator(4, 1).evaluate_segments(&store.snapshot());
        assert!(recovery.quarantined_records > 0);
        assert_eq!(recovery.corrupt_segments, 1);
        assert!(damaged.n < clean.n);
        assert_eq!(damaged.quarantined, recovery.quarantined_records);
    }
}

//! Context-drift diagnostics: detecting violations of assumption A1.
//!
//! Table 2's failure has a detectable signature: deploying a policy changed
//! the *distribution of contexts* (connection counts exploded on server 1),
//! so the logged contexts no longer describe the world the candidate policy
//! would create. A deployment pipeline can use that as a tripwire — compare
//! the contexts of a canary run against the exploration log, and distrust
//! every off-policy estimate if they diverge.
//!
//! The comparison is per shared-feature: mean shift in pooled-standard-
//! deviation units (an effect size, Cohen's d) plus a two-sample
//! Kolmogorov–Smirnov statistic, both hand-rolled.

use harvest_core::{Context, Dataset};
use serde::{Deserialize, Serialize};

/// Drift report for one shared-feature dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureDrift {
    /// Feature index within the shared feature vector.
    pub feature: usize,
    /// Mean in the logged (exploration) data.
    pub mean_logged: f64,
    /// Mean in the comparison (deployed/canary) data.
    pub mean_deployed: f64,
    /// Absolute standardized mean difference (Cohen's d); > 0.5 is
    /// conventionally a "medium" effect, > 0.8 "large".
    pub effect_size: f64,
    /// Two-sample Kolmogorov–Smirnov statistic (sup-distance between the
    /// empirical CDFs), in [0, 1].
    pub ks_statistic: f64,
}

/// A whole-context drift report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Per-feature drift, ordered by feature index.
    pub features: Vec<FeatureDrift>,
}

impl DriftReport {
    /// The largest per-feature effect size.
    pub fn max_effect_size(&self) -> f64 {
        self.features
            .iter()
            .map(|f| f.effect_size)
            .fold(0.0, f64::max)
    }

    /// The largest per-feature KS statistic.
    pub fn max_ks(&self) -> f64 {
        self.features
            .iter()
            .map(|f| f.ks_statistic)
            .fold(0.0, f64::max)
    }

    /// A conservative tripwire: true when any feature drifted by a large
    /// effect (d > 0.8) or the KS distance exceeds 0.3. When this fires,
    /// single-decision off-policy estimates computed on the logged data do
    /// not transfer to the deployed regime (assumption A1 is violated).
    pub fn a1_violation_suspected(&self) -> bool {
        self.features
            .iter()
            .any(|f| f.effect_size > 0.8 || f.ks_statistic > 0.3)
    }
}

fn ks_statistic(mut a: Vec<f64>, mut b: Vec<f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite features"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite features"));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    // Sweep the merged value axis; at each distinct value, advance past
    // every tied observation in both samples before comparing the CDFs.
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Compares the shared-feature distributions of two datasets.
///
/// Both datasets must carry contexts with the same shared-feature
/// dimension; extra dimensions in either are ignored (the comparison runs
/// over the common prefix).
pub fn context_drift<C: Context>(logged: &Dataset<C>, deployed: &Dataset<C>) -> DriftReport {
    let dim = logged
        .samples()
        .first()
        .map(|s| s.context.shared_features().len())
        .unwrap_or(0)
        .min(
            deployed
                .samples()
                .first()
                .map(|s| s.context.shared_features().len())
                .unwrap_or(0),
        );
    let features = (0..dim)
        .map(|f| {
            let xs: Vec<f64> = logged
                .iter()
                .map(|s| s.context.shared_features()[f])
                .collect();
            let ys: Vec<f64> = deployed
                .iter()
                .map(|s| s.context.shared_features()[f])
                .collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let var = |v: &[f64], m: f64| {
                if v.len() < 2 {
                    0.0
                } else {
                    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
                }
            };
            let (mx, my) = (mean(&xs), mean(&ys));
            let pooled = ((var(&xs, mx) + var(&ys, my)) / 2.0).sqrt();
            let effect_size = if pooled > 1e-12 {
                (mx - my).abs() / pooled
            } else if (mx - my).abs() > 1e-12 {
                f64::INFINITY
            } else {
                0.0
            };
            FeatureDrift {
                feature: f,
                mean_logged: mx,
                mean_deployed: my,
                effect_size,
                ks_statistic: ks_statistic(xs, ys),
            }
        })
        .collect();
    DriftReport { features }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::sample::LoggedDecision;
    use harvest_core::SimpleContext;

    fn dataset_with_feature(values: &[f64]) -> Dataset<SimpleContext> {
        Dataset::from_samples(
            values
                .iter()
                .map(|&x| LoggedDecision {
                    context: SimpleContext::new(vec![x], 2),
                    action: 0,
                    reward: 0.0,
                    propensity: 0.5,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_distributions_show_no_drift() {
        let vals: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let a = dataset_with_feature(&vals);
        let b = dataset_with_feature(&vals);
        let report = context_drift(&a, &b);
        assert_eq!(report.features.len(), 1);
        assert!(report.max_effect_size() < 1e-9);
        assert!(report.max_ks() < 0.02, "ks {}", report.max_ks());
        assert!(!report.a1_violation_suspected());
    }

    #[test]
    fn shifted_distributions_trip_the_wire() {
        let a: Vec<f64> = (0..300).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| (i % 10) as f64 + 20.0).collect();
        let report = context_drift(&dataset_with_feature(&a), &dataset_with_feature(&b));
        assert!(report.max_effect_size() > 3.0);
        assert!(report.max_ks() > 0.9);
        assert!(report.a1_violation_suspected());
    }

    #[test]
    fn constant_features_compare_exactly() {
        let a = dataset_with_feature(&[5.0; 50]);
        let b = dataset_with_feature(&[5.0; 50]);
        assert!(!context_drift(&a, &b).a1_violation_suspected());
        let c = dataset_with_feature(&[6.0; 50]);
        let report = context_drift(&a, &c);
        assert!(report.features[0].effect_size.is_infinite());
        assert!(report.a1_violation_suspected());
    }

    #[test]
    fn ks_statistic_known_values() {
        // Disjoint supports => KS = 1.
        assert!((ks_statistic(vec![1.0, 2.0], vec![5.0, 6.0]) - 1.0).abs() < 1e-12);
        // Identical singletons => small.
        assert!(ks_statistic(vec![3.0], vec![3.0]) <= 1.0);
    }

    #[test]
    fn empty_datasets_are_safe() {
        let empty: Dataset<SimpleContext> = Dataset::new();
        let a = dataset_with_feature(&[1.0]);
        let report = context_drift(&empty, &a);
        assert!(report.features.is_empty());
        assert!(!report.a1_violation_suspected());
    }
}

//! A unified evaluation front end: estimator selection, bootstrap
//! confidence intervals, and exploration-data diagnostics.

use rand::Rng;

use harvest_core::{Context, Dataset, Policy, Scorer};
use serde::{Deserialize, Serialize};

use crate::direct::direct_method;
use crate::estimate::Estimate;

/// Implementation behind [`crate::ips::ips`] and [`EstimatorKind::Ips`].
pub(crate) fn eval_ips<C: Context, P: Policy<C> + ?Sized>(
    data: &Dataset<C>,
    policy: &P,
) -> Estimate {
    eval_clipped_ips(data, policy, f64::INFINITY)
}

/// Implementation behind [`crate::ips::clipped_ips`] and
/// [`EstimatorKind::ClippedIps`].
pub(crate) fn eval_clipped_ips<C: Context, P: Policy<C> + ?Sized>(
    data: &Dataset<C>,
    policy: &P,
    max_weight: f64,
) -> Estimate {
    assert!(max_weight > 0.0, "max_weight must be positive");
    let mut terms = Vec::with_capacity(data.len());
    let mut matched = 0;
    for s in data {
        if policy.choose(&s.context) == s.action {
            matched += 1;
            let w = (1.0 / s.propensity).min(max_weight);
            terms.push(s.reward * w);
        } else {
            terms.push(0.0);
        }
    }
    Estimate::from_terms(&terms, matched)
}

/// Implementation behind [`crate::snips::snips`] and
/// [`EstimatorKind::Snips`].
pub(crate) fn eval_snips<C: Context, P: Policy<C> + ?Sized>(
    data: &Dataset<C>,
    policy: &P,
) -> Estimate {
    let mut num = 0.0;
    let mut den = 0.0;
    let mut matched = 0;
    let mut matched_terms = Vec::new();
    for s in data {
        if policy.choose(&s.context) == s.action {
            matched += 1;
            let w = 1.0 / s.propensity;
            num += s.reward * w;
            den += w;
            matched_terms.push(s.reward);
        }
    }
    if den == 0.0 {
        return Estimate {
            value: 0.0,
            n: data.len(),
            matched: 0,
            std_err: 0.0,
        };
    }
    // Std-err proxy: spread of matched rewards over √matched. (The exact
    // delta-method variance needs weight covariances; this proxy is
    // reported for diagnostics only.)
    let est = Estimate::from_terms(&matched_terms, matched);
    Estimate {
        value: num / den,
        n: data.len(),
        matched,
        std_err: est.std_err,
    }
}

/// Implementation behind [`crate::dr::doubly_robust`] and
/// [`ModelEstimatorKind::DoublyRobust`].
pub(crate) fn eval_dr<C, P, M>(data: &Dataset<C>, policy: &P, model: &M) -> Estimate
where
    C: Context,
    P: Policy<C> + ?Sized,
    M: Scorer<C> + ?Sized,
{
    let mut terms = Vec::with_capacity(data.len());
    let mut matched = 0;
    for s in data {
        let a_pi = policy.choose(&s.context);
        let mut term = model.score(&s.context, a_pi);
        if a_pi == s.action {
            matched += 1;
            term += (s.reward - model.score(&s.context, s.action)) / s.propensity;
        }
        terms.push(term);
    }
    Estimate::from_terms(&terms, matched)
}

/// Which model-free estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Plain inverse propensity scoring.
    Ips,
    /// IPS with importance weights clipped at the given maximum.
    ClippedIps(f64),
    /// Self-normalized IPS.
    Snips,
}

/// Which model-based estimator to use (both need a reward model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelEstimatorKind {
    /// Direct method: trust the model.
    DirectMethod,
    /// Doubly robust: model baseline + IPS correction.
    DoublyRobust,
}

/// Evaluates policies on exploration data with a chosen estimator.
#[derive(Debug, Clone, Copy)]
pub struct OffPolicyEvaluator {
    kind: EstimatorKind,
}

impl OffPolicyEvaluator {
    /// Creates an evaluator with the given estimator.
    pub fn new(kind: EstimatorKind) -> Self {
        OffPolicyEvaluator { kind }
    }

    /// The configured estimator.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Point estimate of `policy` on `data`.
    pub fn evaluate<C: Context, P: Policy<C> + ?Sized>(
        &self,
        data: &Dataset<C>,
        policy: &P,
    ) -> Estimate {
        match self.kind {
            EstimatorKind::Ips => eval_ips(data, policy),
            EstimatorKind::ClippedIps(max) => eval_clipped_ips(data, policy, max),
            EstimatorKind::Snips => eval_snips(data, policy),
        }
    }

    /// Point estimate with a reward model (direct method / doubly robust).
    pub fn evaluate_with_model<C, P, M>(
        data: &Dataset<C>,
        policy: &P,
        model: &M,
        kind: ModelEstimatorKind,
    ) -> Estimate
    where
        C: Context,
        P: Policy<C> + ?Sized,
        M: Scorer<C> + ?Sized,
    {
        match kind {
            ModelEstimatorKind::DirectMethod => direct_method(data, policy, model),
            ModelEstimatorKind::DoublyRobust => eval_dr(data, policy, model),
        }
    }

    /// Bootstrap percentile confidence interval for the estimate.
    ///
    /// Resamples the dataset with replacement `reps` times and returns the
    /// `(lo_q, hi_q)` percentiles of the re-estimated values — the
    /// procedure behind Fig 3's 5th/95th error bars.
    pub fn bootstrap_ci<C, P, R>(
        &self,
        data: &Dataset<C>,
        policy: &P,
        reps: usize,
        lo_q: f64,
        hi_q: f64,
        rng: &mut R,
    ) -> (f64, f64)
    where
        C: Context + Clone,
        P: Policy<C> + ?Sized,
        R: Rng + ?Sized,
    {
        assert!(reps > 0, "need at least one bootstrap replicate");
        assert!((0.0..=1.0).contains(&lo_q) && (0.0..=1.0).contains(&hi_q) && lo_q <= hi_q);
        let n = data.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        let samples = data.samples();
        let mut values = Vec::with_capacity(reps);
        for _ in 0..reps {
            let resample: Vec<_> = (0..n)
                .map(|_| samples[rng.gen_range(0..n)].clone())
                .collect();
            let ds = Dataset::from_samples(resample).expect("resampled from valid data");
            values.push(self.evaluate(&ds, policy).value);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        let pick = |q: f64| {
            let pos = q * (values.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        };
        (pick(lo_q), pick(hi_q))
    }
}

/// The IPS estimate of `policy` together with a data-dependent empirical
/// Bernstein confidence radius (simultaneously valid for `k` policies at
/// the bound config's δ).
///
/// Tighter than Eq. 1 whenever the realized importance weights are benign;
/// this is the bound a production evaluator would report per candidate.
pub fn ips_with_bernstein<C, P>(
    data: &Dataset<C>,
    policy: &P,
    cfg: &crate::bounds::BoundConfig,
    k: f64,
) -> (Estimate, f64)
where
    C: Context,
    P: Policy<C> + ?Sized,
{
    let terms = crate::ips::ips_terms(data, policy);
    let est = Estimate::from_terms(&terms, 0);
    let n = terms.len() as f64;
    if n < 2.0 {
        return (eval_ips(data, policy), f64::INFINITY);
    }
    let mean = est.value;
    let var = terms.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1.0);
    let lo = terms.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let radius = crate::bounds::empirical_bernstein_radius(cfg, var, hi - lo, n, k);
    (eval_ips(data, policy), radius)
}

/// Diagnostics about how well exploration data supports evaluating a
/// particular policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataDiagnostics {
    /// Number of samples.
    pub n: usize,
    /// Fraction of samples where the policy matches the logged action.
    pub match_rate: f64,
    /// Effective sample size of the matched importance weights.
    pub effective_sample_size: f64,
    /// Largest importance weight among matched samples.
    pub max_weight: f64,
    /// Smallest logged propensity in the data (the `ε` of Eq. 1).
    pub min_propensity: f64,
}

/// Computes [`DataDiagnostics`] for evaluating `policy` on `data`.
pub fn diagnose<C: Context, P: Policy<C> + ?Sized>(
    data: &Dataset<C>,
    policy: &P,
) -> DataDiagnostics {
    let mut matched = 0usize;
    let mut sum_w = 0.0;
    let mut sum_w2 = 0.0;
    let mut max_w: f64 = 0.0;
    for s in data {
        if policy.choose(&s.context) == s.action {
            matched += 1;
            let w = 1.0 / s.propensity;
            sum_w += w;
            sum_w2 += w * w;
            max_w = max_w.max(w);
        }
    }
    DataDiagnostics {
        n: data.len(),
        match_rate: if data.is_empty() {
            0.0
        } else {
            matched as f64 / data.len() as f64
        },
        effective_sample_size: if sum_w2 > 0.0 {
            sum_w * sum_w / sum_w2
        } else {
            0.0
        },
        max_weight: max_w,
        min_propensity: data.min_propensity().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::policy::{ConstantPolicy, UniformPolicy};
    use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
    use harvest_core::scorer::TableScorer;
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::SimpleContext;
    use rand::SeedableRng;

    fn bandit_exploration(
        n: usize,
        seed: u64,
    ) -> (FullFeedbackDataset<SimpleContext>, Dataset<SimpleContext>) {
        let mut full = FullFeedbackDataset::default();
        for _ in 0..n {
            full.push(FullFeedbackSample {
                context: SimpleContext::contextless(2),
                rewards: vec![0.3, 0.7],
            })
            .unwrap();
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        (full, expl)
    }

    #[test]
    fn kinds_dispatch() {
        let (_, expl) = bandit_exploration(5000, 1);
        let pol = ConstantPolicy::new(1);
        let v_ips = OffPolicyEvaluator::new(EstimatorKind::Ips)
            .evaluate(&expl, &pol)
            .value;
        let v_snips = OffPolicyEvaluator::new(EstimatorKind::Snips)
            .evaluate(&expl, &pol)
            .value;
        let v_clip = OffPolicyEvaluator::new(EstimatorKind::ClippedIps(1.0))
            .evaluate(&expl, &pol)
            .value;
        assert!((v_ips - 0.7).abs() < 0.05);
        assert!((v_snips - 0.7).abs() < 0.01);
        // Clipping at weight 1 halves the matched mass (p = 0.5 => w = 2
        // clipped to 1).
        assert!(v_clip < v_ips);
    }

    #[test]
    fn model_estimators_dispatch() {
        let (_, expl) = bandit_exploration(2000, 2);
        let pol = ConstantPolicy::new(1);
        let model = TableScorer::new(vec![0.3, 0.7]);
        let dm = OffPolicyEvaluator::evaluate_with_model(
            &expl,
            &pol,
            &model,
            ModelEstimatorKind::DirectMethod,
        );
        assert!((dm.value - 0.7).abs() < 1e-12);
        let dr = OffPolicyEvaluator::evaluate_with_model(
            &expl,
            &pol,
            &model,
            ModelEstimatorKind::DoublyRobust,
        );
        assert!((dr.value - 0.7).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_covers_truth_and_narrows() {
        let (full, expl) = bandit_exploration(4000, 3);
        let pol = ConstantPolicy::new(1);
        let truth = full.value_of_policy(&pol).unwrap();
        let eval = OffPolicyEvaluator::new(EstimatorKind::Ips);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (lo, hi) = eval.bootstrap_ci(&expl, &pol, 200, 0.05, 0.95, &mut rng);
        assert!(lo <= truth && truth <= hi, "[{lo}, {hi}] vs {truth}");
        // Larger dataset => narrower interval.
        let (_, expl_big) = bandit_exploration(40_000, 5);
        let (lo2, hi2) = eval.bootstrap_ci(&expl_big, &pol, 200, 0.05, 0.95, &mut rng);
        assert!(hi2 - lo2 < hi - lo, "widths {} vs {}", hi2 - lo2, hi - lo);
    }

    #[test]
    fn bootstrap_of_empty_data_is_zero() {
        let eval = OffPolicyEvaluator::new(EstimatorKind::Ips);
        let data: Dataset<SimpleContext> = Dataset::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert_eq!(
            eval.bootstrap_ci(&data, &ConstantPolicy::new(0), 10, 0.05, 0.95, &mut rng),
            (0.0, 0.0)
        );
    }

    #[test]
    fn bernstein_radius_brackets_the_truth() {
        let (full, expl) = bandit_exploration(20_000, 9);
        let pol = ConstantPolicy::new(1);
        let truth = full.value_of_policy(&pol).unwrap();
        let cfg = crate::bounds::BoundConfig {
            c: 2.0,
            delta: 0.05,
        };
        let (est, radius) = ips_with_bernstein(&expl, &pol, &cfg, 100.0);
        assert!(radius.is_finite() && radius > 0.0);
        assert!(
            (est.value - truth).abs() < radius,
            "estimate {} truth {truth} radius {radius}",
            est.value
        );
        // More data tightens the radius.
        let (_, expl_small) = bandit_exploration(2_000, 10);
        let (_, small_radius) = ips_with_bernstein(&expl_small, &pol, &cfg, 100.0);
        assert!(radius < small_radius);
    }

    #[test]
    fn bernstein_on_tiny_data_is_infinite() {
        let (_, expl) = bandit_exploration(1, 11);
        let cfg = crate::bounds::BoundConfig {
            c: 2.0,
            delta: 0.05,
        };
        let (_, radius) = ips_with_bernstein(&expl, &ConstantPolicy::new(0), &cfg, 1.0);
        assert!(radius.is_infinite());
    }

    #[test]
    fn diagnostics_report_support() {
        let data = Dataset::from_samples(vec![
            LoggedDecision {
                context: SimpleContext::contextless(2),
                action: 0,
                reward: 1.0,
                propensity: 0.25,
            },
            LoggedDecision {
                context: SimpleContext::contextless(2),
                action: 1,
                reward: 1.0,
                propensity: 0.75,
            },
        ])
        .unwrap();
        let d = diagnose(&data, &ConstantPolicy::new(0));
        assert_eq!(d.n, 2);
        assert_eq!(d.match_rate, 0.5);
        assert_eq!(d.max_weight, 4.0);
        assert_eq!(d.min_propensity, 0.25);
        assert!((d.effective_sample_size - 1.0).abs() < 1e-12);
        // A policy matching nothing.
        let d2 = diagnose(&data, &ConstantPolicy::new(1));
        assert_eq!(d2.match_rate, 0.5);
        let none = Dataset::<SimpleContext>::new();
        let d3 = diagnose(&none, &ConstantPolicy::new(0));
        assert_eq!(d3.match_rate, 0.0);
        assert_eq!(d3.effective_sample_size, 0.0);
    }
}

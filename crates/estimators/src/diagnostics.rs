//! Harvest-quality diagnostics: is this log good enough to learn from?
//!
//! Off-policy evaluation is only as trustworthy as the harvested
//! `⟨x, a, r, p⟩` tuples behind it (§4's failure modes: drifted
//! contexts, collapsed propensities, a handful of samples carrying all
//! the weight). This module condenses those failure signatures into one
//! serializable [`HarvestQuality`] gauge set, computed per training
//! round from the same importance weights the gate uses — so a refusal
//! or a breaker trip can cite *why* the data was distrusted.
//!
//! Every rate is zero-guarded: an empty harvest yields all-zero, finite
//! gauges, never NaN.

use harvest_core::{Context, Dataset};
use serde::Serialize;

use crate::drift::context_drift;

/// Streaming, mergeable moments of a stream of importance weights.
///
/// One record's weight `w = π(aₜ|xₜ)/pₜ` is computed **once** and then
/// shared by everything that needs it: the ESS and clipped-mass gauges
/// here, and each of the `k` portfolio accumulators on the streaming path
/// ([`crate::portfolio`]). Before this type existed, each diagnostic pass
/// re-walked the weight vector; now the gauges fall out of five running
/// sums that merge associatively across per-segment partials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WeightStats {
    /// Weights observed.
    pub n: u64,
    /// `Σ w`.
    pub sum: f64,
    /// `Σ w²`.
    pub sum_sq: f64,
    /// `Σ w · 1{w > clip}` — the mass above the diagnostic clip.
    pub clipped_sum: f64,
    /// Smallest weight seen (`+∞` when empty).
    pub min: f64,
    /// Largest weight seen (`−∞` when empty).
    pub max: f64,
    /// The clip threshold this accumulator counts mass against.
    pub clip: f64,
}

impl WeightStats {
    /// An empty accumulator counting clipped mass above `clip`.
    pub fn new(clip: f64) -> Self {
        WeightStats {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            clipped_sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            clip,
        }
    }

    /// Folds in one precomputed importance weight.
    pub fn observe(&mut self, w: f64) {
        self.n += 1;
        self.sum += w;
        self.sum_sq += w * w;
        if w > self.clip {
            self.clipped_sum += w;
        }
        self.min = self.min.min(w);
        self.max = self.max.max(w);
    }

    /// Componentwise merge of two partials over disjoint record ranges.
    ///
    /// f64 addition is not associative, so a merged result is not in
    /// general bitwise equal to one global left-to-right fold — but for a
    /// *fixed* partition into segments merged in a *fixed* order, the
    /// result is a pure function of the data, independent of which thread
    /// computed each partial. That is the invariant the portfolio
    /// evaluator's parallel-equals-sequential guarantee rests on.
    pub fn merge(&mut self, other: &WeightStats) {
        debug_assert_eq!(self.clip, other.clip, "merging mismatched clips");
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.clipped_sum += other.clipped_sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Kish effective sample size `(Σw)² / Σw²` (0 when empty).
    pub fn ess(&self) -> f64 {
        if self.sum_sq > 0.0 {
            self.sum * self.sum / self.sum_sq
        } else {
            0.0
        }
    }

    /// Fraction of total weight mass above the clip (0 when empty). The
    /// `+ 0.0` keeps an all-below-clip stream at plain `0`, not `-0`.
    pub fn clipped_mass(&self) -> f64 {
        if self.sum > 0.0 {
            self.clipped_sum / self.sum + 0.0
        } else {
            0.0
        }
    }

    /// Smallest weight, 0 when empty (export-friendly).
    pub fn min_or_zero(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest weight, 0 when empty (export-friendly).
    pub fn max_or_zero(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }
}

/// Per-round data-quality gauges for a harvested dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HarvestQuality {
    /// Harvested samples.
    pub n: usize,
    /// Kish effective sample size of the importance weights:
    /// `(Σw)² / Σw²`. Equals `n` for uniform weights; collapses toward
    /// 1 when a few samples dominate.
    pub effective_sample_size: f64,
    /// `effective_sample_size / n` in [0, 1] (0 when empty).
    pub ess_fraction: f64,
    /// Smallest importance weight (0 when empty).
    pub min_weight: f64,
    /// Largest importance weight (0 when empty).
    pub max_weight: f64,
    /// Fraction of total weight mass above the clip threshold —
    /// the mass an IPS clip would discard or distort.
    pub clipped_weight_mass: f64,
    /// Fraction of samples logged at the exploration floor
    /// `ε / num_actions` — decisions kept alive only by the ε floor.
    pub floor_hit_rate: f64,
    /// Largest per-feature effect size between the first and second
    /// half of the harvest (ordered by log position).
    pub drift_max_effect_size: f64,
    /// Largest per-feature KS statistic between the two halves.
    pub drift_max_ks: f64,
    /// The drift tripwire: assumption A1 (stable context distribution)
    /// looks violated within this harvest window.
    pub drift_suspected: bool,
}

impl HarvestQuality {
    /// The all-zero gauge set for an empty harvest.
    pub fn empty() -> Self {
        HarvestQuality {
            n: 0,
            effective_sample_size: 0.0,
            ess_fraction: 0.0,
            min_weight: 0.0,
            max_weight: 0.0,
            clipped_weight_mass: 0.0,
            floor_hit_rate: 0.0,
            drift_max_effect_size: 0.0,
            drift_max_ks: 0.0,
            drift_suspected: false,
        }
    }
}

/// Computes the quality gauges for `data` under importance `weights`
/// (one per sample, `π(aₜ|xₜ)/pₜ` as the gate computes them).
///
/// `epsilon` is the exploration floor the data was served with (the
/// floor propensity for a context with `K` actions is `ε/K`); `clip` is
/// the weight threshold above which mass counts as clipped. Weight
/// gauges fall back to [`HarvestQuality::empty`] values when `weights`
/// is empty or its length disagrees with `data`.
pub fn harvest_quality<C: Context + Clone>(
    data: &Dataset<C>,
    weights: &[f64],
    epsilon: f64,
    clip: f64,
) -> HarvestQuality {
    let n = data.len();
    let mut q = HarvestQuality {
        n,
        ..HarvestQuality::empty()
    };

    if n > 0 && weights.len() == n {
        // One streaming pass over the weights feeds every weight gauge.
        let mut stats = WeightStats::new(clip);
        for &w in weights {
            stats.observe(w);
        }
        if stats.sum_sq > 0.0 {
            q.effective_sample_size = stats.ess();
            q.ess_fraction = q.effective_sample_size / n as f64;
        }
        q.min_weight = stats.min_or_zero();
        q.max_weight = stats.max_or_zero();
        q.clipped_weight_mass = stats.clipped_mass();
    }

    if n > 0 {
        let floor_hits = data
            .iter()
            .filter(|s| {
                let floor = epsilon / s.context.num_actions() as f64;
                s.propensity <= floor * (1.0 + 1e-9)
            })
            .count();
        q.floor_hit_rate = floor_hits as f64 / n as f64;
    }

    // Within-window drift: compare the first and second half of the
    // harvest in log order. Too few samples → no verdict, not NaN.
    if n >= 4 {
        let samples = data.samples();
        let (first, second) = samples.split_at(n / 2);
        let halves = (
            Dataset::from_samples(first.to_vec()),
            Dataset::from_samples(second.to_vec()),
        );
        if let (Ok(a), Ok(b)) = halves {
            let report = context_drift(&a, &b);
            q.drift_max_effect_size = report.max_effect_size();
            q.drift_max_ks = report.max_ks();
            q.drift_suspected = report.a1_violation_suspected();
        }
    }

    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::sample::LoggedDecision;
    use harvest_core::SimpleContext;

    fn dataset(points: &[(f64, f64)]) -> Dataset<SimpleContext> {
        Dataset::from_samples(
            points
                .iter()
                .map(|&(x, p)| LoggedDecision {
                    context: SimpleContext::new(vec![x], 2),
                    action: 0,
                    reward: 0.5,
                    propensity: p,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_harvest_is_all_finite_zeros() {
        let data: Dataset<SimpleContext> = Dataset::new();
        let q = harvest_quality(&data, &[], 0.1, 10.0);
        assert_eq!(q, HarvestQuality::empty());
    }

    #[test]
    fn uniform_weights_have_full_ess() {
        let data = dataset(&[(0.1, 0.5), (0.2, 0.5), (0.3, 0.5), (0.4, 0.5)]);
        let q = harvest_quality(&data, &[1.0; 4], 0.1, 10.0);
        assert!((q.effective_sample_size - 4.0).abs() < 1e-12);
        assert!((q.ess_fraction - 1.0).abs() < 1e-12);
        assert_eq!(q.min_weight, 1.0);
        assert_eq!(q.max_weight, 1.0);
        assert_eq!(q.clipped_weight_mass, 0.0);
    }

    #[test]
    fn one_dominant_weight_collapses_ess() {
        let data = dataset(&[(0.1, 0.5), (0.2, 0.5), (0.3, 0.5), (0.4, 0.5)]);
        let q = harvest_quality(&data, &[100.0, 0.01, 0.01, 0.01], 0.1, 10.0);
        assert!(q.effective_sample_size < 1.1, "{q:?}");
        assert!(q.clipped_weight_mass > 0.99, "{q:?}");
        assert_eq!(q.max_weight, 100.0);
    }

    #[test]
    fn floor_hits_are_counted_exactly() {
        // ε = 0.2, K = 2 → floor propensity 0.1.
        let data = dataset(&[(0.1, 0.1), (0.2, 0.9), (0.3, 0.1), (0.4, 0.9)]);
        let q = harvest_quality(&data, &[1.0; 4], 0.2, 10.0);
        assert!((q.floor_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn within_window_drift_trips_the_gauge() {
        let mut points = Vec::new();
        for i in 0..50 {
            points.push(((i % 5) as f64, 0.5));
        }
        for i in 0..50 {
            points.push(((i % 5) as f64 + 100.0, 0.5));
        }
        let q = harvest_quality(&dataset(&points), &vec![1.0; 100], 0.1, 10.0);
        assert!(q.drift_suspected, "{q:?}");
        assert!(q.drift_max_effect_size > 3.0);
    }

    #[test]
    fn weight_stats_merge_is_deterministic_and_close_to_sequential() {
        let weights = [0.25, 3.0, 11.5, 0.125, 7.0, 10.0001, 0.5];
        let mut sequential = WeightStats::new(10.0);
        for &w in &weights {
            sequential.observe(w);
        }
        let partial = |range: &[f64]| {
            let mut s = WeightStats::new(10.0);
            for &w in range {
                s.observe(w);
            }
            s
        };
        for split in 0..=weights.len() {
            let (a, b) = weights.split_at(split);
            // Recomputing the same partials and merging in the same order
            // is bit-identical — the parallel-pass invariant.
            let mut first = partial(a);
            first.merge(&partial(b));
            let mut second = partial(a);
            second.merge(&partial(b));
            assert_eq!(first.sum.to_bits(), second.sum.to_bits());
            assert_eq!(first, second);
            // And numerically indistinguishable from one global fold.
            assert_eq!(first.n, sequential.n);
            assert_eq!(first.min, sequential.min);
            assert_eq!(first.max, sequential.max);
            assert!((first.sum - sequential.sum).abs() < 1e-9);
            assert!((first.sum_sq - sequential.sum_sq).abs() < 1e-9);
            assert!((first.clipped_sum - sequential.clipped_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_weight_stats_export_zeros() {
        let stats = WeightStats::new(10.0);
        assert_eq!(stats.ess(), 0.0);
        assert_eq!(stats.clipped_mass(), 0.0);
        assert_eq!(stats.min_or_zero(), 0.0);
        assert_eq!(stats.max_or_zero(), 0.0);
    }

    #[test]
    fn mismatched_weights_leave_weight_gauges_zero() {
        let data = dataset(&[(0.1, 0.5), (0.2, 0.5)]);
        let q = harvest_quality(&data, &[1.0], 0.1, 10.0);
        assert_eq!(q.effective_sample_size, 0.0);
        assert_eq!(q.max_weight, 0.0);
        // Non-weight gauges still computed.
        assert!(q.floor_hit_rate >= 0.0);
    }
}

//! Off-policy estimators and evaluation harness.
//!
//! Implements §4 of *Harvesting Randomness to Optimize Distributed Systems*
//! (HotNets'17): estimating a candidate policy's average reward from
//! exploration data `⟨x, a, r, p⟩` logged by a different (randomized)
//! policy, without deploying the candidate.
//!
//! Estimators:
//!
//! * [`ips`] — inverse propensity scoring (Horvitz–Thompson), the paper's
//!   Eq. before (1): unbiased, possibly high variance. Includes a clipped
//!   variant.
//! * [`snips`] — self-normalized IPS: biased but lower variance, bounded by
//!   the observed reward range.
//! * [`direct`] — the direct method: plug in a reward model `r̂(x, a)`.
//!   Biased when the model is wrong.
//! * [`dr`] — doubly robust: model plus IPS correction (Dudík–Langford–Li),
//!   the paper's §5 plan for variance reduction.
//! * [`trajectory`] — per-trajectory and per-decision importance sampling
//!   over episodes, the paper's §5 route to "estimators that account for
//!   long-term effects" (and a demonstration of their variance blow-up).
//!
//! Supporting pieces:
//!
//! * [`bounds`] — the finite-sample guarantees of Eq. 1 and the A/B-testing
//!   counterpart, used to regenerate Figs. 1 and 2.
//! * [`ab`] — a simulated A/B test that splits data across policies, the
//!   baseline CB is measured against.
//! * [`evaluator`] — one entry point over all estimators with bootstrap
//!   confidence intervals and data diagnostics (match rate, effective
//!   sample size).
//! * [`portfolio`] — the streaming portfolio evaluator: one pass over
//!   recovered segment logs scores 100+ candidate policies in parallel
//!   behind the [`portfolio::Estimator`] trait, byte-identical at any
//!   worker count.
//! * [`drift`] — context-drift detection (standardized mean shifts and KS
//!   distances), the operational tripwire for assumption-A1 violations.
//! * [`search`] — exhaustive policy search over finite policy classes
//!   ("optimize over a large class of policies" §1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod bounds;
pub mod diagnostics;
pub mod direct;
pub mod dr;
pub mod drift;
pub mod evaluator;
pub mod ips;
pub mod portfolio;
pub mod search;
pub mod snips;
pub mod trajectory;

mod estimate;

pub use diagnostics::{harvest_quality, HarvestQuality, WeightStats};
pub use estimate::Estimate;
pub use evaluator::{EstimatorKind, OffPolicyEvaluator};
pub use portfolio::{
    Candidate, Estimator, EvaluatorConfig, GreedyScorerCandidate, LeaderboardEntry, PolicyEstimate,
    PortfolioEvaluator, PortfolioReport,
};

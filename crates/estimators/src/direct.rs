//! The direct method (DM): evaluate a policy against a learned reward
//! model.
//!
//! ```text
//! dm(π) = (1/N) Σₜ r̂(xₜ, π(xₜ))
//! ```
//!
//! Uses every sample (no matching requirement) so its variance is low, but
//! it inherits every flaw of the model `r̂`: "model-based approaches …
//! tend to be biased" (paper §2). The reward models come from
//! `harvest_core::learner` and implement [`Scorer`].

use harvest_core::{Context, Dataset, Policy, Scorer};

use crate::estimate::Estimate;

/// The direct-method estimate of `policy` on `data` under reward model
/// `model`.
pub fn direct_method<C, P, M>(data: &Dataset<C>, policy: &P, model: &M) -> Estimate
where
    C: Context,
    P: Policy<C> + ?Sized,
    M: Scorer<C> + ?Sized,
{
    let mut terms = Vec::with_capacity(data.len());
    let mut matched = 0;
    for s in data {
        let a = policy.choose(&s.context);
        if a == s.action {
            matched += 1;
        }
        terms.push(model.score(&s.context, a));
    }
    Estimate::from_terms(&terms, matched)
}

/// Direct-method estimate over bare contexts (no logged actions needed) —
/// usable on any stream of contexts, e.g. a holdout set.
pub fn direct_method_on_contexts<C, P, M>(contexts: &[C], policy: &P, model: &M) -> Estimate
where
    C: Context,
    P: Policy<C> + ?Sized,
    M: Scorer<C> + ?Sized,
{
    let terms: Vec<f64> = contexts
        .iter()
        .map(|c| model.score(c, policy.choose(c)))
        .collect();
    Estimate::from_terms(&terms, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
    use harvest_core::policy::{ConstantPolicy, StochasticPolicy, UniformPolicy};
    use harvest_core::sample::LoggedDecision;
    use harvest_core::scorer::TableScorer;
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn dm_reads_the_model_not_the_data() {
        let data = Dataset::from_samples(vec![LoggedDecision {
            context: SimpleContext::contextless(2),
            action: 0,
            reward: 99.0, // ignored by DM
            propensity: 0.5,
        }])
        .unwrap();
        let model = TableScorer::new(vec![0.1, 0.7]);
        assert_eq!(
            direct_method(&data, &ConstantPolicy::new(1), &model).value,
            0.7
        );
        assert_eq!(
            direct_method(&data, &ConstantPolicy::new(0), &model).value,
            0.1
        );
    }

    #[test]
    fn dm_with_good_model_is_accurate_with_few_samples() {
        // Fit a model on plenty of exploration data, then DM-evaluate on a
        // tiny set: variance should be tiny because DM uses every sample.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let logging = UniformPolicy::new();
        let mut train = Dataset::new();
        for _ in 0..5000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let (a, p) = logging.sample(&ctx, &mut rng);
            let r = if a == 0 { x } else { 1.0 - x };
            train
                .push(LoggedDecision {
                    context: ctx,
                    action: a,
                    reward: r,
                    propensity: p,
                })
                .unwrap();
        }
        let model =
            RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-3)
                .unwrap()
                .fit(&train)
                .unwrap();
        let (small, _) = train.truncated(50).split_at(50);
        // Truth for "always 0" is E[x] = 0.5.
        let e = direct_method(&small, &ConstantPolicy::new(0), &model);
        assert!((e.value - 0.5).abs() < 0.1, "dm {}", e.value);
    }

    #[test]
    fn dm_bias_with_wrong_model() {
        // A deliberately wrong model gives a confidently wrong estimate —
        // the failure mode that makes DM untrustworthy on its own.
        let data = Dataset::from_samples(
            (0..100)
                .map(|_| LoggedDecision {
                    context: SimpleContext::contextless(2),
                    action: 0,
                    reward: 0.0, // true reward is 0
                    propensity: 0.5,
                })
                .collect(),
        )
        .unwrap();
        let wrong = TableScorer::new(vec![1.0, 1.0]);
        let e = direct_method(&data, &ConstantPolicy::new(0), &wrong);
        assert_eq!(e.value, 1.0); // no amount of data fixes it
        assert_eq!(e.std_err, 0.0);
    }

    #[test]
    fn contexts_only_variant() {
        let contexts: Vec<SimpleContext> = (0..10).map(|_| SimpleContext::contextless(2)).collect();
        let model = TableScorer::new(vec![0.25, 0.5]);
        let e = direct_method_on_contexts(&contexts, &ConstantPolicy::new(1), &model);
        assert_eq!(e.value, 0.5);
        assert_eq!(e.n, 10);
    }
}

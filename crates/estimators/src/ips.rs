//! Inverse propensity scoring (Horvitz–Thompson).
//!
//! The paper's core estimator:
//!
//! ```text
//! ips(π) = (1/N) Σₜ 1{π(xₜ) = aₜ} · rₜ / pₜ
//! ```
//!
//! Unbiased whenever every logged propensity is positive and correct. The
//! cost is variance: each matching sample contributes `r/p`, which blows up
//! as `p → 0`. [`clipped_ips`] trades a little bias for bounded weights.

use harvest_core::{Context, Dataset, Policy};

use crate::estimate::Estimate;

/// The IPS estimate of `policy`'s average reward on `data`.
#[deprecated(
    since = "0.10.0",
    note = "use OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(..) or the \
            portfolio::Estimator trait"
)]
pub fn ips<C: Context, P: Policy<C> + ?Sized>(data: &Dataset<C>, policy: &P) -> Estimate {
    crate::evaluator::eval_ips(data, policy)
}

/// IPS with importance weights clipped at `max_weight`: matching samples
/// contribute `r · min(1/p, max_weight)`.
///
/// Clipping introduces downward bias on high-weight events but caps the
/// variance contribution of any single sample; standard practice when
/// propensities are small or estimated.
#[deprecated(
    since = "0.10.0",
    note = "use OffPolicyEvaluator::new(EstimatorKind::ClippedIps(max)).evaluate(..) or the \
            portfolio::Estimator trait"
)]
pub fn clipped_ips<C: Context, P: Policy<C> + ?Sized>(
    data: &Dataset<C>,
    policy: &P,
    max_weight: f64,
) -> Estimate {
    crate::evaluator::eval_clipped_ips(data, policy, max_weight)
}

/// The per-sample IPS terms (useful for bootstrap and variance analysis).
pub fn ips_terms<C: Context, P: Policy<C> + ?Sized>(data: &Dataset<C>, policy: &P) -> Vec<f64> {
    data.iter()
        .map(|s| {
            if policy.choose(&s.context) == s.action {
                s.reward / s.propensity
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::ips_terms;
    use crate::evaluator::{eval_clipped_ips, eval_ips};
    use harvest_core::policy::{ConstantPolicy, UniformPolicy, WeightedPolicy};
    use harvest_core::sample::{FullFeedbackDataset, FullFeedbackSample, LoggedDecision};
    use harvest_core::simulate::simulate_exploration;
    use harvest_core::Dataset;
    use harvest_core::SimpleContext;
    use rand::SeedableRng;

    fn ctx(k: usize) -> SimpleContext {
        SimpleContext::contextless(k)
    }

    #[test]
    fn matches_hand_computation() {
        let data = Dataset::from_samples(vec![
            LoggedDecision {
                context: ctx(2),
                action: 0,
                reward: 1.0,
                propensity: 0.5,
            },
            LoggedDecision {
                context: ctx(2),
                action: 1,
                reward: 1.0,
                propensity: 0.5,
            },
        ])
        .unwrap();
        // Policy "always 0" matches the first sample only: (1/0.5 + 0)/2 = 1.
        let e = eval_ips(&data, &ConstantPolicy::new(0));
        assert_eq!(e.value, 1.0);
        assert_eq!(e.matched, 1);
        assert_eq!(e.n, 2);
    }

    #[test]
    fn unbiased_under_uniform_logging() {
        // Ground truth from full feedback; IPS from simulated exploration
        // must land close for large N.
        let mut full = FullFeedbackDataset::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::Rng;
        for _ in 0..20_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            full.push(FullFeedbackSample {
                context: SimpleContext::new(vec![x], 3),
                rewards: vec![x, 0.5, 1.0 - x],
            })
            .unwrap();
        }
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        for target in [0usize, 1, 2] {
            let pol = ConstantPolicy::new(target);
            let truth = full.value_of_policy(&pol).unwrap();
            let est = eval_ips(&expl, &pol);
            assert!(
                (est.value - truth).abs() < 0.03,
                "action {target}: est {} vs truth {truth}",
                est.value
            );
        }
    }

    #[test]
    fn unbiased_under_nonuniform_logging() {
        let mut full = FullFeedbackDataset::default();
        for _ in 0..30_000 {
            full.push(FullFeedbackSample {
                context: ctx(2),
                rewards: vec![1.0, 0.2],
            })
            .unwrap();
        }
        let logging = WeightedPolicy::new(vec![0.1, 0.9]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let expl = simulate_exploration(&full, &logging, &mut rng);
        // Evaluate "always 0", rarely logged (p = 0.1).
        let est = eval_ips(&expl, &ConstantPolicy::new(0));
        assert!((est.value - 1.0).abs() < 0.05, "est {}", est.value);
        // Match rate should be near 0.1.
        assert!((est.match_rate() - 0.1).abs() < 0.02);
    }

    #[test]
    fn clipping_bounds_weights_and_biases_down() {
        let data = Dataset::from_samples(vec![LoggedDecision {
            context: ctx(2),
            action: 0,
            reward: 1.0,
            propensity: 0.01,
        }])
        .unwrap();
        let raw = eval_ips(&data, &ConstantPolicy::new(0));
        assert_eq!(raw.value, 100.0);
        let clipped = eval_clipped_ips(&data, &ConstantPolicy::new(0), 10.0);
        assert_eq!(clipped.value, 10.0);
        assert!(clipped.value <= raw.value);
    }

    #[test]
    fn non_matching_policy_estimates_zero() {
        let data = Dataset::from_samples(vec![LoggedDecision {
            context: ctx(3),
            action: 0,
            reward: 5.0,
            propensity: 0.5,
        }])
        .unwrap();
        let e = eval_ips(&data, &ConstantPolicy::new(2));
        assert_eq!(e.value, 0.0);
        assert_eq!(e.matched, 0);
    }

    #[test]
    fn terms_align_with_estimate() {
        let data = Dataset::from_samples(vec![
            LoggedDecision {
                context: ctx(2),
                action: 0,
                reward: 2.0,
                propensity: 0.25,
            },
            LoggedDecision {
                context: ctx(2),
                action: 1,
                reward: 3.0,
                propensity: 0.75,
            },
        ])
        .unwrap();
        let pol = ConstantPolicy::new(0);
        let terms = ips_terms(&data, &pol);
        assert_eq!(terms, vec![8.0, 0.0]);
        assert_eq!(eval_ips(&data, &pol).value, 4.0);
    }

    #[test]
    fn empty_data_is_safe() {
        let data: Dataset<SimpleContext> = Dataset::new();
        let e = eval_ips(&data, &ConstantPolicy::new(0));
        assert_eq!(e.value, 0.0);
        assert_eq!(e.n, 0);
    }
}

//! Eviction policies over sampled candidate sets.

use rand::Rng;

use harvest_core::policy::Policy;
use harvest_core::scorer::LinearScorer;
use harvest_core::SimpleContext;
use harvest_sim_net::rng::DetRng;
use harvest_sim_net::time::SimTime;

use crate::store::Entry;

/// One eviction candidate with the per-item context the paper's Redis
/// prototype logged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate key.
    pub key: u64,
    /// Value size in bytes.
    pub size_bytes: u64,
    /// Seconds since last access (idle time — what Redis' LRU tracks).
    pub idle_s: f64,
    /// Seconds since insertion.
    pub age_s: f64,
    /// Accesses since insertion.
    pub access_count: u64,
}

impl Candidate {
    /// Builds a candidate from entry metadata at time `now`.
    pub fn from_entry(key: u64, entry: &Entry, now: SimTime) -> Self {
        Candidate {
            key,
            size_bytes: entry.size_bytes,
            idle_s: (now - entry.last_access).as_secs_f64(),
            age_s: (now - entry.inserted_at).as_secs_f64(),
            access_count: entry.access_count,
        }
    }

    /// Empirical access frequency (accesses per second, with a small floor
    /// on age so fresh items are not infinitely frequent).
    pub fn frequency(&self) -> f64 {
        self.access_count as f64 / self.age_s.max(1.0)
    }

    /// Feature vector for CB modeling:
    /// `[size_kb, idle_s (capped), frequency, age_s (capped)]` — all scaled
    /// to roughly unit range.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.size_bytes as f64 / 4096.0,
            (self.idle_s / 60.0).min(2.0),
            self.frequency().min(10.0),
            (self.age_s / 600.0).min(2.0),
        ]
    }
}

/// Builds the CB decision context for a candidate set: no shared features,
/// one action per candidate carrying its features.
pub fn candidates_to_cb_context(candidates: &[Candidate]) -> SimpleContext {
    SimpleContext::with_action_features(
        Vec::new(),
        candidates.iter().map(Candidate::features).collect(),
    )
}

/// A chosen victim, with the propensity when the policy knows it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionChoice {
    /// Index into the candidate slice.
    pub index: usize,
    /// Probability of that index given the candidate set, if randomized.
    pub propensity: Option<f64>,
}

/// An eviction policy over a sampled candidate set.
pub trait EvictionPolicy {
    /// Picks a victim among `candidates` (never empty).
    fn choose(&mut self, candidates: &[Candidate], rng: &mut DetRng) -> EvictionChoice;

    /// Display name for tables.
    fn name(&self) -> String;
}

/// Uniform random among candidates — Redis `allkeys-random`, the logging
/// policy of Table 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomEviction;

impl EvictionPolicy for RandomEviction {
    fn choose(&mut self, candidates: &[Candidate], rng: &mut DetRng) -> EvictionChoice {
        EvictionChoice {
            index: rng.gen_range(0..candidates.len()),
            propensity: Some(1.0 / candidates.len() as f64),
        }
    }

    fn name(&self) -> String {
        "random".to_string()
    }
}

/// Evict the candidate idle the longest — Redis `allkeys-lru` (which is
/// also sampling-based).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruEviction;

impl EvictionPolicy for LruEviction {
    fn choose(&mut self, candidates: &[Candidate], _rng: &mut DetRng) -> EvictionChoice {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if c.idle_s > candidates[best].idle_s {
                best = i;
            }
        }
        EvictionChoice {
            index: best,
            propensity: None,
        }
    }

    fn name(&self) -> String {
        "lru".to_string()
    }
}

/// Evict the candidate with the lowest access frequency — Redis
/// `allkeys-lfu`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfuEviction;

impl EvictionPolicy for LfuEviction {
    fn choose(&mut self, candidates: &[Candidate], _rng: &mut DetRng) -> EvictionChoice {
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if c.frequency() < candidates[best].frequency() {
                best = i;
            }
        }
        EvictionChoice {
            index: best,
            propensity: None,
        }
    }

    fn name(&self) -> String {
        "lfu".to_string()
    }
}

/// Evict the candidate with the lowest frequency-to-size ratio — the
/// manually designed policy of Table 3 that "explicitly considers item
/// size" and encodes the opportunity cost of caching big items (a
/// GreedyDual/GDSF-style density rule).
#[derive(Debug, Clone, Copy, Default)]
pub struct FreqSizeEviction;

impl EvictionPolicy for FreqSizeEviction {
    fn choose(&mut self, candidates: &[Candidate], _rng: &mut DetRng) -> EvictionChoice {
        let density = |c: &Candidate| c.frequency() / c.size_bytes.max(1) as f64;
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate() {
            if density(c) < density(&candidates[best]) {
                best = i;
            }
        }
        EvictionChoice {
            index: best,
            propensity: None,
        }
    }

    fn name(&self) -> String {
        "freq-size".to_string()
    }
}

/// A CB-learned eviction policy: evicts the candidate with the highest
/// predicted time-to-next-access (the CB reward of Table 1).
///
/// This is the greedy use of a model trained by
/// `harvest_core::learner::RegressionCbLearner` in pooled mode on harvested
/// eviction data. Table 3's point is that even a *good* model of this
/// short-term reward does not beat random, because the reward ignores the
/// long-term space-opportunity cost.
#[derive(Debug, Clone)]
pub struct CbEviction {
    scorer: LinearScorer,
    epsilon: f64,
}

impl CbEviction {
    /// Greedy eviction on a learned time-to-next-access model.
    pub fn greedy(scorer: LinearScorer) -> Self {
        CbEviction {
            scorer,
            epsilon: 0.0,
        }
    }

    /// ε-greedy variant that keeps its own decisions harvestable.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn epsilon_greedy(scorer: LinearScorer, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        CbEviction { scorer, epsilon }
    }
}

impl EvictionPolicy for CbEviction {
    fn choose(&mut self, candidates: &[Candidate], rng: &mut DetRng) -> EvictionChoice {
        let ctx = candidates_to_cb_context(candidates);
        let greedy = harvest_core::policy::GreedyPolicy::new(&self.scorer).choose(&ctx);
        if self.epsilon == 0.0 {
            return EvictionChoice {
                index: greedy,
                propensity: None,
            };
        }
        let k = candidates.len();
        let floor = self.epsilon / k as f64;
        let explore = rng.gen_bool(self.epsilon);
        let index = if explore { rng.gen_range(0..k) } else { greedy };
        EvictionChoice {
            index,
            propensity: Some(if index == greedy {
                1.0 - self.epsilon + floor
            } else {
                floor
            }),
        }
    }

    fn name(&self) -> String {
        "cb-policy".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim_net::fork_rng;

    fn cand(key: u64, size: u64, idle: f64, age: f64, count: u64) -> Candidate {
        Candidate {
            key,
            size_bytes: size,
            idle_s: idle,
            age_s: age,
            access_count: count,
        }
    }

    #[test]
    fn random_is_uniform_with_propensity() {
        let cands = vec![cand(0, 1, 0.0, 1.0, 1); 4];
        let mut p = RandomEviction;
        let mut rng = fork_rng(1, "re");
        let mut hits = [0u32; 4];
        for _ in 0..8000 {
            let ch = p.choose(&cands, &mut rng);
            assert_eq!(ch.propensity, Some(0.25));
            hits[ch.index] += 1;
        }
        for &h in &hits {
            assert!((h as f64 - 2000.0).abs() < 200.0);
        }
    }

    #[test]
    fn lru_picks_longest_idle() {
        let cands = vec![
            cand(0, 1, 5.0, 100.0, 10),
            cand(1, 1, 50.0, 100.0, 10),
            cand(2, 1, 20.0, 100.0, 10),
        ];
        let mut rng = fork_rng(2, "lru");
        assert_eq!(LruEviction.choose(&cands, &mut rng).index, 1);
    }

    #[test]
    fn lfu_picks_lowest_frequency() {
        let cands = vec![
            cand(0, 1, 0.0, 100.0, 50),
            cand(1, 1, 0.0, 100.0, 2),
            cand(2, 1, 0.0, 100.0, 30),
        ];
        let mut rng = fork_rng(3, "lfu");
        assert_eq!(LfuEviction.choose(&cands, &mut rng).index, 1);
    }

    #[test]
    fn freq_size_prefers_evicting_big_unproductive_items() {
        // Big item: 2× frequency, 4× size => density half of the small's.
        let cands = vec![
            cand(0, 4096, 0.0, 100.0, 20), // density = 0.2/4096
            cand(1, 1024, 0.0, 100.0, 10), // density = 0.1/1024
        ];
        let mut rng = fork_rng(4, "fs");
        assert_eq!(FreqSizeEviction.choose(&cands, &mut rng).index, 0);
        // LFU makes the opposite (worse) call: it protects the big item.
        assert_eq!(LfuEviction.choose(&cands, &mut rng).index, 1);
    }

    #[test]
    fn candidate_features_are_bounded_and_ordered() {
        let c = cand(0, 4096, 120.0, 1200.0, 1000);
        let f = c.features();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 2.0, "idle capped");
        assert!(f[2] <= 10.0, "frequency capped");
        assert_eq!(f[3], 2.0, "age capped");
    }

    #[test]
    fn cb_greedy_evicts_highest_predicted_reward() {
        // Scorer that predicts time-to-next-access = idle feature (index 1
        // of candidate features; phi = [features..., bias]).
        let scorer = LinearScorer::Pooled {
            weights: vec![0.0, 1.0, 0.0, 0.0, 0.0],
        };
        let cands = vec![cand(0, 1, 5.0, 10.0, 1), cand(1, 1, 50.0, 10.0, 1)];
        let mut p = CbEviction::greedy(scorer);
        let mut rng = fork_rng(5, "cb");
        let ch = p.choose(&cands, &mut rng);
        assert_eq!(ch.index, 1);
        assert_eq!(ch.propensity, None);
    }

    #[test]
    fn cb_epsilon_greedy_propensities() {
        let scorer = LinearScorer::Pooled {
            weights: vec![0.0, 1.0, 0.0, 0.0, 0.0],
        };
        let cands = vec![cand(0, 1, 5.0, 10.0, 1), cand(1, 1, 50.0, 10.0, 1)];
        let mut p = CbEviction::epsilon_greedy(scorer, 0.4);
        let mut rng = fork_rng(6, "cbe");
        let mut greedy_hits = 0;
        for _ in 0..5000 {
            let ch = p.choose(&cands, &mut rng);
            let expect = if ch.index == 1 { 0.8 } else { 0.2 };
            assert!((ch.propensity.unwrap() - expect).abs() < 1e-12);
            if ch.index == 1 {
                greedy_hits += 1;
            }
        }
        assert!((greedy_hits as f64 / 5000.0 - 0.8).abs() < 0.02);
    }
}

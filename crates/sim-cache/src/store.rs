//! The byte-budget key-value store with Redis-style eviction sampling.

use std::collections::HashMap;

use rand::Rng;

use harvest_sim_net::rng::DetRng;
use harvest_sim_net::time::SimTime;

use crate::policy::Candidate;

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident bytes (Redis `maxmemory`).
    pub capacity_bytes: u64,
    /// Eviction candidates sampled per eviction (Redis
    /// `maxmemory-samples`, default 5).
    pub eviction_samples: usize,
}

impl CacheConfig {
    /// Redis-like defaults at a given capacity.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            eviction_samples: 5,
        }
    }
}

/// Metadata kept per resident entry — the "per-item contextual information
/// (e.g., last accessed time)" the paper added logging for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Value size in bytes.
    pub size_bytes: u64,
    /// When the entry was inserted.
    pub inserted_at: SimTime,
    /// When the entry was last read or written.
    pub last_access: SimTime,
    /// Number of accesses since insertion.
    pub access_count: u64,
}

/// A byte-budget cache with uniform candidate sampling at eviction.
///
/// Key bookkeeping keeps an index vector alongside the map so uniform
/// sampling over resident keys is O(1) per draw (the standard
/// swap-remove trick), exactly the cost profile Redis achieves with its
/// dict sampling.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    keys: Vec<u64>,
    pos: HashMap<u64, usize>,
    used_bytes: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if capacity is zero or the sample count is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity_bytes > 0, "capacity must be positive");
        assert!(config.eviction_samples > 0, "need at least one sample");
        Cache {
            config,
            entries: HashMap::new(),
            keys: Vec::new(),
            pos: HashMap::new(),
            used_bytes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Reads `key` at time `now`, updating recency/frequency metadata.
    /// Returns whether it was a hit.
    pub fn access(&mut self, key: u64, now: SimTime) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_access = now;
                e.access_count += 1;
                true
            }
            None => false,
        }
    }

    /// Entry metadata for a resident key.
    pub fn entry(&self, key: u64) -> Option<&Entry> {
        self.entries.get(&key)
    }

    /// Whether an item of `size_bytes` can ever fit.
    pub fn fits(&self, size_bytes: u64) -> bool {
        size_bytes <= self.config.capacity_bytes
    }

    /// Bytes that must be freed before an item of `size_bytes` fits.
    pub fn bytes_to_free(&self, size_bytes: u64) -> u64 {
        (self.used_bytes + size_bytes).saturating_sub(self.config.capacity_bytes)
    }

    /// Samples up to `eviction_samples` *distinct* resident keys uniformly
    /// at random and returns them as eviction candidates with their
    /// features at time `now`.
    ///
    /// This is the harvestable randomness: the candidate set is a uniform
    /// subsample of residents, independent of the workload's intent.
    pub fn sample_candidates(&self, now: SimTime, rng: &mut DetRng) -> Vec<Candidate> {
        let n = self.keys.len();
        let k = self.config.eviction_samples.min(n);
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        // Floyd's algorithm for a uniform k-subset of 0..n.
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked
            .into_iter()
            .map(|i| {
                let key = self.keys[i];
                let e = &self.entries[&key];
                Candidate::from_entry(key, e, now)
            })
            .collect()
    }

    /// Removes `key`, returning its entry.
    pub fn evict(&mut self, key: u64) -> Option<Entry> {
        let entry = self.entries.remove(&key)?;
        self.used_bytes -= entry.size_bytes;
        let idx = self.pos.remove(&key).expect("pos tracks entries");
        let last = self.keys.len() - 1;
        self.keys.swap(idx, last);
        self.keys.pop();
        if idx < self.keys.len() {
            self.pos.insert(self.keys[idx], idx);
        }
        Some(entry)
    }

    /// Inserts `key` with `size_bytes` at `now` **without** checking the
    /// budget — the runner is responsible for evicting first. Re-inserting
    /// a resident key updates its size and counts as an access.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the budget would be exceeded, which indicates a
    /// runner bug.
    pub fn insert(&mut self, key: u64, size_bytes: u64, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&key) {
            self.used_bytes = self.used_bytes - e.size_bytes + size_bytes;
            e.size_bytes = size_bytes;
            e.last_access = now;
            e.access_count += 1;
        } else {
            self.entries.insert(
                key,
                Entry {
                    size_bytes,
                    inserted_at: now,
                    last_access: now,
                    access_count: 1,
                },
            );
            self.pos.insert(key, self.keys.len());
            self.keys.push(key);
            self.used_bytes += size_bytes;
        }
        debug_assert!(
            self.used_bytes <= self.config.capacity_bytes,
            "budget exceeded: {} > {}",
            self.used_bytes,
            self.config.capacity_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim_net::fork_rng;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cache(cap: u64) -> Cache {
        Cache::new(CacheConfig::with_capacity(cap))
    }

    #[test]
    fn insert_access_evict_lifecycle() {
        let mut c = cache(100);
        c.insert(1, 40, t(0));
        c.insert(2, 60, t(1));
        assert_eq!(c.used_bytes(), 100);
        assert_eq!(c.len(), 2);
        assert!(c.access(1, t(2)));
        assert!(!c.access(99, t(2)));
        let e = c.entry(1).unwrap();
        assert_eq!(e.access_count, 2);
        assert_eq!(e.last_access, t(2));
        let evicted = c.evict(1).unwrap();
        assert_eq!(evicted.size_bytes, 40);
        assert_eq!(c.used_bytes(), 60);
        assert!(!c.contains(1));
        assert!(c.evict(1).is_none());
    }

    #[test]
    fn reinsert_updates_size_and_counts() {
        let mut c = cache(100);
        c.insert(1, 40, t(0));
        c.insert(1, 50, t(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.entry(1).unwrap().access_count, 2);
    }

    #[test]
    fn bytes_to_free_accounts_for_usage() {
        let mut c = cache(100);
        c.insert(1, 80, t(0));
        assert_eq!(c.bytes_to_free(10), 0);
        assert_eq!(c.bytes_to_free(30), 10);
        assert!(c.fits(100));
        assert!(!c.fits(101));
    }

    #[test]
    fn sampling_returns_distinct_resident_keys() {
        let mut c = cache(1000);
        for k in 0..20 {
            c.insert(k, 10, t(k));
        }
        let mut rng = fork_rng(1, "sample");
        for _ in 0..100 {
            let cands = c.sample_candidates(t(30), &mut rng);
            assert_eq!(cands.len(), 5);
            let mut keys: Vec<u64> = cands.iter().map(|c| c.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 5, "candidates must be distinct");
            assert!(keys.iter().all(|&k| k < 20));
        }
    }

    #[test]
    fn sampling_is_uniform_over_keys() {
        let mut c = cache(1000);
        for k in 0..10 {
            c.insert(k, 10, t(k));
        }
        let mut rng = fork_rng(2, "uniform");
        let mut counts = [0u32; 10];
        let trials = 20_000;
        for _ in 0..trials {
            for cand in c.sample_candidates(t(20), &mut rng) {
                counts[cand.key as usize] += 1;
            }
        }
        // Each key appears in a 5-of-10 sample with probability 1/2.
        for (k, &cnt) in counts.iter().enumerate() {
            let p = cnt as f64 / trials as f64;
            assert!((p - 0.5).abs() < 0.03, "key {k} sampled at rate {p}");
        }
    }

    #[test]
    fn sampling_small_caches_returns_everything() {
        let mut c = cache(1000);
        c.insert(1, 10, t(0));
        c.insert(2, 10, t(0));
        let mut rng = fork_rng(3, "small");
        let cands = c.sample_candidates(t(1), &mut rng);
        assert_eq!(cands.len(), 2);
        let empty = cache(10);
        let mut rng2 = fork_rng(4, "empty");
        assert!(empty.sample_candidates(t(0), &mut rng2).is_empty());
    }

    #[test]
    fn eviction_keeps_key_index_consistent() {
        let mut c = cache(1000);
        for k in 0..10 {
            c.insert(k, 10, t(k));
        }
        // Evict several from the middle; sampling must still cover exactly
        // the residents.
        c.evict(3);
        c.evict(0);
        c.evict(9);
        let mut rng = fork_rng(5, "consistency");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for cand in c.sample_candidates(t(20), &mut rng) {
                assert!(c.contains(cand.key));
                seen.insert(cand.key);
            }
        }
        assert_eq!(seen.len(), 7, "all residents eventually sampled");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 0,
            eviction_samples: 5,
        });
    }
}

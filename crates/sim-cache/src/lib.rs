//! Key-value cache simulator — the Redis scenario.
//!
//! Reproduces the paper's Table 3 experiment: a byte-budget cache under the
//! big/small workload ("a few frequently-queried large items and many
//! less-frequently-queried small items. The large items are queried twice
//! as frequently but are four times as big: it is thus more efficient to
//! cache the small items").
//!
//! Eviction follows Redis' mechanism: when an insert exceeds the budget,
//! the cache samples a handful of resident keys uniformly at random
//! (`maxmemory-samples`) and the eviction policy picks a victim among them.
//! That uniform candidate sampling is harvestable randomness; the policy's
//! pick within the sample carries the propensity.
//!
//! The punchline the simulator must (and does) reproduce: greedy policies —
//! LRU, LFU, and a CB policy trained on time-to-next-access — keep the hot
//! large items and do no better than random, because the reward of an
//! eviction is *long-term* (the space a big item occupies has opportunity
//! cost far beyond the next access). Only the hand-designed frequency/size
//! heuristic, which encodes that opportunity cost, wins (~+10 points).
//!
//! * [`store`] — the byte-budget cache with Redis-style candidate sampling.
//! * [`policy`] — eviction policies: random, LRU, LFU, freq/size, CB.
//! * [`runner`] — workload execution, hit-rate measurement, decision
//!   logging, and look-ahead dataset construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod runner;
pub mod store;

pub use policy::{Candidate, EvictionChoice, EvictionPolicy};
pub use runner::{run_cache_workload, CacheRunConfig, CacheRunResult};
pub use store::{Cache, CacheConfig};

//! Workload execution, hit-rate measurement, and decision harvesting.
//!
//! Every policy comparison in Table 3 replays the *same* request trace, so
//! hit-rate differences are attributable to the eviction policy alone. Each
//! eviction decision is logged with its sampled candidate set; rewards
//! (time to next access of the evicted item) are reconstructed afterwards
//! by looking ahead in the access log, exactly as the paper describes for
//! Redis.

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::sample::{Dataset, LoggedDecision};
use harvest_core::scorer::LinearScorer;
use harvest_core::{HarvestError, SimpleContext};
use harvest_log::reward::{reconstruct_rewards, AccessEvent, EvictionEvent};
use harvest_sim_net::rng::fork_rng;
use harvest_sim_net::time::SimTime;
use harvest_sim_net::workload::Request;

use crate::policy::{candidates_to_cb_context, Candidate, EvictionPolicy};
use crate::store::{Cache, CacheConfig};

/// Parameters of one cache run.
#[derive(Debug, Clone, Copy)]
pub struct CacheRunConfig {
    /// The cache shape.
    pub cache: CacheConfig,
    /// Requests at the head of the trace excluded from hit-rate accounting
    /// (cold-start fill).
    pub warmup: usize,
    /// Master seed (drives candidate sampling and randomized policies).
    pub seed: u64,
}

/// One logged eviction decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictionLog {
    /// When the eviction happened.
    pub at: SimTime,
    /// The sampled candidate set (the action space).
    pub candidates: Vec<Candidate>,
    /// Index of the evicted candidate.
    pub chosen: usize,
    /// Propensity, when the policy reported one.
    pub propensity: Option<f64>,
}

impl EvictionLog {
    /// The evicted key.
    pub fn evicted_key(&self) -> u64 {
        self.candidates[self.chosen].key
    }
}

/// The outcome of one cache run.
#[derive(Debug, Clone)]
pub struct CacheRunResult {
    /// Name of the eviction policy that ran.
    pub policy_name: String,
    /// Post-warmup hits.
    pub hits: u64,
    /// Post-warmup misses.
    pub misses: u64,
    /// All eviction decisions, in time order.
    pub evictions: Vec<EvictionLog>,
    /// The full access log (for look-ahead reward reconstruction).
    pub accesses: Vec<AccessEvent>,
    /// Requests that could never be cached (larger than the whole budget).
    pub uncacheable: u64,
}

impl CacheRunResult {
    /// Post-warmup hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Builds the exploration dataset for CB learning / OPE.
    ///
    /// Context: the candidate set (one action per candidate, with item
    /// features). Reward: reconstructed time-to-next-access of the evicted
    /// item, normalized by `horizon_s` into `[0, 1]` (longer = better: the
    /// evicted item wasn't needed). Only decisions with known propensities
    /// are usable.
    pub fn to_dataset(&self, horizon_s: f64) -> Dataset<SimpleContext> {
        let events: Vec<EvictionEvent> = self
            .evictions
            .iter()
            .map(|e| EvictionEvent {
                timestamp_ns: e.at.as_nanos(),
                key: e.evicted_key(),
            })
            .collect();
        let rewards = reconstruct_rewards(&self.accesses, &events, horizon_s);
        let mut data = Dataset::new();
        for (ev, rw) in self.evictions.iter().zip(&rewards) {
            let Some(p) = ev.propensity else { continue };
            data.push(LoggedDecision {
                context: candidates_to_cb_context(&ev.candidates),
                action: ev.chosen,
                reward: rw.time_to_next_access_s / horizon_s,
                propensity: p,
            })
            .expect("simulator produces valid samples");
        }
        data
    }

    /// Trains a pooled CB model predicting (normalized) time-to-next-access
    /// from candidate features — the model behind Table 3's "CB policy"
    /// column.
    pub fn fit_cb_scorer(&self, horizon_s: f64, lambda: f64) -> Result<LinearScorer, HarvestError> {
        let data = self.to_dataset(horizon_s);
        RegressionCbLearner::new(ModelingMode::Pooled, SampleWeighting::Uniform, lambda)?.fit(&data)
    }
}

/// Replays `trace` through a cache under `policy`.
pub fn run_cache_workload<P: EvictionPolicy + ?Sized>(
    cfg: &CacheRunConfig,
    policy: &mut P,
    trace: &[Request],
) -> CacheRunResult {
    assert!(cfg.warmup < trace.len(), "warmup must leave requests");
    let mut cache = Cache::new(cfg.cache);
    let mut rng = fork_rng(cfg.seed, "cache-eviction");
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut uncacheable = 0u64;
    let mut evictions = Vec::new();
    let mut accesses = Vec::with_capacity(trace.len());

    for (i, req) in trace.iter().enumerate() {
        accesses.push(AccessEvent {
            timestamp_ns: req.at.as_nanos(),
            key: req.key,
        });
        let hit = cache.access(req.key, req.at);
        if i >= cfg.warmup {
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        if hit {
            continue;
        }
        // Read-through fill, Redis-style: evict sampled victims until the
        // new value fits.
        if !cache.fits(req.size_bytes) {
            uncacheable += 1;
            continue;
        }
        while cache.bytes_to_free(req.size_bytes) > 0 {
            let candidates = cache.sample_candidates(req.at, &mut rng);
            debug_assert!(!candidates.is_empty(), "over budget but no residents");
            let choice = policy.choose(&candidates, &mut rng);
            let chosen = choice.index.min(candidates.len() - 1);
            cache.evict(candidates[chosen].key);
            evictions.push(EvictionLog {
                at: req.at,
                candidates,
                chosen,
                propensity: choice.propensity,
            });
        }
        cache.insert(req.key, req.size_bytes, req.at);
    }

    CacheRunResult {
        policy_name: policy.name(),
        hits,
        misses,
        evictions,
        accesses,
        uncacheable,
    }
}

/// Generates the paper's big/small trace: `n` Poisson-arrival requests over
/// the big/small key mix (each large item 2× as frequent and 4× as big as
/// each small item): 12 large 4 KiB items and 100 small 1 KiB items.
pub fn big_small_trace(n: usize, seed: u64) -> Vec<Request> {
    use harvest_sim_net::workload::{BigSmallKeys, PoissonArrivals, WorkloadGenerator};
    let mut rng = fork_rng(seed, "cache-workload");
    let mut generator = WorkloadGenerator::new(
        PoissonArrivals::new(200.0),
        BigSmallKeys::paper_default(12, 100, 1024),
    );
    generator.take(n, &mut rng)
}

/// The Table 3 cache configuration: roughly half the 148 KiB working set
/// fits, and evictions sample 10 candidates (Redis `maxmemory-samples 10`).
pub fn table3_cache_config() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 75 * 1024,
        eviction_samples: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CbEviction, FreqSizeEviction, LfuEviction, LruEviction, RandomEviction};

    fn cfg() -> CacheRunConfig {
        CacheRunConfig {
            cache: table3_cache_config(),
            warmup: 5_000,
            seed: 11,
        }
    }

    fn cfg_short_warmup() -> CacheRunConfig {
        CacheRunConfig {
            warmup: 500,
            ..cfg()
        }
    }

    fn hit_rate<P: EvictionPolicy>(mut p: P, trace: &[Request]) -> f64 {
        run_cache_workload(&cfg(), &mut p, trace).hit_rate()
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let trace = big_small_trace(20_000, 1);
        let r = run_cache_workload(&cfg(), &mut RandomEviction, &trace);
        assert_eq!(r.hits + r.misses, 15_000);
        assert!(r.hit_rate() > 0.2 && r.hit_rate() < 0.9, "{}", r.hit_rate());
        assert!(!r.evictions.is_empty());
        assert_eq!(r.uncacheable, 0);
    }

    #[test]
    fn byte_budget_never_exceeded() {
        // Exercised via the cache's debug assertion; also check evictions
        // only happen when needed by replaying a tiny trace.
        let trace = big_small_trace(3_000, 2);
        let r = run_cache_workload(&cfg_short_warmup(), &mut LruEviction, &trace);
        for ev in &r.evictions {
            assert!(ev.chosen < ev.candidates.len());
            assert!(ev.candidates.len() <= 10);
        }
    }

    #[test]
    fn table3_shape_freq_size_wins_big() {
        let trace = big_small_trace(60_000, 3);
        let random = hit_rate(RandomEviction, &trace);
        let lru = hit_rate(LruEviction, &trace);
        let lfu = hit_rate(LfuEviction, &trace);
        let fs = hit_rate(FreqSizeEviction, &trace);
        // The paper's ordering: freq/size beats random by ~10 points;
        // LRU is within noise of random; LFU is the worst.
        assert!(
            fs > random + 0.05,
            "freq-size {fs} must clearly beat random {random}"
        );
        assert!(
            (lru - random).abs() < 0.05,
            "lru {lru} should be near random {random}"
        );
        assert!(
            lfu < random + 0.01,
            "lfu {lfu} must not beat random {random}"
        );
        assert!(lfu < fs - 0.08, "lfu {lfu} far below freq-size {fs}");
    }

    #[test]
    fn cb_policy_matches_random_not_freq_size() {
        // Train the CB model on harvested random-eviction data, deploy it,
        // and observe Table 3's negative result: ≈ random, nowhere near
        // freq/size.
        let trace = big_small_trace(60_000, 4);
        let explore = run_cache_workload(&cfg(), &mut RandomEviction, &trace);
        let scorer = explore.fit_cb_scorer(60.0, 1e-2).unwrap();
        let cb = hit_rate(CbEviction::greedy(scorer), &trace);
        let random = explore.hit_rate();
        let fs = hit_rate(FreqSizeEviction, &trace);
        // The paper's qualitative claim: the CB policy "performs as poorly
        // as random eviction" — it must not beat random, and must sit far
        // below freq/size. (In our reproduction it lands at LFU's level,
        // slightly below random, because the greedy model protects the hot
        // large items deterministically.)
        assert!(cb < random + 0.02, "cb {cb} must not beat random {random}");
        assert!(
            cb > random - 0.12,
            "cb {cb} unreasonably far below random {random}"
        );
        assert!(cb < fs - 0.04, "cb {cb} must not reach freq-size {fs}");
    }

    #[test]
    fn dataset_rewards_are_normalized_time_to_next_access() {
        let trace = big_small_trace(10_000, 5);
        let r = run_cache_workload(&cfg(), &mut RandomEviction, &trace);
        let data = r.to_dataset(60.0);
        assert_eq!(data.len(), r.evictions.len());
        for s in &data {
            assert!((0.0..=1.0).contains(&s.reward), "reward {}", s.reward);
            assert!((s.propensity - 1.0 / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_eviction_policies_produce_no_dataset() {
        let trace = big_small_trace(10_000, 6);
        let r = run_cache_workload(&cfg(), &mut LruEviction, &trace);
        assert!(r.to_dataset(60.0).is_empty());
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let trace = big_small_trace(5_000, 7);
        let a = run_cache_workload(&cfg_short_warmup(), &mut RandomEviction, &trace);
        let b = run_cache_workload(&cfg_short_warmup(), &mut RandomEviction, &trace);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.evictions, b.evictions);
    }

    #[test]
    fn oversized_items_are_skipped() {
        let trace = vec![Request {
            at: SimTime::from_secs(1),
            key: 1,
            size_bytes: 10_000_000,
        }];
        let mut cfg = cfg();
        cfg.warmup = 0;
        let r = run_cache_workload(&cfg, &mut RandomEviction, &trace);
        assert_eq!(r.uncacheable, 1);
        assert_eq!(r.misses, 1);
    }
}

//! Property tests for cache-store invariants under arbitrary operation
//! sequences.

use proptest::prelude::*;

use harvest_sim_cache::policy::{
    Candidate, CbEviction, EvictionPolicy, FreqSizeEviction, LfuEviction, LruEviction,
    RandomEviction,
};
use harvest_sim_cache::runner::{run_cache_workload, CacheRunConfig};
use harvest_sim_cache::store::{Cache, CacheConfig};
use harvest_sim_net::rng::fork_rng;
use harvest_sim_net::time::SimTime;
use harvest_sim_net::workload::Request;

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Insert(u64, u64),
    Evict(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..20).prop_map(Op::Access),
        (0u64..20, 1u64..40).prop_map(|(k, s)| Op::Insert(k, s)),
        (0u64..20).prop_map(Op::Evict),
    ]
}

proptest! {
    #[test]
    fn used_bytes_always_equals_sum_of_entries(
        ops in proptest::collection::vec(arb_op(), 0..200)
    ) {
        let mut cache = Cache::new(CacheConfig::with_capacity(10_000));
        let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            match *op {
                Op::Access(k) => {
                    let hit = cache.access(k, now);
                    prop_assert_eq!(hit, shadow.contains_key(&k));
                }
                Op::Insert(k, s) => {
                    cache.insert(k, s, now);
                    shadow.insert(k, s);
                }
                Op::Evict(k) => {
                    let e = cache.evict(k);
                    let s = shadow.remove(&k);
                    prop_assert_eq!(e.map(|e| e.size_bytes), s);
                }
            }
            prop_assert_eq!(cache.used_bytes(), shadow.values().sum::<u64>());
            prop_assert_eq!(cache.len(), shadow.len());
        }
    }

    #[test]
    fn candidate_sampling_covers_only_residents(
        keys in proptest::collection::btree_set(0u64..50, 1..30),
        samples in 1usize..12,
        seed in 0u64..50
    ) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 1_000_000,
            eviction_samples: samples,
        });
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, 10, SimTime::from_secs(i as u64));
        }
        let mut rng = fork_rng(seed, "prop-sample");
        let cands = cache.sample_candidates(SimTime::from_secs(100), &mut rng);
        prop_assert_eq!(cands.len(), samples.min(keys.len()));
        let mut seen = std::collections::BTreeSet::new();
        for c in &cands {
            prop_assert!(keys.contains(&c.key), "sampled non-resident {}", c.key);
            prop_assert!(seen.insert(c.key), "duplicate candidate {}", c.key);
        }
    }

    #[test]
    fn every_policy_picks_a_valid_candidate(
        cand_data in proptest::collection::vec(
            (1u64..5000, 0.0f64..100.0, 0.1f64..200.0, 1u64..100), 1..12),
        seed in 0u64..50
    ) {
        let candidates: Vec<Candidate> = cand_data.iter().enumerate()
            .map(|(i, &(size, idle, age, count))| Candidate {
                key: i as u64,
                size_bytes: size,
                idle_s: idle,
                age_s: age,
                access_count: count,
            }).collect();
        let mut rng = fork_rng(seed, "prop-policy");
        let scorer = harvest_core::scorer::LinearScorer::Pooled {
            weights: vec![0.3, -0.2, 0.1, 0.05, 0.0],
        };
        let mut policies: Vec<Box<dyn EvictionPolicy>> = vec![
            Box::new(RandomEviction),
            Box::new(LruEviction),
            Box::new(LfuEviction),
            Box::new(FreqSizeEviction),
            Box::new(CbEviction::greedy(scorer)),
        ];
        for p in policies.iter_mut() {
            let choice = p.choose(&candidates, &mut rng);
            prop_assert!(choice.index < candidates.len(), "{} out of range", p.name());
            if let Some(prob) = choice.propensity {
                prop_assert!(prob > 0.0 && prob <= 1.0);
            }
        }
    }

    #[test]
    fn runner_respects_budget_for_any_trace(
        reqs in proptest::collection::vec((0u64..30, 1u64..3000), 1..150),
        seed in 0u64..20
    ) {
        let trace: Vec<Request> = reqs.iter().enumerate().map(|(i, &(k, s))| Request {
            at: SimTime::from_millis(i as u64 * 10),
            key: k,
            size_bytes: s,
        }).collect();
        let cfg = CacheRunConfig {
            cache: CacheConfig::with_capacity(5_000),
            warmup: 0,
            seed,
        };
        let r = run_cache_workload(&cfg, &mut RandomEviction, &trace);
        prop_assert_eq!(r.hits + r.misses, trace.len() as u64);
        // Every eviction has a valid chosen index and positive propensity.
        for ev in &r.evictions {
            prop_assert!(ev.chosen < ev.candidates.len());
            prop_assert_eq!(ev.propensity, Some(1.0 / ev.candidates.len() as f64));
        }
        // Rewards dataset reward normalization stays in [0, 1].
        for s in &r.to_dataset(30.0) {
            prop_assert!((0.0..=1.0).contains(&s.reward));
        }
    }
}

//! Per-shard SPSC log rings with a global-ticket merge: the lock-free
//! replacement for the bounded MPSC decision-log channel.
//!
//! Each shard pushes log frames into its own single-producer/single-consumer
//! ring — no shared channel mutex, no futex wake per frame — and the writer
//! thread drains the rings. Draining round-robin alone would make the
//! *merged* segment stream an artifact of thread timing; determinism is the
//! repo's non-negotiable invariant, so every admitted frame draws a **global
//! ticket** (one `fetch_add`, taken while the producer holds its ring's
//! gate) and the writer pops frames in strict ticket order. For any
//! deterministic call sequence the merged stream is then byte-identical to
//! what the old MPSC channel produced: ticket order *is* arrival order.
//!
//! Ring sizing (DESIGN.md §Lock-free hot path): each ring holds
//! `capacity` **frames**, where `capacity` is the [`QueueBudget`]'s bound in
//! logical records. Every admitted frame weighs ≥ 1 record, so the frames
//! outstanding across *all* rings never exceed `capacity` — one ring can
//! never fill while the budget has room, and admission keeps its exact
//! record-weighted semantics. The budget, not the ring, is the bound.
//!
//! Deadlock freedom: a ticket is drawn only *after* the producer has
//! confirmed ring space (while holding the ring's producer gate), so every
//! assigned-but-unpopped ticket is either already in a ring or a few
//! instructions from being so. The writer waiting on ticket `t` therefore
//! always makes progress, and a producer waiting for ring space (only
//! possible with a mis-sized ring; see above) holds no ticket the writer
//! needs.
//!
//! [`QueueBudget`]: crate::admission::QueueBudget
//!
//! This module is one of the three audited `unsafe` islands in the crate
//! (with [`cell`](crate::cell) and [`rcu`](crate::rcu)); every `unsafe`
//! block carries a `// SAFETY:` comment checked by `tests/unsafe_audit.rs`
//! and the CI grep.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use harvest_log::record::LogRecord;

use crate::engine::SEQ_BITS;

/// A bounded single-producer/single-consumer ring.
///
/// "Single" on each side is enforced, not assumed: each side has a TATAS
/// gate (`producer` / `consumer`), uncontended under shard affinity and the
/// single writer thread, so the public API stays safe even when a caller
/// violates affinity — that is the striped fallback path.
pub(crate) struct SpscRing<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (consumer side).
    head: AtomicUsize,
    /// Next slot to push (producer side).
    tail: AtomicUsize,
    producer: AtomicBool,
    consumer: AtomicBool,
}

// SAFETY: slot `i` is written only by the producer side (serialized by the
// `producer` gate) while `head ≤ i < head + capacity`, and read only by the
// consumer side (serialized by the `consumer` gate) after the producer's
// `tail` release-store publishes it — the acquire-load of `tail` in `pop` /
// `peek_map` synchronizes with that store, so sharing `&SpscRing<T>` across
// threads is sound whenever `T: Send`.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at least `capacity` items (rounded up to a power of
    /// two).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        SpscRing {
            mask: cap - 1,
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            producer: AtomicBool::new(false),
            consumer: AtomicBool::new(false),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.mask + 1
    }

    fn acquire_gate(gate: &AtomicBool) {
        loop {
            if !gate.swap(true, Ordering::Acquire) {
                return;
            }
            let mut spins = 0u32;
            while gate.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Claims the producer side. Uncontended under shard affinity.
    pub(crate) fn lock_producer(&self) -> ProducerGuard<'_, T> {
        Self::acquire_gate(&self.producer);
        ProducerGuard { ring: self }
    }

    /// Claims the consumer side. Uncontended: one writer thread at a time.
    pub(crate) fn lock_consumer(&self) -> ConsumerGuard<'_, T> {
        Self::acquire_gate(&self.consumer);
        ConsumerGuard { ring: self }
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drop any items still queued (e.g. a logger dropped before its
        // writer drained — not reachable through the supervisor, but the
        // ring must not leak in that case either).
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: `&mut self` gives exclusive access; slots in
            // `head..tail` were initialized by `push` and not yet popped,
            // and each is dropped exactly once here.
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Exclusive producer access; releases the gate on drop.
pub(crate) struct ProducerGuard<'a, T> {
    ring: &'a SpscRing<T>,
}

impl<T> ProducerGuard<'_, T> {
    pub(crate) fn is_full(&self) -> bool {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) == self.ring.capacity()
    }

    /// Pushes one item. The caller must have checked
    /// [`is_full`](Self::is_full); pushing into a full ring panics rather
    /// than overwrite unpopped frames.
    pub(crate) fn push(&mut self, value: T) {
        assert!(!self.is_full(), "SPSC ring overfull: budget mis-sized");
        let tail = self.ring.tail.load(Ordering::Relaxed);
        // SAFETY: the producer gate is held (only this guard writes slots),
        // and `!is_full()` means slot `tail` is not within the consumer's
        // unpopped `head..tail` window, so writing it races nothing.
        unsafe {
            (*self.ring.buf[tail & self.ring.mask].get()).write(value);
        }
        // Release-publish: pairs with the consumer's acquire-load of
        // `tail`, making the slot write above visible before the new tail.
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
    }
}

impl<T> Drop for ProducerGuard<'_, T> {
    fn drop(&mut self) {
        self.ring.producer.store(false, Ordering::Release);
    }
}

/// Exclusive consumer access; releases the gate on drop.
pub(crate) struct ConsumerGuard<'a, T> {
    ring: &'a SpscRing<T>,
}

impl<T> ConsumerGuard<'_, T> {
    /// Whether the ring has nothing to pop right now (test observability).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        head == tail
    }

    /// Applies `f` to the item at the head without popping it.
    pub(crate) fn peek_map<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the consumer gate is held, `head < tail` means slot
        // `head` was initialized by a push whose tail release-store the
        // acquire-load above synchronized with, and the producer cannot
        // overwrite it until `head` advances.
        let item = unsafe { (*self.ring.buf[head & self.ring.mask].get()).assume_init_ref() };
        Some(f(item))
    }

    /// Pops the item at the head.
    pub(crate) fn pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: as in `peek_map`; additionally the slot is read out by
        // value exactly once, because `head` advances past it below and the
        // consumer gate serializes poppers.
        let value = unsafe { (*self.ring.buf[head & self.ring.mask].get()).assume_init_read() };
        // Release-free: pairs with the producer's acquire-load of `head`
        // in `is_full`, letting it reuse the slot.
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for ConsumerGuard<'_, T> {
    fn drop(&mut self) {
        self.ring.consumer.store(false, Ordering::Release);
    }
}

/// One queued frame plus its global arrival ticket.
struct Ticketed {
    ticket: u64,
    record: LogRecord,
}

/// The per-shard ring set shared by every [`DecisionLogger`] clone and the
/// supervised writer: rings, the global ticket counter, the merge cursor,
/// and the writer's doorbell.
///
/// [`DecisionLogger`]: crate::logger::DecisionLogger
pub(crate) struct LogRings {
    rings: Box<[SpscRing<Ticketed>]>,
    /// Next ticket to assign; drawn under a ring's producer gate so ring
    /// order and ticket order agree within each ring.
    next_ticket: AtomicU64,
    /// Next ticket the writer will pop — the merge cursor.
    next_pop: AtomicU64,
    /// Live producer handles (logical: all `DecisionLogger` clones share
    /// one). Zero means the writer can exit once tickets are drained.
    producers: AtomicUsize,
    /// Writer parked flag: producers ring the doorbell only when set,
    /// so the steady-state push path never touches the mutex.
    sleeping: AtomicBool,
    doorbell: Mutex<()>,
    bell: Condvar,
}

impl LogRings {
    /// `rings` rings of `capacity` frames each (`capacity` = the queue
    /// budget's bound in logical records; see the module docs for why that
    /// can never overfill a ring).
    pub(crate) fn new(rings: usize, capacity: usize) -> Self {
        LogRings {
            rings: (0..rings.max(1))
                .map(|_| SpscRing::with_capacity(capacity))
                .collect(),
            next_ticket: AtomicU64::new(0),
            next_pop: AtomicU64::new(0),
            producers: AtomicUsize::new(1),
            sleeping: AtomicBool::new(false),
            doorbell: Mutex::new(()),
            bell: Condvar::new(),
        }
    }

    /// Which ring a record belongs to: the deciding shard (`id >> SEQ_BITS`)
    /// of its (first) request id, so decision and outcome traffic for one
    /// shard stay on one ring and the producer gate stays uncontended under
    /// shard affinity.
    fn route(&self, record: &LogRecord) -> usize {
        let id = match record {
            LogRecord::Decision(d) => d.request_id,
            LogRecord::Outcome(o) => o.request_id,
            LogRecord::Batch(b) => b.decisions.first().map(|d| d.request_id).unwrap_or(0),
        };
        ((id >> SEQ_BITS) as usize) % self.rings.len()
    }

    /// Enqueues one admitted frame: draws the global ticket and pushes,
    /// both under the target ring's producer gate. The caller must hold the
    /// frame's record-weighted budget reservation — that is what bounds the
    /// ring (a full ring here means the budget was bypassed, and the push
    /// waits for the writer rather than corrupt the stream).
    pub(crate) fn push(&self, record: LogRecord) {
        let ring = &self.rings[self.route(&record)];
        let mut producer = ring.lock_producer();
        while producer.is_full() {
            std::thread::yield_now();
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::AcqRel);
        producer.push(Ticketed { ticket, record });
        drop(producer);
        self.ring_bell();
    }

    /// Marks one logical producer gone; the last one wakes the writer so it
    /// can drain and exit.
    pub(crate) fn producer_gone(&self) {
        if self.producers.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.doorbell.lock().unwrap_or_else(|e| e.into_inner());
            self.sleeping.store(false, Ordering::SeqCst);
            self.bell.notify_all();
        }
    }

    fn ring_bell(&self) {
        if self.sleeping.swap(false, Ordering::AcqRel) {
            let _guard = self.doorbell.lock().unwrap_or_else(|e| e.into_inner());
            self.bell.notify_all();
        }
    }

    /// Pops the next frame in global ticket order.
    ///
    /// With `block`, parks on the doorbell until a frame arrives and
    /// returns `None` only when every producer is gone and every assigned
    /// ticket has been popped — the writer's clean-exit condition, matching
    /// the old channel's disconnect. Without `block`, returns `None` as
    /// soon as no ticket is pending (the writer's batch-drain probe).
    pub(crate) fn pop_next(&self, block: bool) -> Option<LogRecord> {
        loop {
            let expected = self.next_pop.load(Ordering::Acquire);
            if self.next_ticket.load(Ordering::Acquire) > expected {
                return Some(self.pop_ticket(expected));
            }
            if self.producers.load(Ordering::Acquire) == 0 {
                // Re-check after observing the hang-up: a ticket drawn
                // before the last producer left must still be drained.
                if self.next_ticket.load(Ordering::Acquire) == expected {
                    return None;
                }
                continue;
            }
            if !block {
                return None;
            }
            // Park. The recheck between setting `sleeping` and waiting
            // closes the race with a producer that pushed in between; the
            // timeout is a belt-and-braces liveness floor.
            self.sleeping.store(true, Ordering::SeqCst);
            if self.next_ticket.load(Ordering::SeqCst) > expected
                || self.producers.load(Ordering::SeqCst) == 0
            {
                self.sleeping.store(false, Ordering::SeqCst);
                continue;
            }
            let guard = self.doorbell.lock().unwrap_or_else(|e| e.into_inner());
            let waited = self
                .bell
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            drop(waited);
        }
    }

    /// Pops the frame holding `ticket`, which is known to be assigned: it
    /// is at some ring's head (tickets are drawn in push order under each
    /// ring's gate, so per-ring ticket order is ascending) or at most a few
    /// instructions from arriving there.
    fn pop_ticket(&self, ticket: u64) -> LogRecord {
        loop {
            for ring in self.rings.iter() {
                let mut consumer = ring.lock_consumer();
                if consumer.peek_map(|t| t.ticket) == Some(ticket) {
                    let t = consumer.pop().expect("peeked frame must pop");
                    drop(consumer);
                    self.next_pop.store(ticket + 1, Ordering::Release);
                    return t.record;
                }
            }
            // The push that drew this ticket is completing; let it finish.
            std::thread::yield_now();
        }
    }
}

impl std::fmt::Debug for LogRings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogRings")
            .field("rings", &self.rings.len())
            .field("next_ticket", &self.next_ticket.load(Ordering::Relaxed))
            .field("next_pop", &self.next_pop.load(Ordering::Relaxed))
            .field("producers", &self.producers.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_log::record::OutcomeRecord;
    use std::sync::Arc;

    fn outcome(shard: u64, seq: u64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: (shard << SEQ_BITS) | seq,
            timestamp_ns: seq,
            reward: 0.0,
        })
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring: SpscRing<u64> = SpscRing::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        {
            let mut p = ring.lock_producer();
            for i in 0..4 {
                assert!(!p.is_full());
                p.push(i);
            }
            assert!(p.is_full());
        }
        let mut c = ring.lock_consumer();
        assert_eq!(c.peek_map(|&v| v), Some(0));
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        let flag = Arc::new(AtomicUsize::new(0));
        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let ring: SpscRing<Bump> = SpscRing::with_capacity(8);
        {
            let mut p = ring.lock_producer();
            for _ in 0..3 {
                p.push(Bump(Arc::clone(&flag)));
            }
        }
        ring.lock_consumer().pop();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        drop(ring);
        assert_eq!(flag.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn merge_order_is_ticket_order_across_rings() {
        let rings = LogRings::new(4, 64);
        // Interleave pushes across shards; the pop order must match the
        // push (= ticket) order exactly.
        let sequence: Vec<(u64, u64)> = (0..32).map(|i| (i % 4, i / 4)).collect();
        for &(shard, seq) in &sequence {
            rings.push(outcome(shard, seq));
        }
        rings.producer_gone();
        for &(shard, seq) in &sequence {
            assert_eq!(rings.pop_next(true), Some(outcome(shard, seq)));
        }
        assert_eq!(rings.pop_next(true), None);
    }

    #[test]
    fn blocking_pop_waits_for_a_late_producer() {
        let rings = Arc::new(LogRings::new(2, 16));
        let r2 = Arc::clone(&rings);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.push(outcome(1, 7));
            r2.producer_gone();
        });
        assert_eq!(rings.pop_next(true), Some(outcome(1, 7)));
        assert_eq!(rings.pop_next(true), None);
        t.join().unwrap();
    }

    #[test]
    fn nonblocking_pop_returns_none_when_idle() {
        let rings = LogRings::new(2, 16);
        assert_eq!(rings.pop_next(false), None);
        rings.push(outcome(0, 0));
        assert_eq!(rings.pop_next(false), Some(outcome(0, 0)));
        assert_eq!(rings.pop_next(false), None);
    }
}

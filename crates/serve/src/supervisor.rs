//! The writer supervisor: crash-safe segment persistence under restarts.
//!
//! One supervisor thread owns the writer's lifecycle. It spawns a writer
//! *incarnation* thread, joins it, and reacts:
//!
//! * clean exit (the producers hung up and the queue is drained) — done;
//! * panic — seal the possibly-torn current segment with a rotation, sleep
//!   a capped exponential backoff, count a restart, and spawn the next
//!   incarnation. The bounded queue holds the backlog across the gap, so a
//!   writer crash costs latency, never records.
//!
//! When the restart budget is exhausted the writer is declared permanently
//! down: the supervisor keeps draining the queue, counting every record
//! `dropped` — Block-mode producers are never wedged, and the conservation
//! ledger (`enqueued == written + dropped + quarantined`) stays exact. The
//! circuit breaker sees `alive() == false` and falls back to the safe
//! policy.
//!
//! Fault injection rides the same path: a [`ChaosPlan`] keyed by record
//! index can kill an incarnation before a pop (the record survives in the
//! queue) or tear a frame mid-append (the partial frame is counted
//! quarantined here and again, identically, by segment recovery). Indices
//! count *popped* records, so a kill — which pops nothing — cannot re-fire
//! after restart; a cursor over the sorted kill list advances exactly once
//! per scheduled kill.
//!
//! The queue itself is the per-shard SPSC ring set ([`crate::ring`]): the
//! writer pops frames in global ticket order, so the persisted stream for
//! any deterministic call sequence is identical to what the old bounded
//! MPSC channel produced, while producers never share a channel lock.

use std::io;
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use harvest_log::record::LogRecord;
use harvest_log::segment::{encode_frame, SegmentSink, SegmentedLogWriter};
use harvest_sim_net::fault::{ChaosPlan, WriterFault};

use harvest_obs::Terminal;

use crate::admission::QueueBudget;
use crate::error::lock_recovering;
use crate::logger::{DecisionLogger, LoggerConfig};
use crate::metrics::ServeMetrics;
use crate::obs::seal_observer;
use crate::ring::LogRings;

const SEQ: Ordering = Ordering::SeqCst;

/// Restart policy for the supervised writer.
///
/// Construct via [`SupervisorConfig::builder`] or from
/// [`SupervisorConfig::default`]; `#[non_exhaustive]`, so out-of-crate
/// literal construction no longer compiles.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SupervisorConfig {
    /// How many times a crashed writer is restarted before it is declared
    /// permanently down.
    pub max_restarts: u32,
    /// First backoff sleep, in milliseconds; doubles per consecutive
    /// restart.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Starting value of the fault-index clock (records popped so far).
    /// Zero for a fresh service; a warm restart sets it to the records the
    /// previous incarnation durably accounted (`written + quarantined`), so
    /// a seeded [`ChaosPlan`]'s writer faults keyed below it — already
    /// consumed before the crash — can never re-fire.
    pub first_record_index: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            first_record_index: 0,
        }
    }
}

impl SupervisorConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> SupervisorConfigBuilder {
        SupervisorConfigBuilder(SupervisorConfig::default())
    }
}

/// Builder for [`SupervisorConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfigBuilder(SupervisorConfig);

impl SupervisorConfigBuilder {
    /// Restart budget before the writer is declared permanently down.
    pub fn max_restarts(mut self, max_restarts: u32) -> Self {
        self.0.max_restarts = max_restarts;
        self
    }

    /// First backoff sleep in milliseconds (doubles per restart).
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.0.backoff_base_ms = ms;
        self
    }

    /// Backoff ceiling in milliseconds.
    pub fn backoff_cap_ms(mut self, ms: u64) -> Self {
        self.0.backoff_cap_ms = ms;
        self
    }

    /// Starting value of the fault-index clock (warm restarts resume it at
    /// the previous incarnation's `written + quarantined`).
    pub fn first_record_index(mut self, index: u64) -> Self {
        self.0.first_record_index = index;
        self
    }

    /// Returns the config.
    pub fn build(self) -> SupervisorConfig {
        self.0
    }
}

/// State shared between incarnations, the supervisor, and the handle.
struct WriterShared<S> {
    /// The per-shard ring set; popped in global ticket order.
    rings: Arc<LogRings>,
    /// Record-weighted queue bound, released as frames are popped.
    budget: Arc<QueueBudget>,
    /// `Some` until [`WriterSupervisorHandle::finish`] takes the writer.
    writer: Mutex<Option<SegmentedLogWriter<S>>>,
    /// Records popped from the queue so far — the fault-index clock.
    attempted: AtomicU64,
    /// Sorted record indices with a scheduled kill, consumed left to right.
    kills: Vec<u64>,
    kill_cursor: AtomicUsize,
    chaos: Option<Arc<ChaosPlan>>,
    metrics: Arc<ServeMetrics>,
}

impl<S: SegmentSink> WriterShared<S> {
    /// Marks a decision record's trace terminal. Must be called *before*
    /// the matching ledger metric is bumped, so that a drained backlog
    /// (`log_backlog == 0`) implies every trace has reached its terminal —
    /// the tracer parks the event and every audit/export flushes parked
    /// events first, which preserves that implication without this thread
    /// taking a trace-shard lock per record. Outcome records carry no
    /// trace of their own and are skipped.
    fn note_terminal(&self, record: &LogRecord, terminal: Terminal) {
        let Some(obs) = self.metrics.obs() else {
            return;
        };
        match record {
            LogRecord::Decision(d) => {
                obs.tracer().terminal_deferred(d.request_id, terminal);
                obs.journal_stage_terminal(d.timestamp_ns, terminal);
            }
            // A batch frame terminates every decision it carries — same
            // terminal, one inbox push per id.
            LogRecord::Batch(b) => {
                for d in &b.decisions {
                    obs.tracer().terminal_deferred(d.request_id, terminal);
                    obs.journal_stage_terminal(d.timestamp_ns, terminal);
                }
            }
            LogRecord::Outcome(_) => {}
        }
    }

    /// Panics if a kill is scheduled at or before `next_index`. Called
    /// *before* popping, so the record in question stays queued for the
    /// next incarnation.
    fn maybe_fire_kill(&self, next_index: u64) {
        let cursor = self.kill_cursor.load(SEQ);
        if cursor < self.kills.len() && next_index >= self.kills[cursor] {
            self.kill_cursor.store(cursor + 1, SEQ);
            panic!("chaos: writer killed before record {next_index}");
        }
    }

    /// Persists one popped record, applying any scheduled tear fault. A
    /// batch frame advances the fault-index clock by its batch length (the
    /// clock counts *logical* records, matching the single-call run), and a
    /// fault scheduled anywhere inside that range fires on the whole frame.
    fn write_one(&self, record: &LogRecord) {
        let count = record.record_count() as u64;
        let index = self.attempted.fetch_add(count.max(1), SEQ);
        let fault = self
            .chaos
            .as_ref()
            .and_then(|c| (index..index + count.max(1)).find_map(|i| c.writer_fault_at(i)));
        let mut guard = lock_recovering(&self.writer, Some(&self.metrics));
        let Some(writer) = guard.as_mut() else {
            // The writer was already taken at shutdown; nothing to do but
            // keep the ledger honest.
            self.note_terminal(record, Terminal::Dropped);
            self.metrics.record_dropped_n(count);
            return;
        };
        if let Some(WriterFault::Tear { keep_frac }) = fault {
            // A crash mid-append: persist a strict prefix of the frame,
            // count the record(s) quarantined, and die holding the lock —
            // the poisoned mutex is part of the fault being injected. The
            // runtime ledger counts the whole batch; at-rest recovery of a
            // torn *batch* frame can only count the unparsable partial
            // frame once, an undercount DESIGN.md §10 records.
            if let Ok(frame) = encode_frame(record) {
                let keep = (((frame.len() - 1) as f64) * keep_frac.clamp(0.0, 1.0)) as usize;
                let keep = keep.clamp(1, frame.len() - 1);
                let _ = writer.append_raw(&frame[..keep]);
            }
            self.note_terminal(record, Terminal::Quarantined);
            self.metrics.record_quarantined(count);
            panic!("chaos: torn write of record {index}");
        }
        match writer.write(record) {
            Ok(_) => {
                self.note_terminal(record, Terminal::Written);
                self.metrics.record_written_n(count);
            }
            Err(_) => {
                // The sink refused the append; the frame may be partial.
                // Count the record(s) quarantined and seal the segment so
                // the damage cannot spread into later frames.
                self.note_terminal(record, Terminal::Quarantined);
                self.metrics.record_quarantined(count);
                let _ = writer.rotate();
            }
        }
    }
}

/// One writer incarnation: drain the rings (in global ticket order) in
/// batches until the producers hang up. Returns normally only on hang-up.
fn incarnation<S: SegmentSink>(shared: &WriterShared<S>) {
    loop {
        shared.maybe_fire_kill(shared.attempted.load(SEQ));
        let Some(first) = shared.rings.pop_next(true) else {
            // Producers gone and rings empty: flush and exit cleanly.
            let mut guard = lock_recovering(&shared.writer, Some(&shared.metrics));
            if let Some(w) = guard.as_mut() {
                let _ = w.flush();
            }
            return;
        };
        // Release the budget at pop, before persisting: an injected
        // mid-write panic must never leak queue capacity.
        shared.budget.release(first.record_count() as u64);
        shared.write_one(&first);
        // Batch: drain whatever is already queued before one flush.
        loop {
            shared.maybe_fire_kill(shared.attempted.load(SEQ));
            match shared.rings.pop_next(false) {
                Some(record) => {
                    shared.budget.release(record.record_count() as u64);
                    shared.write_one(&record);
                }
                None => break,
            }
        }
        let mut guard = lock_recovering(&shared.writer, Some(&shared.metrics));
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// The supervisor loop: spawn, join, seal, back off, restart — or give up
/// and drain.
fn supervise<S: SegmentSink + Send + 'static>(
    shared: Arc<WriterShared<S>>,
    cfg: SupervisorConfig,
    alive: Arc<AtomicBool>,
) {
    let mut restarts: u32 = 0;
    loop {
        let child_shared = Arc::clone(&shared);
        let child = std::thread::Builder::new()
            .name(format!("harvest-serve-log-writer-{restarts}"))
            .spawn(move || incarnation(&child_shared))
            .expect("spawn log writer incarnation");
        match child.join() {
            Ok(()) => {
                // Clean disconnect: the queue is drained.
                alive.store(false, SEQ);
                return;
            }
            Err(_panic) => {
                // Seal the possibly-torn tail before anything else writes.
                {
                    let mut guard = lock_recovering(&shared.writer, Some(&shared.metrics));
                    if let Some(w) = guard.as_mut() {
                        let _ = w.rotate();
                    }
                }
                if restarts >= cfg.max_restarts {
                    // Permanently down. Keep draining so Block-mode
                    // producers never wedge; every queued or future record
                    // is counted dropped.
                    alive.store(false, SEQ);
                    while let Some(record) = shared.rings.pop_next(true) {
                        shared.budget.release(record.record_count() as u64);
                        shared.note_terminal(&record, Terminal::Dropped);
                        shared
                            .metrics
                            .record_dropped_n(record.record_count() as u64);
                    }
                    return;
                }
                restarts += 1;
                shared.metrics.record_writer_restart();
                let exp = (restarts - 1).min(16);
                let backoff = cfg
                    .backoff_base_ms
                    .saturating_mul(1u64 << exp)
                    .min(cfg.backoff_cap_ms);
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
}

/// Handle to the supervised writer: liveness for the breaker, and the sink
/// back at shutdown.
pub struct WriterSupervisorHandle<S> {
    supervisor: JoinHandle<()>,
    shared: Arc<WriterShared<S>>,
    alive: Arc<AtomicBool>,
}

impl<S: SegmentSink> WriterSupervisorHandle<S> {
    /// Whether the writer is still being kept alive by the supervisor.
    /// `false` means permanently down (restart budget exhausted) or cleanly
    /// shut down.
    pub fn alive(&self) -> bool {
        self.alive.load(SEQ)
    }

    /// Waits for the supervisor to finish (every [`DecisionLogger`] clone
    /// must be dropped first, or this blocks forever) and returns the sink
    /// with all persisted segments.
    ///
    /// This is the one place in the crate a caught panic is re-raised: the
    /// supervisor thread itself never panics by design, so a panic here is
    /// a genuine bug, not an injected fault.
    pub fn finish(self) -> io::Result<S> {
        let WriterSupervisorHandle {
            supervisor, shared, ..
        } = self;
        if let Err(payload) = supervisor.join() {
            panic::resume_unwind(payload);
        }
        let writer = lock_recovering(&shared.writer, Some(&shared.metrics))
            .take()
            .expect("writer taken exactly once, at finish");
        writer.into_sink()
    }
}

/// Spawns the supervised writer over `sink` and returns the producer half
/// plus the supervisor handle. `chaos` is the deterministic fault schedule
/// (`None` in production).
pub fn spawn_supervised_writer<S: SegmentSink + Send + 'static>(
    cfg: LoggerConfig,
    sup: SupervisorConfig,
    metrics: Arc<ServeMetrics>,
    chaos: Option<Arc<ChaosPlan>>,
    sink: S,
) -> (DecisionLogger, WriterSupervisorHandle<S>) {
    // The rings are sized in frames only as a backstop; the record-
    // weighted QueueBudget is the real bound (frames ≤ records, so no ring
    // can fill while the budget has room).
    let rings = Arc::new(LogRings::new(cfg.shard_rings.max(1), cfg.capacity.max(1)));
    let budget = Arc::new(QueueBudget::new(cfg.capacity.max(1) as u64));
    let kills = chaos.as_ref().map(|c| c.writer_kills()).unwrap_or_default();
    let mut writer = SegmentedLogWriter::with_start(sink, cfg.segment, cfg.first_segment);
    if let Some(obs) = metrics.obs() {
        writer.set_observer(seal_observer(obs));
    }
    // Resume the fault-index clock where the previous incarnation durably
    // left it: kills keyed strictly below it already fired before the
    // crash, so the cursor starts past them; a kill keyed exactly at the
    // resume index targets a record not yet popped and stays armed.
    let kill_cursor = kills.partition_point(|&k| k < sup.first_record_index);
    let shared = Arc::new(WriterShared {
        rings: Arc::clone(&rings),
        budget: Arc::clone(&budget),
        writer: Mutex::new(Some(writer)),
        attempted: AtomicU64::new(sup.first_record_index),
        kills,
        kill_cursor: AtomicUsize::new(kill_cursor),
        chaos,
        metrics: Arc::clone(&metrics),
    });
    let alive = Arc::new(AtomicBool::new(true));
    let supervisor = {
        let shared = Arc::clone(&shared);
        let alive = Arc::clone(&alive);
        std::thread::Builder::new()
            .name("harvest-serve-log-supervisor".to_string())
            .spawn(move || supervise(shared, sup, alive))
            .expect("spawn log writer supervisor")
    };
    (
        DecisionLogger::new(rings, budget, cfg.backpressure, metrics),
        WriterSupervisorHandle {
            supervisor,
            shared,
            alive,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::Backpressure;
    use harvest_log::record::OutcomeRecord;
    use harvest_log::segment::{MemorySegments, SegmentConfig};

    fn outcome(id: u64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id,
            reward: 1.0,
        })
    }

    fn cfg(capacity: usize, backpressure: Backpressure) -> LoggerConfig {
        LoggerConfig {
            capacity,
            backpressure,
            segment: SegmentConfig {
                max_records: 16,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
            first_segment: 0,
            shard_rings: 1,
        }
    }

    #[test]
    fn writes_everything_in_order_without_faults() {
        let metrics = Arc::new(ServeMetrics::new());
        let (logger, handle) = spawn_supervised_writer(
            cfg(2, Backpressure::Block),
            SupervisorConfig::default(),
            Arc::clone(&metrics),
            None,
            MemorySegments::new(),
        );
        for id in 0..100 {
            logger.log(outcome(id));
        }
        drop(logger);
        let store = handle.finish().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.recovered, 100);
        assert_eq!(stats.quarantined_records, 0);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r, &outcome(i as u64));
        }
        let s = metrics.snapshot();
        assert_eq!(s.log_enqueued, 100);
        assert_eq!(s.log_written, 100);
        assert_eq!(s.log_dropped, 0);
        assert_eq!(s.log_backlog, 0);
        assert_eq!(s.writer_restarts, 0);
    }

    #[test]
    fn a_killed_writer_restarts_and_loses_nothing() {
        let metrics = Arc::new(ServeMetrics::new());
        let plan = Arc::new(ChaosPlan::none().kill_writer_at(10).kill_writer_at(40));
        let (logger, handle) = spawn_supervised_writer(
            cfg(128, Backpressure::Block),
            SupervisorConfig::default(),
            Arc::clone(&metrics),
            Some(plan),
            MemorySegments::new(),
        );
        for id in 0..100 {
            logger.log(outcome(id));
        }
        drop(logger);
        let store = handle.finish().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.recovered, 100, "kills must not lose records");
        let s = metrics.snapshot();
        assert_eq!(s.writer_restarts, 2);
        assert_eq!(s.log_written, 100);
        assert_eq!(
            s.log_enqueued,
            s.log_written + s.log_dropped + s.log_quarantined
        );
        assert_eq!(records.len(), 100);
    }

    #[test]
    fn a_torn_write_quarantines_exactly_one_record() {
        let metrics = Arc::new(ServeMetrics::new());
        let plan = Arc::new(ChaosPlan::none().tear_writer_at(7, 0.5));
        let (logger, handle) = spawn_supervised_writer(
            cfg(128, Backpressure::Block),
            SupervisorConfig::default(),
            Arc::clone(&metrics),
            Some(plan),
            MemorySegments::new(),
        );
        for id in 0..50 {
            logger.log(outcome(id));
        }
        drop(logger);
        let store = handle.finish().unwrap();
        let (records, stats) = store.recover();
        // Record 7 died mid-append; recovery counts the partial frame once.
        assert_eq!(stats.recovered, 49);
        assert_eq!(stats.quarantined_records, 1);
        let s = metrics.snapshot();
        assert_eq!(s.log_written, 49);
        assert_eq!(s.log_quarantined, 1);
        assert_eq!(s.writer_restarts, 1);
        assert_eq!(
            s.log_enqueued,
            s.log_written + s.log_dropped + s.log_quarantined
        );
        // The surviving stream skips exactly record 7.
        assert!(records.iter().all(|r| r != &outcome(7)));
        // Runtime and recovery agree on the quarantine count.
        assert_eq!(stats.quarantined_records as u64, s.log_quarantined);
    }

    #[test]
    fn restart_exhaustion_drains_and_counts_drops() {
        let metrics = Arc::new(ServeMetrics::new());
        // Kill on every record: the budget of 2 restarts is exhausted
        // after the third kill, and the rest of the queue is discarded.
        let mut plan = ChaosPlan::none();
        for i in 0..200 {
            plan = plan.kill_writer_at(i);
        }
        let (logger, handle) = spawn_supervised_writer(
            cfg(4, Backpressure::Block),
            SupervisorConfig {
                max_restarts: 2,
                backoff_base_ms: 1,
                backoff_cap_ms: 2,
                first_record_index: 0,
            },
            Arc::clone(&metrics),
            Some(Arc::new(plan)),
            MemorySegments::new(),
        );
        for id in 0..100 {
            logger.log(outcome(id));
        }
        drop(logger);
        let store = handle.finish().unwrap();
        let (_, stats) = store.recover();
        let s = metrics.snapshot();
        // Incarnation 0 dies pre-pop; each restarted incarnation writes one
        // record before the next per-record kill fires; the third kill
        // exhausts the budget of 2 restarts.
        assert_eq!(s.writer_restarts, 2);
        assert_eq!(s.log_written, 2);
        assert_eq!(s.log_enqueued, 100);
        assert_eq!(s.log_dropped, 98);
        // Conservation: every record written or counted dropped by the
        // post-mortem drain; nothing vanishes.
        assert_eq!(
            s.log_enqueued,
            s.log_written + s.log_dropped + s.log_quarantined
        );
        assert_eq!(stats.recovered, 2);
    }

    #[test]
    fn same_chaos_schedule_yields_byte_identical_segments() {
        let run = || {
            let metrics = Arc::new(ServeMetrics::new());
            let plan = Arc::new(
                ChaosPlan::none()
                    .kill_writer_at(5)
                    .tear_writer_at(12, 0.3)
                    .kill_writer_at(30),
            );
            let (logger, handle) = spawn_supervised_writer(
                cfg(256, Backpressure::Block),
                SupervisorConfig::default(),
                metrics,
                Some(plan),
                MemorySegments::new(),
            );
            for id in 0..60 {
                logger.log(outcome(id));
            }
            drop(logger);
            handle.finish().unwrap().snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same schedule must leave byte-identical segments");
    }
}

//! At-rest fault application: simulated disk damage between run and recovery.
//!
//! The in-flight fault classes (writer kills, torn writes, reward drops,
//! shard wedges, trainer crashes) are injected while the service runs.
//! At-rest faults model what happens *after* the process is gone — bit rot
//! and torn final writes discovered only when the segments are read back.
//! [`apply_at_rest_faults`] translates a [`ChaosPlan`]'s fractional damage
//! coordinates into concrete `(segment, frame)` targets against a
//! [`MemorySegments`] store, so the same plan damages the same bytes no
//! matter how many segments the run produced.

use harvest_log::segment::{recover_segment, MemorySegments};
use harvest_sim_net::fault::{AtRestFault, ChaosPlan};

/// Resolves a fraction in `[0, 1]` to an index in `0..n`. Returns `None`
/// when there is nothing to index into.
fn frac_index(frac: f64, n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let clamped = frac.clamp(0.0, 1.0);
    Some(((clamped * n as f64) as usize).min(n - 1))
}

/// Applies every at-rest fault in `plan` to `store`, returning how many
/// actually landed (a fault misses when the store is empty, the target
/// segment has no complete frames, or a tear finds an already-torn tail).
///
/// Damage is deliberately restricted to what a real crash or bit flip can
/// produce — payload corruption inside one frame, or truncation of a
/// segment's final frame — so recovery accounting stays exact: each landed
/// fault quarantines the damaged frame and (for corruption) the frames
/// after it in that segment, never a partial mystery.
pub fn apply_at_rest_faults(plan: &ChaosPlan, store: &MemorySegments) -> usize {
    let mut landed = 0;
    for fault in plan.at_rest() {
        match *fault {
            AtRestFault::CorruptPayload {
                segment_frac,
                frame_frac,
                xor,
            } => {
                let snapshot = store.snapshot();
                let Some(seg) = frac_index(segment_frac, snapshot.len()) else {
                    continue;
                };
                // Count the complete frames actually in the target segment
                // so the frame fraction lands inside it.
                let (_, recovery) = recover_segment(&snapshot[seg]);
                let Some(frame) = frac_index(frame_frac, recovery.recovered) else {
                    continue;
                };
                if store.corrupt_payload(seg, frame, xor) {
                    landed += 1;
                }
            }
            AtRestFault::TearTail {
                segment_frac,
                keep_frac,
            } => {
                let Some(seg) = frac_index(segment_frac, store.segment_count()) else {
                    continue;
                };
                if store.tear_tail(seg, keep_frac) {
                    landed += 1;
                }
            }
        }
    }
    landed
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_log::record::{LogRecord, OutcomeRecord};
    use harvest_log::segment::{SegmentConfig, SegmentedLogWriter};

    fn record(id: u64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id * 10,
            reward: (id % 3) as f64,
        })
    }

    fn filled_store(records: u64, per_segment: usize) -> MemorySegments {
        let store = MemorySegments::new();
        let mut writer = SegmentedLogWriter::new(
            store.clone(),
            SegmentConfig {
                max_records: per_segment,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        for id in 0..records {
            writer.write(&record(id)).unwrap();
        }
        writer.flush().unwrap();
        store
    }

    #[test]
    fn corruption_quarantines_the_targeted_suffix() {
        let store = filled_store(20, 5);
        let plan = ChaosPlan::none().damage_at_rest(AtRestFault::CorruptPayload {
            segment_frac: 0.0,
            frame_frac: 0.5,
            xor: 0xFF,
        });
        assert_eq!(apply_at_rest_faults(&plan, &store), 1);
        let (records, stats) = store.recover();
        // Segment 0 frame 2 is corrupt: frames 2..5 of that segment are
        // quarantined, every other segment is intact.
        assert_eq!(stats.recovered, 17);
        assert_eq!(stats.quarantined_records, 3);
        assert_eq!(stats.corrupt_segments, 1);
        assert_eq!(records.len(), 17);
    }

    #[test]
    fn tear_quarantines_exactly_the_final_frame() {
        let store = filled_store(10, 5);
        let plan = ChaosPlan::none().damage_at_rest(AtRestFault::TearTail {
            segment_frac: 1.0,
            keep_frac: 0.5,
        });
        assert_eq!(apply_at_rest_faults(&plan, &store), 1);
        let (_, stats) = store.recover();
        assert_eq!(stats.recovered, 9);
        assert_eq!(stats.quarantined_records, 1);
    }

    #[test]
    fn faults_against_an_empty_store_miss_harmlessly() {
        let store = MemorySegments::new();
        let plan = ChaosPlan::none()
            .damage_at_rest(AtRestFault::CorruptPayload {
                segment_frac: 0.5,
                frame_frac: 0.5,
                xor: 1,
            })
            .damage_at_rest(AtRestFault::TearTail {
                segment_frac: 0.5,
                keep_frac: 0.5,
            });
        assert_eq!(apply_at_rest_faults(&plan, &store), 0);
        let (records, stats) = store.recover();
        assert!(records.is_empty());
        assert_eq!(stats.quarantined_records, 0);
    }

    #[test]
    fn same_plan_same_damage() {
        let plan = ChaosPlan::none()
            .damage_at_rest(AtRestFault::CorruptPayload {
                segment_frac: 0.7,
                frame_frac: 0.3,
                xor: 0x42,
            })
            .damage_at_rest(AtRestFault::TearTail {
                segment_frac: 0.2,
                keep_frac: 0.4,
            });
        let a = filled_store(50, 8);
        let b = filled_store(50, 8);
        apply_at_rest_faults(&plan, &a);
        apply_at_rest_faults(&plan, &b);
        assert_eq!(a.snapshot(), b.snapshot());
        let (ra, sa) = a.recover();
        let (rb, sb) = b.recover();
        assert_eq!(ra.len(), rb.len());
        assert_eq!(sa.quarantined_records, sb.quarantined_records);
    }
}

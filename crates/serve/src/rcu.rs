//! Epoch-pinned RCU double-buffer: lock-free policy reads under hot swap.
//!
//! The registry used to keep its two policy slots behind mutexes; a policy
//! read in the instant after a swap took a lock, and a promotion locked the
//! inactive slot while writing. This cell removes both: readers do **one
//! atomic load plus an epoch pin**, and a writer **waits for quiescence** —
//! until no reader is pinned to the slot it is about to overwrite — before
//! touching it. Readers never block writers for longer than one `clone`,
//! and writers never block readers at all.
//!
//! # Protocol and memory-ordering rationale (DESIGN.md §Lock-free hot path)
//!
//! Every pin slot holds `0` (idle) or `1 + slot_index` (reading that slot).
//! A reader:
//!
//! 1. loads the active index `i` (`SeqCst`),
//! 2. publishes its pin `1 + i` (`SeqCst`),
//! 3. re-loads the active index (`SeqCst`); if it still equals `i` the pin
//!    is *validated* and the reader clones from slot `i`, else it retracts
//!    the pin and retries.
//!
//! A writer (serialized by a mutex shared with cold readers):
//!
//! 1. picks the inactive slot `t`,
//! 2. scans every pin (`SeqCst`), spinning until none reads `1 + t`,
//! 3. overwrites slot `t`, then flips the active index to `t` (`SeqCst`).
//!
//! Why this cannot tear: all the operations above are `SeqCst`, so they
//! have one total order. Suppose a reader ends up cloning from slot `t`
//! while the writer overwrites it. The reader's validating re-load returned
//! `t` as active, so in the total order that re-load precedes the flip that
//! made `t` inactive — which itself precedes the current writer's pin scan
//! (slot `t` is only a write target *after* that flip). The reader's pin
//! store precedes its re-load, hence precedes the scan, and a pin is only
//! cleared after the clone completes — so the scan must have observed the
//! pin `1 + t` and waited. Contradiction. (This is the classic hazard-
//! pointer argument; the store→load fence `SeqCst` provides on both sides
//! is exactly what `Acquire`/`Release` alone would not.)
//!
//! Quiescence is bounded because a pin is held only across one `T::clone`
//! (an `Arc` refcount bump for the registry) with no panic point inside.
//!
//! This module is one of the three audited `unsafe` islands in the crate
//! (with [`cell`](crate::cell) and [`ring`](crate::ring)); every `unsafe`
//! block carries a `// SAFETY:` comment checked by `tests/unsafe_audit.rs`
//! and the CI grep.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cache-line-isolated reader pin. `0` = idle, `1 + idx` = reading
/// slot `idx`.
#[repr(align(128))]
#[derive(Debug)]
struct PinSlot(AtomicUsize);

/// A double-buffered value with epoch-pinned lock-free reads.
///
/// Registered readers (up to the `max_readers` given at construction) read
/// through [`read`](Self::read) without ever taking a lock. Unregistered
/// ("cold") callers use [`read_cold`](Self::read_cold), which shares the
/// writer mutex — correct for control-plane paths that run a handful of
/// times per second.
pub(crate) struct RcuCell<T> {
    slots: [UnsafeCell<T>; 2],
    active: AtomicUsize,
    pins: Box<[PinSlot]>,
    claimed: AtomicUsize,
    /// Serializes writers with each other and with cold readers.
    writer: Mutex<()>,
}

// SAFETY: slot contents are only mutated by `write`, which holds the writer
// mutex and has observed quiescence (no pin on the target slot), and only
// read through validated pins or under that same mutex — so sharing
// `&RcuCell<T>` across threads is sound whenever `T` itself is `Send`
// (values move between threads via the slots) and `Sync` (validated readers
// clone through `&T` concurrently with each other).
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

/// A claimed reader pin; index into the cell's pin array. Pins are claimed
/// for the life of the cell (shards never unregister).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RcuReader(usize);

impl<T: Clone> RcuCell<T> {
    /// A cell serving `initial`, with room for `max_readers` registered
    /// lock-free readers.
    pub(crate) fn new(initial: T, max_readers: usize) -> Self {
        RcuCell {
            slots: [UnsafeCell::new(initial.clone()), UnsafeCell::new(initial)],
            active: AtomicUsize::new(0),
            pins: (0..max_readers.max(1))
                .map(|_| PinSlot(AtomicUsize::new(0)))
                .collect(),
            claimed: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Claims a reader pin, or `None` when all `max_readers` pins are
    /// taken (such callers fall back to [`read_cold`](Self::read_cold)).
    pub(crate) fn reader(&self) -> Option<RcuReader> {
        let id = self.claimed.fetch_add(1, Ordering::AcqRel);
        if id < self.pins.len() {
            Some(RcuReader(id))
        } else {
            None
        }
    }

    /// Lock-free read: one atomic load + epoch pin, then a clone of the
    /// active value. See the module docs for the validation protocol.
    pub(crate) fn read(&self, reader: RcuReader) -> T {
        let pin = &self.pins[reader.0].0;
        let idx = loop {
            let idx = self.active.load(Ordering::SeqCst);
            pin.store(1 + idx, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == idx {
                break idx;
            }
            // A flip landed between the load and the pin: retract, retry.
            pin.store(0, Ordering::SeqCst);
            std::hint::spin_loop();
        };
        // SAFETY: the pin `1 + idx` was published and then validated
        // against the active index, so per the module-docs argument any
        // writer targeting slot `idx` is spinning in its quiescence scan
        // until this pin clears; the slot cannot be mutated during the
        // clone. Concurrent validated readers only take `&T`.
        let value = unsafe { (*self.slots[idx].get()).clone() };
        pin.store(0, Ordering::Release);
        value
    }

    /// Mutex-sharing read for unregistered callers: excludes writers for
    /// the duration of one clone of the active value.
    pub(crate) fn read_cold(&self) -> T {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let idx = self.active.load(Ordering::SeqCst);
        // SAFETY: the writer mutex is held, so no `write` is running; the
        // active slot is only ever mutated by a writer (which would hold
        // this same mutex), so the clone cannot race a mutation.
        unsafe { (*self.slots[idx].get()).clone() }
    }

    /// Publishes `value`: overwrites the inactive slot once it is quiescent,
    /// then flips the active index. In-flight pinned readers finish on the
    /// old value; nobody blocks behind the swap.
    pub(crate) fn write(&self, value: T) {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let target = 1 - self.active.load(Ordering::SeqCst);
        // Quiescence: wait out every reader pinned to the target slot.
        // Each pin spans one clone, so this wait is bounded and short.
        for pin in self.pins.iter() {
            let mut spins = 0u32;
            while pin.0.load(Ordering::SeqCst) == 1 + target {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // SAFETY: the writer mutex excludes other writers and cold readers;
        // the quiescence scan above proved no pin targets this slot, and
        // per the module-docs argument no *future* reader can validate a
        // pin on it before the flip below makes it active again.
        unsafe {
            *self.slots[target].get() = value;
        }
        self.active.store(target, Ordering::SeqCst);
    }
}

impl<T: std::fmt::Debug + Clone> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuCell")
            .field("active", &self.active.load(Ordering::SeqCst))
            .field("value", &self.read_cold())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reads_see_the_latest_write() {
        let cell = RcuCell::new(0u64, 4);
        let r = cell.reader().unwrap();
        assert_eq!(cell.read(r), 0);
        cell.write(7);
        assert_eq!(cell.read(r), 7);
        assert_eq!(cell.read_cold(), 7);
        cell.write(9);
        assert_eq!(cell.read(r), 9);
    }

    #[test]
    fn reader_pool_exhaustion_falls_back_cleanly() {
        let cell = RcuCell::new(1u32, 2);
        assert!(cell.reader().is_some());
        assert!(cell.reader().is_some());
        assert!(cell.reader().is_none());
        assert_eq!(cell.read_cold(), 1);
    }

    #[test]
    fn concurrent_reads_across_writes_never_tear() {
        // Values are (n, n): a torn read would observe a mixed pair.
        let cell = Arc::new(RcuCell::new(Arc::new((0u64, 0u64)), 8));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let r = cell.reader().unwrap();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.read(r);
                        assert_eq!(v.0, v.1, "torn read");
                        assert!(v.0 >= last, "read went backwards");
                        last = v.0;
                    }
                })
            })
            .collect();
        for n in 1..200u64 {
            cell.write(Arc::new((n, n)));
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            t.join().unwrap();
        }
        let v = cell.read_cold();
        assert_eq!((v.0, v.1), (199, 199));
    }
}

//! The sharded decision engine — the hot path.
//!
//! Each shard owns a deterministic RNG forked from the master seed by label
//! and index ([`harvest_sim_net::rng::fork_rng_indexed`]), so shard `i`'s
//! stream depends only on `(seed, i)`: adding shards never perturbs the
//! decisions existing shards make, and a same-seed replay is bit-identical.
//!
//! A decision wraps the incumbent policy in an ε exploration floor and
//! stamps the *exact* propensity of the sampled action — the single
//! discipline the whole harvesting methodology rests on (paper §2): logged
//! randomness is only reusable if its probabilities are known.

use std::sync::Arc;

use harvest_core::{Context, SimpleContext};
use harvest_log::record::{BatchDecision, BatchRecord, DecisionRecord, LogRecord};
use harvest_sim_net::rng::{fork_rng_indexed, rng_from_state, rng_state, DetRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::batch::DecisionBatch;
use crate::cell::{ShardCell, ShardCellGuard};
use crate::error::ServeError;
use crate::logger::DecisionLogger;
use crate::metrics::ServeMetrics;
use crate::registry::{CachedPolicy, PolicyRegistry, ServePolicy};

/// Engine configuration.
///
/// Construct via [`EngineConfig::builder`] (validating) or start from
/// [`EngineConfig::default`] and set fields; the struct is
/// `#[non_exhaustive]`, so literal construction outside this crate no
/// longer compiles — new knobs can ship without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Number of decision shards. Each gets an independent RNG stream and
    /// its own affine ownership cell, so disjoint shards never contend —
    /// and same-shard calls from the shard's own worker are uncontended by
    /// construction.
    pub shards: usize,
    /// The exploration floor ε: every action keeps propensity ≥ ε/K.
    pub epsilon: f64,
    /// Master seed; per-shard streams are forked from it by label.
    pub master_seed: u64,
    /// Component name stamped into decision records.
    pub component: String,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 1,
            epsilon: 0.1,
            master_seed: 0,
            component: "harvest-serve".to_string(),
        }
    }
}

impl EngineConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder(EngineConfig::default())
    }
}

/// Builder for [`EngineConfig`]; [`build`](EngineConfigBuilder::build)
/// validates what [`DecisionEngine::new`] would otherwise panic on.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder(EngineConfig);

impl EngineConfigBuilder {
    /// Number of decision shards (must stay ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.0.shards = shards;
        self
    }

    /// The exploration floor ε (must stay in `(0, 1]`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.0.epsilon = epsilon;
        self
    }

    /// Master seed for the per-shard RNG streams.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.0.master_seed = seed;
        self
    }

    /// Component name stamped into decision records.
    pub fn component(mut self, component: impl Into<String>) -> Self {
        self.0.component = component.into();
        self
    }

    /// Validates and returns the config: `shards ≥ 1` and ε in `(0, 1]`
    /// (a zero floor would log unharvestable propensity-0 decisions).
    pub fn build(self) -> Result<EngineConfig, ServeError> {
        if self.0.shards == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "engine needs at least one shard".to_string(),
            });
        }
        if !(self.0.epsilon > 0.0 && self.0.epsilon <= 1.0) {
            return Err(ServeError::InvalidConfig {
                reason: format!("epsilon must be in (0, 1], got {}", self.0.epsilon),
            });
        }
        Ok(self.0)
    }
}

/// One served decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Unique id correlating this decision with its delayed reward.
    pub request_id: u64,
    /// The shard that served it.
    pub shard: usize,
    /// The chosen action.
    pub action: usize,
    /// The exact probability with which `action` was chosen.
    pub propensity: f64,
    /// Whether the exploration branch fired.
    pub explored: bool,
    /// The policy generation that made the call.
    pub generation: u64,
    /// Whether this decision was served by the safe fallback policy (the
    /// circuit breaker was open). Degraded decisions still carry exact
    /// propensities and are logged normally.
    pub degraded: bool,
}

/// Bits reserved for the per-shard sequence number inside a request id.
/// Ids are `shard << 40 | seq`: unique across shards, deterministic, and
/// good for a trillion decisions per shard. Public so front-ends can route
/// a reward back to the shard that made its decision (`id >> SEQ_BITS`).
pub const SEQ_BITS: u32 = 40;

struct Shard {
    rng: DetRng,
    seq: u64,
    cache: CachedPolicy,
    /// Logical stamp of this shard's previous decision, for the
    /// inter-arrival histogram. Per-shard and caller-stamped, so the
    /// gap sequence is deterministic under same-seed replay.
    last_ns: Option<u64>,
}

/// Durable per-shard engine state: the RNG stream position, the next
/// sequence number, and the previous decision's logical stamp. Everything a
/// warm restart needs to continue a shard's decision stream without reusing
/// a request id or replaying a random draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardState {
    /// The RNG's raw xoshiro256++ state words.
    pub rng: [u64; 4],
    /// The next decision's sequence number on this shard.
    pub seq: u64,
    /// Logical stamp of the shard's most recent decision.
    pub last_ns: Option<u64>,
}

/// The ε-greedy draw every decision path shares — single, batch, and
/// warm-restart replay. A policy with no greedy action costs exactly one
/// draw (`gen_range`); a greedy policy costs one (`gen_bool`, exploit) or
/// two (`gen_bool` + `gen_range`, explore). Replay leans on this being the
/// *only* way the engine touches a shard RNG: re-running the draw for each
/// logged decision advances the restored stream to exactly where the
/// previous incarnation left it.
fn sample_epsilon_greedy(
    rng: &mut DetRng,
    policy: &ServePolicy,
    ctx: &SimpleContext,
    epsilon: f64,
) -> (usize, f64, bool) {
    let k = ctx.num_actions();
    match policy.greedy_action(ctx) {
        None => (rng.gen_range(0..k), 1.0 / k as f64, true),
        Some(greedy) => {
            let floor = epsilon / k as f64;
            let explored = rng.gen_bool(epsilon);
            let action = if explored {
                rng.gen_range(0..k)
            } else {
                greedy
            };
            let p = if action == greedy {
                1.0 - epsilon + floor
            } else {
                floor
            };
            (action, p, explored)
        }
    }
}

/// The sharded decision engine. Each shard's mutable state lives in a
/// shard-affine [`ShardCell`]: the intended one-worker-per-shard deployment
/// acquires it with a single uncontended atomic swap (no mutex, no futex),
/// and callers that violate affinity fall back to a striped spin path that
/// keeps `decide(shard, ...)` exactly as correct as the old per-shard
/// mutex. Different shards share nothing but atomics.
pub struct DecisionEngine {
    shards: Vec<ShardCell<Shard>>,
    registry: Arc<PolicyRegistry>,
    epsilon: f64,
    component: String,
    metrics: Arc<ServeMetrics>,
    logger: DecisionLogger,
}

impl DecisionEngine {
    /// Builds the engine over an existing registry, metrics, and log queue.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `epsilon` is outside `(0, 1]` — a zero
    /// floor would log unharvestable (propensity-0) decisions.
    pub fn new(
        cfg: &EngineConfig,
        registry: Arc<PolicyRegistry>,
        metrics: Arc<ServeMetrics>,
        logger: DecisionLogger,
    ) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.epsilon > 0.0 && cfg.epsilon <= 1.0,
            "epsilon must be in (0, 1], got {}",
            cfg.epsilon
        );
        let shards = (0..cfg.shards)
            .map(|i| {
                ShardCell::new(Shard {
                    rng: fork_rng_indexed(cfg.master_seed, "serve-shard", i as u64),
                    seq: 0,
                    cache: CachedPolicy::new(&registry),
                    last_ns: None,
                })
            })
            .collect();
        DecisionEngine {
            shards,
            registry,
            epsilon: cfg.epsilon,
            component: cfg.component.clone(),
            metrics,
            logger,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Acquires shard `shard`'s cell — uncontended under shard affinity —
    /// and services any pending chaos wedge: a wedged shard is recovered
    /// and counted here, at its next acquisition, exactly where the old
    /// mutex recovered from poisoning. The caller must have bounds-checked
    /// `shard`.
    fn lock_shard(&self, shard: usize) -> ShardCellGuard<'_, Shard> {
        let cell = &self.shards[shard];
        let guard = cell.lock();
        if cell.take_wedge() {
            self.metrics.record_shard_wedge();
        }
        guard
    }

    /// Snapshots every shard's durable state (RNG position, next sequence
    /// number, last decision stamp) for the control-plane checkpoint. Call
    /// from a quiescent point — between waves, not mid-decision — so the
    /// snapshot is a consistent cut of all shards.
    pub fn shard_states(&self) -> Vec<ShardState> {
        (0..self.shards.len())
            .map(|i| {
                let guard = self.lock_shard(i);
                ShardState {
                    rng: rng_state(&guard.rng),
                    seq: guard.seq,
                    last_ns: guard.last_ns,
                }
            })
            .collect()
    }

    /// Restores every shard's durable state from a checkpoint. The shard
    /// count must match the checkpointed one: shard `i`'s stream is defined
    /// by `(seed, i)`, so resuming under a different topology would splice
    /// streams together incoherently.
    pub fn restore_shard_states(&self, states: &[ShardState]) -> Result<(), ServeError> {
        if states.len() != self.shards.len() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "checkpoint has {} shards, engine has {}",
                    states.len(),
                    self.shards.len()
                ),
            });
        }
        for (i, state) in states.iter().enumerate() {
            let mut guard = self.lock_shard(i);
            guard.rng = rng_from_state(state.rng);
            guard.seq = state.seq;
            guard.last_ns = state.last_ns;
        }
        Ok(())
    }

    /// Warm-restart replay of one logged decision: re-runs the exact
    /// ε-greedy draw the previous incarnation made for this context,
    /// advancing the shard's RNG and sequence counter — but touching no
    /// tracer and no log queue; the record already exists in the durable
    /// log. Returns the replayed `(request_id, action, explored)` so the
    /// caller can detect divergence from the logged record and re-count the
    /// decision into the restored ledger.
    pub(crate) fn replay_decision(
        &self,
        shard: usize,
        now_ns: u64,
        ctx: &SimpleContext,
    ) -> Result<(u64, usize, bool), ServeError> {
        if shard >= self.shards.len() {
            return Err(ServeError::ShardOutOfRange {
                shard,
                shards: self.shards.len(),
            });
        }
        let mut guard = self.lock_shard(shard);
        let version = Arc::clone(guard.cache.get(&self.registry));
        let (action, _propensity, explored) =
            sample_epsilon_greedy(&mut guard.rng, &version.policy, ctx, self.epsilon);
        let request_id = ((shard as u64) << SEQ_BITS) | guard.seq;
        guard.seq += 1;
        guard.last_ns = Some(now_ns);
        Ok((request_id, action, explored))
    }

    /// Serves one decision on `shard` at logical time `now_ns` under the
    /// incumbent policy. See [`DecisionEngine::decide_with`].
    pub fn decide(
        &self,
        shard: usize,
        now_ns: u64,
        ctx: &SimpleContext,
    ) -> Result<Decision, ServeError> {
        self.decide_with(shard, now_ns, ctx, None)
    }

    /// Serves one decision on `shard` at logical time `now_ns`.
    ///
    /// Samples ε-greedy around the serving policy — the incumbent, or
    /// `fallback` when the circuit breaker has forced degraded mode. The
    /// greedy action keeps probability `1 − ε + ε/K`, every other action
    /// `ε/K` (a policy with no greedy action serves `1/K` each). The
    /// decision record — context, action, exact propensity — goes to the
    /// log queue before this returns, degraded or not: even safe-arm
    /// traffic stays harvestable.
    ///
    /// A wedged shard (the chaos fault that replaced lock poisoning — see
    /// [`poison_shard`](DecisionEngine::poison_shard)) is recovered and
    /// counted at acquisition, never propagated: the shard's RNG, sequence
    /// counter, and policy cache are each valid at every instant.
    pub fn decide_with(
        &self,
        shard: usize,
        now_ns: u64,
        ctx: &SimpleContext,
        fallback: Option<&ServePolicy>,
    ) -> Result<Decision, ServeError> {
        if shard >= self.shards.len() {
            return Err(ServeError::ShardOutOfRange {
                shard,
                shards: self.shards.len(),
            });
        }
        let mut guard = self.lock_shard(shard);
        let version = Arc::clone(guard.cache.get(&self.registry));
        let degraded = fallback.is_some();
        let policy = fallback.unwrap_or(&version.policy);
        let k = ctx.num_actions();
        let (action, propensity, explored) =
            sample_epsilon_greedy(&mut guard.rng, policy, ctx, self.epsilon);
        let request_id = ((shard as u64) << SEQ_BITS) | guard.seq;
        guard.seq += 1;
        let gap_ns = guard.last_ns.map(|prev| now_ns.saturating_sub(prev));
        guard.last_ns = Some(now_ns);
        drop(guard);

        self.metrics.record_decision(now_ns, explored);
        if degraded {
            self.metrics.record_degraded();
        }
        // Trace *before* offering the record to the queue: the writer
        // thread must never terminate a trace that does not exist yet.
        if let Some(obs) = self.metrics.obs() {
            obs.tracer().decided(
                request_id,
                harvest_obs::Decided {
                    ns: now_ns,
                    shard: shard as u32,
                    action,
                    propensity,
                    explored,
                    degraded,
                    generation: version.generation,
                    enqueued: true,
                },
            );
            if let Some(gap) = gap_ns {
                obs.record_interarrival(shard, gap);
            }
        }
        let action_features: Option<Vec<Vec<f64>>> = if ctx.action_feature_dim() > 0 {
            Some((0..k).map(|a| ctx.action_features(a).to_vec()).collect())
        } else {
            None
        };
        let queued = self.logger.log(LogRecord::Decision(DecisionRecord {
            request_id,
            timestamp_ns: now_ns,
            component: self.component.clone(),
            shared_features: ctx.shared_features().to_vec(),
            action_features,
            num_actions: k,
            action,
            propensity: Some(propensity),
            reward: None,
        }));
        if !queued {
            if let Some(obs) = self.metrics.obs() {
                obs.tracer().shed(request_id);
            }
        }
        Ok(Decision {
            request_id,
            shard,
            action,
            propensity,
            explored,
            generation: version.generation,
            degraded,
        })
    }

    /// Serves a batch of decisions on `shard`, all stamped at logical time
    /// `now_ns`, under the incumbent policy. Decisions land in `out` (which
    /// is cleared first), in context order.
    ///
    /// The batch path is the amortized twin of calling
    /// [`decide`](DecisionEngine::decide) once per context: the shard lock
    /// is taken once, the sequence range is reserved once, and the whole
    /// batch goes to the log queue as a single
    /// [`LogRecord::Batch`] frame — but the per-decision policy lookups and
    /// RNG draws replicate the single-call sequence *exactly*, so a
    /// same-seed batch run and single-call run produce byte-identical
    /// recovered decision streams (segment recovery flattens batch frames).
    pub fn decide_batch(
        &self,
        shard: usize,
        now_ns: u64,
        contexts: &[SimpleContext],
        out: &mut DecisionBatch,
    ) -> Result<(), ServeError> {
        out.reset();
        out.degraded.resize(contexts.len(), false);
        self.decide_batch_with(shard, now_ns, contexts, None, out)
    }

    /// Batch twin of [`decide_with`](DecisionEngine::decide_with), with a
    /// *per-decision* degraded mask in `out.degraded` (filled by the
    /// service from the circuit breaker): slot `i` serves `fallback` when
    /// `out.degraded[i]` is set. The mask must be per-decision because the
    /// breaker can open or re-arm mid-batch, and which policy serves a
    /// slot changes the RNG draw sequence for everything after it.
    pub(crate) fn decide_batch_with(
        &self,
        shard: usize,
        now_ns: u64,
        contexts: &[SimpleContext],
        fallback: Option<&ServePolicy>,
        out: &mut DecisionBatch,
    ) -> Result<(), ServeError> {
        debug_assert_eq!(out.degraded.len(), contexts.len());
        out.decisions.clear();
        out.entries.clear();
        if shard >= self.shards.len() {
            return Err(ServeError::ShardOutOfRange {
                shard,
                shards: self.shards.len(),
            });
        }
        if contexts.is_empty() {
            return Ok(());
        }
        out.decisions.reserve(contexts.len());
        out.entries.reserve(contexts.len());

        let mut guard = self.lock_shard(shard);
        // One reservation for the whole batch: the contiguous id range the
        // same number of single calls would have drawn one by one.
        let first_seq = guard.seq;
        guard.seq += contexts.len() as u64;
        let first_gap = guard.last_ns.map(|prev| now_ns.saturating_sub(prev));
        guard.last_ns = Some(now_ns);
        // Disjoint field borrows: the loop needs the policy cache and the
        // RNG at once, and splitting them here lets each decision borrow
        // the cached `Arc<PolicyVersion>` instead of cloning it — one less
        // pair of refcount updates per decision on the hot path.
        let Shard { rng, cache, .. } = &mut *guard;
        for (i, ctx) in contexts.iter().enumerate() {
            // Per-decision policy resolution: a promotion that lands
            // mid-batch takes effect between two decisions, exactly as it
            // would between two single calls.
            let version = cache.get(&self.registry);
            let degraded = fallback.is_some() && out.degraded[i];
            let policy = if degraded {
                fallback.unwrap_or(&version.policy)
            } else {
                &version.policy
            };
            let (action, propensity, explored) =
                sample_epsilon_greedy(rng, policy, ctx, self.epsilon);
            out.decisions.push(Decision {
                request_id: ((shard as u64) << SEQ_BITS) | (first_seq + i as u64),
                shard,
                action,
                propensity,
                explored,
                generation: version.generation,
                degraded,
            });
        }
        drop(guard);

        let n = out.decisions.len() as u64;
        let explorations = out.decisions.iter().filter(|d| d.explored).count() as u64;
        let degraded_n = out.decisions.iter().filter(|d| d.degraded).count() as u64;
        self.metrics.record_decisions(now_ns, n, explorations);
        self.metrics.record_degraded_n(degraded_n);
        // Trace *before* offering the batch to the queue: the writer
        // thread must never terminate a trace that does not exist yet.
        if let Some(obs) = self.metrics.obs() {
            for d in &out.decisions {
                obs.tracer().decided(
                    d.request_id,
                    harvest_obs::Decided {
                        ns: now_ns,
                        shard: shard as u32,
                        action: d.action,
                        propensity: d.propensity,
                        explored: d.explored,
                        degraded: d.degraded,
                        generation: d.generation,
                        enqueued: true,
                    },
                );
            }
            // One batch shares one logical instant: the gap to the previous
            // decision, then n − 1 zero gaps — the histogram n single calls
            // at the same stamp would have produced.
            if let Some(gap) = first_gap {
                obs.record_interarrival(shard, gap);
            }
            obs.record_interarrival_n(shard, 0, n - 1);
        }
        // Admission control before construction: reserve the frame's
        // record-weighted queue capacity first, and only build the log
        // entries — feature clones, record allocation — for an admitted
        // frame. A refused batch costs one failed reservation instead of n
        // per-decision record builds; single calls cannot make this trade,
        // because each must construct its record before offering it.
        let queued = if self.logger.reserve(n) {
            for (d, ctx) in out.decisions.iter().zip(contexts) {
                let k = ctx.num_actions();
                let action_features: Option<Vec<Vec<f64>>> = if ctx.action_feature_dim() > 0 {
                    Some((0..k).map(|a| ctx.action_features(a).to_vec()).collect())
                } else {
                    None
                };
                out.entries.push(BatchDecision {
                    request_id: d.request_id,
                    timestamp_ns: now_ns,
                    shared_features: ctx.shared_features().to_vec(),
                    action_features,
                    num_actions: k,
                    action: d.action,
                    propensity: Some(d.propensity),
                    reward: None,
                });
            }
            self.logger.send_reserved(LogRecord::Batch(BatchRecord {
                component: self.component.clone(),
                decisions: std::mem::take(&mut out.entries),
            }))
        } else {
            self.logger.refuse(n);
            false
        };
        if !queued {
            // The frame was refused whole: every decision in it is shed.
            if let Some(obs) = self.metrics.obs() {
                for d in &out.decisions {
                    obs.tracer().shed(d.request_id);
                }
            }
        }
        Ok(())
    }

    /// Chaos hook: wedges `shard`'s cell — the lock-free analogue of the
    /// poisoned mutex this fault used to inject (there is no mutex left to
    /// poison). The next acquisition of the shard — the next
    /// [`decide`](DecisionEngine::decide), batch, replay, or snapshot —
    /// clears the wedge and counts the recovery (`shard_wedges`, aliased
    /// into the legacy `lock_recoveries` counter); the shard's RNG,
    /// sequence counter, and policy cache are untouched, so the decision
    /// stream continues bit-identically. Returns `false` for an unknown
    /// shard.
    pub fn poison_shard(&self, shard: usize) -> bool {
        let Some(cell) = self.shards.get(shard) else {
            return false;
        };
        cell.wedge();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::LoggerConfig;
    use crate::supervisor::{spawn_supervised_writer, SupervisorConfig, WriterSupervisorHandle};
    use harvest_core::scorer::LinearScorer;
    use harvest_log::segment::MemorySegments;

    fn engine(
        shards: usize,
        seed: u64,
    ) -> (DecisionEngine, WriterSupervisorHandle<MemorySegments>) {
        engine_with(shards, seed, ServePolicy::Uniform)
    }

    fn engine_with(
        shards: usize,
        seed: u64,
        policy: ServePolicy,
    ) -> (DecisionEngine, WriterSupervisorHandle<MemorySegments>) {
        let metrics = Arc::new(ServeMetrics::new());
        let registry = Arc::new(PolicyRegistry::with_metrics(
            policy,
            "bootstrap",
            Arc::clone(&metrics),
        ));
        let (logger, writer) = spawn_supervised_writer(
            LoggerConfig::default(),
            SupervisorConfig::default(),
            Arc::clone(&metrics),
            None,
            MemorySegments::new(),
        );
        let cfg = EngineConfig {
            shards,
            epsilon: 0.2,
            master_seed: seed,
            component: "test".to_string(),
        };
        (DecisionEngine::new(&cfg, registry, metrics, logger), writer)
    }

    #[test]
    fn same_seed_same_decisions() {
        let ctx = SimpleContext::new(vec![0.5], 4);
        let (a, wa) = engine(2, 42);
        let (b, wb) = engine(2, 42);
        for i in 0..200 {
            assert_eq!(
                a.decide(i % 2, i as u64, &ctx).unwrap(),
                b.decide(i % 2, i as u64, &ctx).unwrap()
            );
        }
        drop((a, b));
        wa.finish().unwrap();
        wb.finish().unwrap();
    }

    #[test]
    fn adding_shards_preserves_existing_streams() {
        let ctx = SimpleContext::new(vec![0.5], 4);
        let (small, ws) = engine(1, 7);
        let (big, wb) = engine(8, 7);
        // Shard 0's stream is identical whether the engine has 1 or 8 shards.
        for i in 0..100 {
            assert_eq!(
                small.decide(0, i, &ctx).unwrap(),
                big.decide(0, i, &ctx).unwrap()
            );
        }
        drop((small, big));
        ws.finish().unwrap();
        wb.finish().unwrap();
    }

    #[test]
    fn batched_decisions_match_single_calls_bit_for_bit() {
        let ctx = SimpleContext::new(vec![0.5], 4);
        let (single, ws) = engine(1, 99);
        let (batched, wb) = engine(1, 99);
        let contexts: Vec<SimpleContext> = (0..16).map(|_| ctx.clone()).collect();
        let mut out = DecisionBatch::with_capacity(16);
        for step in 0..10u64 {
            let now = step * 1000;
            let singles: Vec<Decision> = (0..16)
                .map(|_| single.decide(0, now, &ctx).unwrap())
                .collect();
            batched.decide_batch(0, now, &contexts, &mut out).unwrap();
            assert_eq!(out.decisions(), &singles[..], "step {step}");
        }
        drop((single, batched));
        // Recovery flattens batch frames: the two logs replay identically.
        let (sr, _) = ws.finish().unwrap().recover();
        let (br, _) = wb.finish().unwrap().recover();
        assert_eq!(sr, br);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (e, w) = engine(1, 5);
        let mut out = DecisionBatch::new();
        e.decide_batch(0, 0, &[], &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(e.metrics.snapshot().decisions, 0);
        assert_eq!(e.metrics.snapshot().log_enqueued, 0);
        drop(e);
        let (records, _) = w.finish().unwrap().recover();
        assert!(records.is_empty());
    }

    #[test]
    fn request_ids_are_unique_across_shards() {
        let ctx = SimpleContext::contextless(3);
        let (e, w) = engine(4, 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..400 {
            let d = e.decide(i % 4, i as u64, &ctx).unwrap();
            assert!(seen.insert(d.request_id), "duplicate id {}", d.request_id);
        }
        drop(e);
        w.finish().unwrap();
    }

    #[test]
    fn out_of_range_shard_is_an_error_not_a_panic() {
        let ctx = SimpleContext::contextless(3);
        let (e, w) = engine(2, 1);
        match e.decide(5, 0, &ctx) {
            Err(ServeError::ShardOutOfRange {
                shard: 5,
                shards: 2,
            }) => {}
            other => panic!("expected ShardOutOfRange, got {other:?}"),
        }
        drop(e);
        w.finish().unwrap();
    }

    #[test]
    fn poisoned_shard_recovers_and_the_stream_continues() {
        let ctx = SimpleContext::new(vec![0.5], 4);
        let (clean, wc) = engine(1, 23);
        let (hurt, wh) = engine(1, 23);
        for i in 0..50 {
            assert_eq!(
                clean.decide(0, i, &ctx).unwrap(),
                hurt.decide(0, i, &ctx).unwrap()
            );
        }
        assert!(hurt.poison_shard(0));
        assert!(!hurt.poison_shard(9));
        // Decisions after recovery are identical to the unpoisoned engine:
        // the shard state (RNG, seq, cache) survives the poison intact.
        for i in 50..100 {
            assert_eq!(
                clean.decide(0, i, &ctx).unwrap(),
                hurt.decide(0, i, &ctx).unwrap()
            );
        }
        assert!(hurt.metrics.snapshot().lock_recoveries >= 1);
        assert_eq!(clean.metrics.snapshot().lock_recoveries, 0);
        drop((clean, hurt));
        wc.finish().unwrap();
        wh.finish().unwrap();
    }

    #[test]
    fn fallback_policy_overrides_the_incumbent_and_marks_degraded() {
        let scorer = LinearScorer::PerAction {
            weights: vec![vec![0.0], vec![1.0], vec![0.0], vec![0.0]],
        };
        let (e, w) = engine_with(1, 11, ServePolicy::Greedy(scorer));
        let ctx = SimpleContext::contextless(4);
        let safe = ServePolicy::Uniform;
        for i in 0..200 {
            let d = e.decide_with(0, i, &ctx, Some(&safe)).unwrap();
            assert!(d.degraded);
            // Uniform fallback: exact propensity 1/K, never the greedy mix.
            assert!((d.propensity - 0.25).abs() < 1e-12);
        }
        let s = e.metrics.snapshot();
        assert_eq!(s.degraded_decisions, 200);
        drop(e);
        let store = w.finish().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.recovered, 200);
        assert_eq!(records.len(), 200);
    }

    #[test]
    fn propensities_match_the_served_distribution() {
        let scorer = LinearScorer::PerAction {
            weights: vec![vec![0.0], vec![1.0], vec![0.0], vec![0.0]],
        };
        let (e, writer) = engine_with(1, 3, ServePolicy::Greedy(scorer));
        let ctx = SimpleContext::contextless(4);
        let mut saw_explore = false;
        for i in 0..500 {
            let d = e.decide(0, i, &ctx).unwrap();
            assert!(!d.degraded);
            if d.action == 1 {
                assert!((d.propensity - (0.8 + 0.05)).abs() < 1e-12);
            } else {
                assert!((d.propensity - 0.05).abs() < 1e-12);
                saw_explore = true;
            }
        }
        assert!(saw_explore, "exploration floor never fired in 500 draws");
        let s = e.metrics.snapshot();
        assert_eq!(s.decisions, 500);
        // ε = 0.2: the exploration branch fires ~100 times in 500.
        assert!(
            s.explorations > 50 && s.explorations < 200,
            "{}",
            s.explorations
        );
        drop(e);
        let store = writer.finish().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.quarantined_records, 0);
        assert_eq!(records.len(), 500);
    }
}

//! Service health counters.
//!
//! Every counter is a relaxed atomic: the hot decision path pays one
//! `fetch_add` per event and never takes a lock. [`ServeMetrics::snapshot`]
//! reads them all at one instant into a plain struct with the derived rates
//! a dashboard would plot (exploration rate, join hit-rate, log backlog,
//! decision throughput).
//!
//! Time is *logical*: callers stamp decisions with their own monotonic
//! nanosecond clock (the simulators use [`harvest_sim_net::time::SimTime`]),
//! so throughput is decisions per logical second and the whole service stays
//! deterministic — no wall-clock reads anywhere in the decision path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::obs::ServeObs;

const RELAXED: Ordering = Ordering::Relaxed;

/// Shared atomic counters updated by the engine, logger, and joiner.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    decisions: AtomicU64,
    explorations: AtomicU64,
    log_enqueued: AtomicU64,
    log_written: AtomicU64,
    log_dropped: AtomicU64,
    join_hits: AtomicU64,
    join_duplicates: AtomicU64,
    join_late: AtomicU64,
    join_unknown: AtomicU64,
    timed_out_decisions: AtomicU64,
    swaps: AtomicU64,
    first_decision_ns: AtomicU64,
    last_decision_ns: AtomicU64,
    // Robustness counters: every fault the chaos harness can inject is
    // visible here, so "no silent data loss" is checkable from a snapshot.
    log_quarantined: AtomicU64,
    lock_recoveries: AtomicU64,
    /// Wedged shard cells recovered at acquisition — the lock-free
    /// successor of `lock_recoveries` (the mutexes this fault used to
    /// poison are gone). Every wedge recovery also bumps
    /// `lock_recoveries`, so the breaker's fault signal and existing
    /// dashboards keep working unchanged.
    shard_wedges: AtomicU64,
    writer_restarts: AtomicU64,
    trainer_crashes: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_rearms: AtomicU64,
    degraded_decisions: AtomicU64,
    rewards_lost: AtomicU64,
    /// Requests refused by an admission layer *in front of* the service —
    /// wire-level rate limits, queue budgets, and deadline sheds. These
    /// never reach a shard or the log pipeline, so they are ledgered
    /// separately from `log_dropped`: the conservation law for the log
    /// stays `enqueued == written + dropped + quarantined`, and this
    /// counter extends it outward to cover work turned away at the door.
    admission_shed: AtomicU64,
    /// Watchdog alerts wired into the breaker's fault signal: each firing
    /// of a scope watchdog configured with `feed_breaker` bumps this once,
    /// so a sustained SLO burn can trip the breaker even when the raw
    /// fault counters alone would not.
    watchdog_faults: AtomicU64,
    // Durability counters: the warm-restart path is as observable as the
    // fault path — every checkpoint written or rejected, every record
    // replayed, every restart is counted.
    checkpoints_written: AtomicU64,
    checkpoints_discarded: AtomicU64,
    last_checkpoint_ns: AtomicU64,
    recovered_records: AtomicU64,
    replayed_joins: AtomicU64,
    segments_compacted: AtomicU64,
    restart_count: AtomicU64,
    /// Optional observability bundle (tracer + histograms). Riding inside
    /// the metrics handle means every component that already holds
    /// `Arc<ServeMetrics>` can emit trace events without new plumbing.
    obs: Option<Arc<ServeObs>>,
}

impl ServeMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServeMetrics {
            first_decision_ns: AtomicU64::new(u64::MAX),
            last_checkpoint_ns: AtomicU64::new(u64::MAX),
            ..ServeMetrics::default()
        }
    }

    /// Fresh counters carrying an observability bundle.
    pub fn with_obs(obs: Arc<ServeObs>) -> Self {
        ServeMetrics {
            obs: Some(obs),
            ..ServeMetrics::new()
        }
    }

    /// The observability bundle, if this service was built with one.
    pub fn obs(&self) -> Option<&Arc<ServeObs>> {
        self.obs.as_ref()
    }

    /// Records one decision at logical time `now_ns`.
    pub fn record_decision(&self, now_ns: u64, explored: bool) {
        self.decisions.fetch_add(1, RELAXED);
        if explored {
            self.explorations.fetch_add(1, RELAXED);
        }
        self.first_decision_ns.fetch_min(now_ns, RELAXED);
        self.last_decision_ns.fetch_max(now_ns, RELAXED);
    }

    /// Records `n` decisions sharing one logical stamp, of which
    /// `explorations` fired the exploration branch — the batched hot path's
    /// equivalent of `n` [`record_decision`](Self::record_decision) calls,
    /// paid as one pass over the atomics.
    pub fn record_decisions(&self, now_ns: u64, n: u64, explorations: u64) {
        if n == 0 {
            return;
        }
        self.decisions.fetch_add(n, RELAXED);
        if explorations > 0 {
            self.explorations.fetch_add(explorations, RELAXED);
        }
        self.first_decision_ns.fetch_min(now_ns, RELAXED);
        self.last_decision_ns.fetch_max(now_ns, RELAXED);
    }

    /// Records one record offered to the log pipeline. Every offer lands
    /// here; the pipeline's conservation law is
    /// `enqueued == written + dropped + quarantined` once drained.
    pub fn record_enqueued(&self) {
        self.log_enqueued.fetch_add(1, RELAXED);
    }

    /// Records `n` records offered to the log pipeline at once (a batch
    /// frame counts every decision it carries — the ledger is in logical
    /// records, not frames).
    pub fn record_enqueued_n(&self, n: u64) {
        self.log_enqueued.fetch_add(n, RELAXED);
    }

    /// Records one record persisted by the writer thread.
    pub fn record_written(&self) {
        self.log_written.fetch_add(1, RELAXED);
    }

    /// Records `n` records persisted at once (one batch frame).
    pub fn record_written_n(&self, n: u64) {
        self.log_written.fetch_add(n, RELAXED);
    }

    /// Records one record dropped: refused by backpressure, offered after
    /// shutdown, or discarded by a permanently-failed writer.
    pub fn record_dropped(&self) {
        self.log_dropped.fetch_add(1, RELAXED);
    }

    /// Records `n` records dropped at once (a refused batch frame drops
    /// every decision it carries).
    pub fn record_dropped_n(&self, n: u64) {
        self.log_dropped.fetch_add(n, RELAXED);
    }

    /// Records a reward joined to its decision within the TTL.
    pub fn record_join_hit(&self) {
        self.join_hits.fetch_add(1, RELAXED);
    }

    /// Records a reward for an already-joined decision.
    pub fn record_join_duplicate(&self) {
        self.join_duplicates.fetch_add(1, RELAXED);
    }

    /// Records a reward that arrived after its decision's TTL.
    pub fn record_join_late(&self) {
        self.join_late.fetch_add(1, RELAXED);
    }

    /// Records a reward whose decision was never tracked.
    pub fn record_join_unknown(&self) {
        self.join_unknown.fetch_add(1, RELAXED);
    }

    /// Records a tracked decision whose TTL lapsed with no reward.
    pub fn record_timed_out(&self) {
        self.timed_out_decisions.fetch_add(1, RELAXED);
    }

    /// Records one policy hot-swap.
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, RELAXED);
    }

    /// Records `n` log records lost to damage: a torn write, a failed
    /// append, or a frame quarantined by segment recovery.
    pub fn record_quarantined(&self, n: u64) {
        self.log_quarantined.fetch_add(n, RELAXED);
    }

    /// Records one poisoned lock recovered instead of propagating the panic.
    pub fn record_lock_recovery(&self) {
        self.lock_recoveries.fetch_add(1, RELAXED);
    }

    /// Records one wedged shard cell recovered at its next acquisition —
    /// the shard-level chaos fault that replaced lock poisoning. Bumps the
    /// legacy `lock_recoveries` alias too, so the circuit breaker's fault
    /// signal and existing dashboards see the fault without renaming.
    pub fn record_shard_wedge(&self) {
        self.shard_wedges.fetch_add(1, RELAXED);
        self.lock_recoveries.fetch_add(1, RELAXED);
    }

    /// Records one writer-thread restart by the supervisor.
    pub fn record_writer_restart(&self) {
        self.writer_restarts.fetch_add(1, RELAXED);
    }

    /// Records one trainer crash caught mid-fit.
    pub fn record_trainer_crash(&self) {
        self.trainer_crashes.fetch_add(1, RELAXED);
    }

    /// Records the circuit breaker opening (fall back to the safe policy).
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, RELAXED);
    }

    /// Records the circuit breaker re-arming after sustained health.
    pub fn record_breaker_rearm(&self) {
        self.breaker_rearms.fetch_add(1, RELAXED);
    }

    /// Records one decision served by the safe fallback policy.
    pub fn record_degraded(&self) {
        self.degraded_decisions.fetch_add(1, RELAXED);
    }

    /// Records `n` decisions served by the safe fallback policy.
    pub fn record_degraded_n(&self, n: u64) {
        if n > 0 {
            self.degraded_decisions.fetch_add(n, RELAXED);
        }
    }

    /// Records one reward delivery lost before reaching the joiner.
    pub fn record_reward_lost(&self) {
        self.rewards_lost.fetch_add(1, RELAXED);
    }

    /// Records `n` requests refused by a front-door admission layer (rate
    /// limit, queue budget, or deadline shed) before reaching a shard.
    pub fn record_admission_shed_n(&self, n: u64) {
        if n > 0 {
            self.admission_shed.fetch_add(n, RELAXED);
        }
    }

    /// Records one watchdog alert firing with `feed_breaker` set — folded
    /// into [`fault_signal`](Self::fault_signal) so the breaker sees it.
    pub fn record_watchdog_fault(&self) {
        self.watchdog_faults.fetch_add(1, RELAXED);
    }

    /// Records one control-plane checkpoint published at logical time
    /// `now_ns`; the stamp feeds the `checkpoint_age_ns` gauge.
    pub fn record_checkpoint(&self, now_ns: u64) {
        self.checkpoints_written.fetch_add(1, RELAXED);
        self.last_checkpoint_ns.store(now_ns, RELAXED);
    }

    /// Records `n` checkpoints rejected at recovery (torn, corrupt, or
    /// unparsable) before a valid one was found.
    pub fn record_checkpoints_discarded(&self, n: u64) {
        if n > 0 {
            self.checkpoints_discarded.fetch_add(n, RELAXED);
        }
    }

    /// Records `n` log records recovered from durable segments at startup.
    pub fn record_recovered_records(&self, n: u64) {
        if n > 0 {
            self.recovered_records.fetch_add(n, RELAXED);
        }
    }

    /// Records one outcome replayed into the joiner during warm restart.
    pub fn record_replayed_join(&self) {
        self.replayed_joins.fetch_add(1, RELAXED);
    }

    /// Records `n` cold segments folded into training shards by the
    /// lifecycle compactor.
    pub fn record_segments_compacted(&self, n: u64) {
        if n > 0 {
            self.segments_compacted.fetch_add(n, RELAXED);
        }
    }

    /// Records one warm restart (a service resumed from a checkpoint or
    /// rebuilt its state by full-log replay).
    pub fn record_restart(&self) {
        self.restart_count.fetch_add(1, RELAXED);
    }

    /// Exports the durable counters for the control-plane checkpoint.
    pub fn checkpoint_counters(&self) -> MetricsState {
        MetricsState {
            decisions: self.decisions.load(RELAXED),
            explorations: self.explorations.load(RELAXED),
            log_enqueued: self.log_enqueued.load(RELAXED),
            log_written: self.log_written.load(RELAXED),
            log_dropped: self.log_dropped.load(RELAXED),
            log_quarantined: self.log_quarantined.load(RELAXED),
            join_hits: self.join_hits.load(RELAXED),
            join_duplicates: self.join_duplicates.load(RELAXED),
            join_late: self.join_late.load(RELAXED),
            join_unknown: self.join_unknown.load(RELAXED),
            timed_out_decisions: self.timed_out_decisions.load(RELAXED),
            swaps: self.swaps.load(RELAXED),
            first_decision_ns: self.first_decision_ns.load(RELAXED),
            last_decision_ns: self.last_decision_ns.load(RELAXED),
            lock_recoveries: self.lock_recoveries.load(RELAXED),
            shard_wedges: self.shard_wedges.load(RELAXED),
            writer_restarts: self.writer_restarts.load(RELAXED),
            trainer_crashes: self.trainer_crashes.load(RELAXED),
            breaker_trips: self.breaker_trips.load(RELAXED),
            breaker_rearms: self.breaker_rearms.load(RELAXED),
            degraded_decisions: self.degraded_decisions.load(RELAXED),
            rewards_lost: self.rewards_lost.load(RELAXED),
            admission_shed: self.admission_shed.load(RELAXED),
            watchdog_faults: self.watchdog_faults.load(RELAXED),
            checkpoints_written: self.checkpoints_written.load(RELAXED),
            checkpoints_discarded: self.checkpoints_discarded.load(RELAXED),
            last_checkpoint_ns: self.last_checkpoint_ns.load(RELAXED),
            recovered_records: self.recovered_records.load(RELAXED),
            replayed_joins: self.replayed_joins.load(RELAXED),
            segments_compacted: self.segments_compacted.load(RELAXED),
            restart_count: self.restart_count.load(RELAXED),
        }
    }

    /// Restores checkpointed counters verbatim. The conservation ledger
    /// resumes exactly where the previous incarnation left it; replay then
    /// advances it for the post-checkpoint log suffix.
    pub fn restore_counters(&self, s: &MetricsState) {
        self.decisions.store(s.decisions, RELAXED);
        self.explorations.store(s.explorations, RELAXED);
        self.log_enqueued.store(s.log_enqueued, RELAXED);
        self.log_written.store(s.log_written, RELAXED);
        self.log_dropped.store(s.log_dropped, RELAXED);
        self.log_quarantined.store(s.log_quarantined, RELAXED);
        self.join_hits.store(s.join_hits, RELAXED);
        self.join_duplicates.store(s.join_duplicates, RELAXED);
        self.join_late.store(s.join_late, RELAXED);
        self.join_unknown.store(s.join_unknown, RELAXED);
        self.timed_out_decisions
            .store(s.timed_out_decisions, RELAXED);
        self.swaps.store(s.swaps, RELAXED);
        self.first_decision_ns.store(s.first_decision_ns, RELAXED);
        self.last_decision_ns.store(s.last_decision_ns, RELAXED);
        self.lock_recoveries.store(s.lock_recoveries, RELAXED);
        self.shard_wedges.store(s.shard_wedges, RELAXED);
        self.writer_restarts.store(s.writer_restarts, RELAXED);
        self.trainer_crashes.store(s.trainer_crashes, RELAXED);
        self.breaker_trips.store(s.breaker_trips, RELAXED);
        self.breaker_rearms.store(s.breaker_rearms, RELAXED);
        self.degraded_decisions.store(s.degraded_decisions, RELAXED);
        self.rewards_lost.store(s.rewards_lost, RELAXED);
        self.admission_shed.store(s.admission_shed, RELAXED);
        self.watchdog_faults.store(s.watchdog_faults, RELAXED);
        self.checkpoints_written
            .store(s.checkpoints_written, RELAXED);
        self.checkpoints_discarded
            .store(s.checkpoints_discarded, RELAXED);
        self.last_checkpoint_ns.store(s.last_checkpoint_ns, RELAXED);
        self.recovered_records.store(s.recovered_records, RELAXED);
        self.replayed_joins.store(s.replayed_joins, RELAXED);
        self.segments_compacted.store(s.segments_compacted, RELAXED);
        self.restart_count.store(s.restart_count, RELAXED);
    }

    /// The fault signal the circuit breaker watches: a monotone count of
    /// everything that indicates the log pipeline or trainer is degrading.
    /// Healthy operation keeps this flat; the breaker trips on its slope.
    pub fn fault_signal(&self) -> u64 {
        self.log_dropped.load(RELAXED)
            + self.log_quarantined.load(RELAXED)
            + self.lock_recoveries.load(RELAXED)
            + self.writer_restarts.load(RELAXED)
            + self.trainer_crashes.load(RELAXED)
            + self.watchdog_faults.load(RELAXED)
    }

    /// Reads every counter at one instant and derives the rates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let decisions = self.decisions.load(RELAXED);
        let explorations = self.explorations.load(RELAXED);
        let enqueued = self.log_enqueued.load(RELAXED);
        let written = self.log_written.load(RELAXED);
        let dropped = self.log_dropped.load(RELAXED);
        let quarantined = self.log_quarantined.load(RELAXED);
        let hits = self.join_hits.load(RELAXED);
        let duplicates = self.join_duplicates.load(RELAXED);
        let late = self.join_late.load(RELAXED);
        let unknown = self.join_unknown.load(RELAXED);
        let attempts = hits + duplicates + late + unknown;
        let first = self.first_decision_ns.load(RELAXED);
        let last = self.last_decision_ns.load(RELAXED);
        let elapsed_s = if first == u64::MAX || last <= first {
            0.0
        } else {
            (last - first) as f64 / 1e9
        };
        MetricsSnapshot {
            decisions,
            explorations,
            exploration_rate: ratio(explorations, decisions),
            decisions_per_sec: if elapsed_s > 0.0 {
                decisions as f64 / elapsed_s
            } else {
                0.0
            },
            log_enqueued: enqueued,
            log_written: written,
            log_dropped: dropped,
            log_quarantined: quarantined,
            log_backlog: enqueued.saturating_sub(written + dropped + quarantined),
            join_hits: hits,
            join_duplicates: duplicates,
            join_late: late,
            join_unknown: unknown,
            join_hit_rate: ratio(hits, attempts),
            timed_out_decisions: self.timed_out_decisions.load(RELAXED),
            swaps: self.swaps.load(RELAXED),
            lock_recoveries: self.lock_recoveries.load(RELAXED),
            shard_wedges: self.shard_wedges.load(RELAXED),
            writer_restarts: self.writer_restarts.load(RELAXED),
            trainer_crashes: self.trainer_crashes.load(RELAXED),
            breaker_trips: self.breaker_trips.load(RELAXED),
            breaker_rearms: self.breaker_rearms.load(RELAXED),
            degraded_decisions: self.degraded_decisions.load(RELAXED),
            rewards_lost: self.rewards_lost.load(RELAXED),
            admission_shed: self.admission_shed.load(RELAXED),
            watchdog_faults: self.watchdog_faults.load(RELAXED),
            checkpoints_written: self.checkpoints_written.load(RELAXED),
            checkpoints_discarded: self.checkpoints_discarded.load(RELAXED),
            checkpoint_age_ns: {
                let ckpt = self.last_checkpoint_ns.load(RELAXED);
                if ckpt == u64::MAX {
                    0
                } else {
                    last.saturating_sub(ckpt)
                }
            },
            recovered_records: self.recovered_records.load(RELAXED),
            replayed_joins: self.replayed_joins.load(RELAXED),
            segments_compacted: self.segments_compacted.load(RELAXED),
            restart_count: self.restart_count.load(RELAXED),
        }
    }
}

/// Zero-guarded rate: an empty window yields 0.0, never NaN or ±inf.
/// Every derived rate in [`MetricsSnapshot`] goes through here (or the
/// equivalent `elapsed_s` guard), so an empty snapshot always serializes
/// finite numbers — exporters and dashboards never see a NaN.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A point-in-time reading of the service counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Decisions served.
    pub decisions: u64,
    /// Decisions where the exploration branch fired.
    pub explorations: u64,
    /// `explorations / decisions`.
    pub exploration_rate: f64,
    /// Decisions per logical second (stamped-time span).
    pub decisions_per_sec: f64,
    /// Records offered to the log pipeline.
    pub log_enqueued: u64,
    /// Records persisted by the writer thread.
    pub log_written: u64,
    /// Records dropped: backpressure, post-shutdown offers, or a
    /// permanently-failed writer discarding its queue.
    pub log_dropped: u64,
    /// Records lost to damage — torn writes and failed appends — counted,
    /// never silently skipped.
    pub log_quarantined: u64,
    /// Records still queued: `enqueued − written − dropped − quarantined`.
    pub log_backlog: u64,
    /// Rewards joined within the TTL.
    pub join_hits: u64,
    /// Rewards for already-joined decisions.
    pub join_duplicates: u64,
    /// Rewards that arrived after the TTL.
    pub join_late: u64,
    /// Rewards whose decision was never tracked.
    pub join_unknown: u64,
    /// `hits / (hits + duplicates + late + unknown)`.
    pub join_hit_rate: f64,
    /// Tracked decisions whose TTL lapsed with no reward.
    pub timed_out_decisions: u64,
    /// Policy hot-swaps performed.
    pub swaps: u64,
    /// Shard-level chaos faults recovered instead of propagating: wedged
    /// shard cells (and, historically, poisoned locks). Every
    /// `shard_wedges` recovery is mirrored here, so this legacy counter
    /// keeps its meaning for dashboards and the breaker's fault signal.
    pub lock_recoveries: u64,
    /// Wedged shard cells recovered at acquisition — the lock-free
    /// successor of the poisoned-lock fault.
    pub shard_wedges: u64,
    /// Writer-thread restarts performed by the supervisor.
    pub writer_restarts: u64,
    /// Trainer crashes caught mid-fit.
    pub trainer_crashes: u64,
    /// Circuit-breaker trips (fall back to the safe policy).
    pub breaker_trips: u64,
    /// Circuit-breaker re-arms after sustained health.
    pub breaker_rearms: u64,
    /// Decisions served by the safe fallback policy while the breaker was
    /// open.
    pub degraded_decisions: u64,
    /// Reward deliveries lost before reaching the joiner.
    pub rewards_lost: u64,
    /// Requests refused by a front-door admission layer (wire rate limits,
    /// queue budgets, deadline sheds) before reaching a shard.
    pub admission_shed: u64,
    /// Watchdog alert firings wired into the breaker's fault signal
    /// (scope watchdogs configured with `feed_breaker`).
    pub watchdog_faults: u64,
    /// Control-plane checkpoints published.
    pub checkpoints_written: u64,
    /// Checkpoints rejected at recovery (torn, corrupt, or unparsable)
    /// before a valid one was found — counted, never silent.
    pub checkpoints_discarded: u64,
    /// Logical nanoseconds from the newest checkpoint to the newest
    /// decision — the replay exposure a crash right now would incur. Zero
    /// until the first checkpoint is published.
    pub checkpoint_age_ns: u64,
    /// Log records recovered from durable segments at startup.
    pub recovered_records: u64,
    /// Outcomes replayed into the joiner during warm restart.
    pub replayed_joins: u64,
    /// Cold segments folded into training shards by the lifecycle
    /// compactor.
    pub segments_compacted: u64,
    /// Warm restarts performed (resume from checkpoint or full-log replay).
    pub restart_count: u64,
}

/// The durable counter set carried inside a control-plane checkpoint: every
/// monotone counter (and the logical time stamps), excluding the derived
/// rates a snapshot computes on the fly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field-for-field mirror of the counters above
pub struct MetricsState {
    pub decisions: u64,
    pub explorations: u64,
    pub log_enqueued: u64,
    pub log_written: u64,
    pub log_dropped: u64,
    pub log_quarantined: u64,
    pub join_hits: u64,
    pub join_duplicates: u64,
    pub join_late: u64,
    pub join_unknown: u64,
    pub timed_out_decisions: u64,
    pub swaps: u64,
    pub first_decision_ns: u64,
    pub last_decision_ns: u64,
    pub lock_recoveries: u64,
    /// Missing from pre-wedge checkpoints; defaults to 0 on restore.
    #[serde(default)]
    pub shard_wedges: u64,
    pub writer_restarts: u64,
    pub trainer_crashes: u64,
    pub breaker_trips: u64,
    pub breaker_rearms: u64,
    pub degraded_decisions: u64,
    pub rewards_lost: u64,
    pub admission_shed: u64,
    /// Missing from pre-scope checkpoints; defaults to 0 on restore.
    #[serde(default)]
    pub watchdog_faults: u64,
    pub checkpoints_written: u64,
    pub checkpoints_discarded: u64,
    pub last_checkpoint_ns: u64,
    pub recovered_records: u64,
    pub replayed_joins: u64,
    pub segments_compacted: u64,
    pub restart_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_rates() {
        let m = ServeMetrics::new();
        for i in 0..10 {
            m.record_decision(i * 1_000_000_000, i % 2 == 0);
        }
        m.record_enqueued();
        m.record_enqueued();
        m.record_written();
        m.record_join_hit();
        m.record_join_late();
        m.record_swap();
        let s = m.snapshot();
        assert_eq!(s.decisions, 10);
        assert_eq!(s.explorations, 5);
        assert!((s.exploration_rate - 0.5).abs() < 1e-12);
        // 10 decisions over 9 logical seconds.
        assert!((s.decisions_per_sec - 10.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.log_backlog, 1);
        assert!((s.join_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.swaps, 1);
    }

    #[test]
    fn robustness_counters_flow_into_snapshot_and_fault_signal() {
        let m = ServeMetrics::new();
        m.record_enqueued();
        m.record_enqueued();
        m.record_enqueued();
        m.record_written();
        m.record_dropped();
        m.record_quarantined(1);
        m.record_lock_recovery();
        m.record_writer_restart();
        m.record_trainer_crash();
        m.record_breaker_trip();
        m.record_breaker_rearm();
        m.record_degraded();
        m.record_reward_lost();
        let s = m.snapshot();
        assert_eq!(s.log_quarantined, 1);
        assert_eq!(s.log_backlog, 0); // 3 enqueued = 1 written + 1 dropped + 1 quarantined
        assert_eq!(s.lock_recoveries, 1);
        assert_eq!(s.writer_restarts, 1);
        assert_eq!(s.trainer_crashes, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_rearms, 1);
        assert_eq!(s.degraded_decisions, 1);
        assert_eq!(s.rewards_lost, 1);
        // dropped + quarantined + lock recovery + restart + trainer crash.
        assert_eq!(m.fault_signal(), 5);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.exploration_rate, 0.0);
        assert_eq!(s.decisions_per_sec, 0.0);
        assert_eq!(s.join_hit_rate, 0.0);
    }

    #[test]
    fn empty_snapshot_serializes_finite_numbers() {
        // Zero denominators everywhere: every derived rate must still be a
        // finite number, and the JSON must carry no NaN/inf tokens.
        let s = ServeMetrics::new().snapshot();
        for (name, v) in [
            ("exploration_rate", s.exploration_rate),
            ("decisions_per_sec", s.decisions_per_sec),
            ("join_hit_rate", s.join_hit_rate),
        ] {
            assert!(v.is_finite(), "{name} must be finite on empty metrics");
        }
        let json = serde_json::to_string(&s).expect("snapshot serializes");
        for token in ["NaN", "nan", "inf", "Infinity"] {
            assert!(
                !json.contains(token),
                "empty snapshot leaked `{token}`: {json}"
            );
        }
    }

    #[test]
    fn counters_round_trip_through_checkpoint_state() {
        let m = ServeMetrics::new();
        for i in 0..7 {
            m.record_decision(i * 1000, i % 3 == 0);
        }
        m.record_enqueued_n(7);
        m.record_written_n(6);
        m.record_dropped();
        m.record_join_hit();
        m.record_checkpoint(5000);
        m.record_recovered_records(6);
        m.record_replayed_join();
        m.record_segments_compacted(2);
        m.record_restart();
        m.record_checkpoints_discarded(1);
        let state = m.checkpoint_counters();
        let restored = ServeMetrics::new();
        restored.restore_counters(&state);
        assert_eq!(restored.checkpoint_counters(), state);
        assert_eq!(restored.snapshot(), m.snapshot());
        let s = restored.snapshot();
        assert_eq!(s.checkpoints_written, 1);
        assert_eq!(s.checkpoints_discarded, 1);
        assert_eq!(s.checkpoint_age_ns, 1000); // last decision 6000, ckpt 5000
        assert_eq!(s.recovered_records, 6);
        assert_eq!(s.replayed_joins, 1);
        assert_eq!(s.segments_compacted, 2);
        assert_eq!(s.restart_count, 1);
    }

    #[test]
    fn checkpoint_age_is_zero_before_the_first_checkpoint() {
        let m = ServeMetrics::new();
        m.record_decision(9999, false);
        assert_eq!(m.snapshot().checkpoint_age_ns, 0);
    }

    #[test]
    fn with_obs_carries_the_bundle() {
        use crate::obs::{ObsConfig, ServeObs};
        let m = ServeMetrics::with_obs(Arc::new(ServeObs::new(&ObsConfig::default())));
        assert!(m.obs().is_some());
        assert!(ServeMetrics::new().obs().is_none());
    }
}

//! Shard-affine ownership cells: the lock-free replacement for
//! `Vec<Mutex<Shard>>` on the decide path.
//!
//! Under the intended deployment each shard's mutable state (RNG stream,
//! sequence counter, scratch buffers) is touched by exactly one worker
//! thread, so the cell's gate is **uncontended by construction**: acquiring
//! it is one uncontended atomic swap, with no futex, no syscall, and no
//! poisoning machinery. When a caller violates affinity — two threads
//! hitting the same shard — a striped test-and-test-and-set spin path keeps
//! the public `decide(shard, ...)` API exactly as correct as the old mutex,
//! just slower for the offender.
//!
//! The cell also carries the *wedge* flag that replaced lock poisoning as
//! the shard-level chaos fault: there is no mutex left to poison, so
//! `ChaosPlan` shard poisoning now wedges the cell, and the next acquisition
//! clears the wedge and reports it (see
//! [`DecisionEngine::poison_shard`](crate::engine::DecisionEngine::poison_shard)).
//!
//! This module is one of the three audited `unsafe` islands in the crate
//! (with [`ring`](crate::ring) and [`rcu`](crate::rcu)); every `unsafe`
//! block carries a `// SAFETY:` comment checked by `tests/unsafe_audit.rs`
//! and the CI grep.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A cache-line-isolated cell owning one shard's mutable state.
///
/// `lock` is a TATAS spin acquire: the fast path (shard affinity respected)
/// is a single uncontended `swap`; the contended path spins on a read
/// (cheap: no cache-line ping-pong) and yields to the scheduler, which
/// matters on machines with fewer cores than workers.
#[repr(align(128))]
#[derive(Debug)]
pub(crate) struct ShardCell<T> {
    gate: AtomicBool,
    /// Chaos wedge: set by the shard-poison fault, cleared (and counted)
    /// by the next acquisition.
    wedged: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the `gate` flag enforces mutual exclusion over `value` — a guard
// exists only while the gate is held, and `lock` establishes acquire/release
// ordering with the previous holder — so `&ShardCell<T>` may be shared
// across threads whenever `T` itself may be sent between them.
unsafe impl<T: Send> Sync for ShardCell<T> {}

impl<T> ShardCell<T> {
    pub(crate) fn new(value: T) -> Self {
        ShardCell {
            gate: AtomicBool::new(false),
            wedged: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires exclusive access. Uncontended under shard affinity; spins
    /// (read-only, yielding) when callers violate it.
    pub(crate) fn lock(&self) -> ShardCellGuard<'_, T> {
        loop {
            if !self.gate.swap(true, Ordering::Acquire) {
                return ShardCellGuard { cell: self };
            }
            // Contended: somebody violated shard affinity. Spin on a plain
            // load until the gate looks free, yielding so a single-core
            // host can schedule the holder.
            let mut spins = 0u32;
            while self.gate.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Arms the chaos wedge: the next [`lock`](Self::lock)-holder that asks
    /// will observe (and clear) it.
    pub(crate) fn wedge(&self) {
        self.wedged.store(true, Ordering::Release);
    }

    /// Clears the wedge flag, returning whether it was set. Call while
    /// holding the guard so wedge recovery is serialized with shard use.
    pub(crate) fn take_wedge(&self) -> bool {
        self.wedged.swap(false, Ordering::AcqRel)
    }
}

/// Exclusive access to the cell's value; releases the gate on drop.
#[derive(Debug)]
pub(crate) struct ShardCellGuard<'a, T> {
    cell: &'a ShardCell<T>,
}

impl<T> Deref for ShardCellGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard exists only between a successful gate swap and
        // the release in `drop`, so this thread has exclusive access.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T> DerefMut for ShardCellGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the gate gives this guard exclusive
        // access for its whole lifetime.
        unsafe { &mut *self.cell.value.get() }
    }
}

impl<T> Drop for ShardCellGuard<'_, T> {
    fn drop(&mut self) {
        self.cell.gate.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increments_never_lose_updates() {
        let cell = Arc::new(ShardCell::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *cell.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*cell.lock(), 40_000);
    }

    #[test]
    fn wedge_is_observed_once() {
        let cell = ShardCell::new(());
        assert!(!cell.take_wedge());
        cell.wedge();
        assert!(cell.take_wedge());
        assert!(!cell.take_wedge());
    }
}

//! Warm restart: capture, persist, and restore the durable control plane.
//!
//! The decision log ([`harvest_log::segment`]) already makes the *data*
//! crash-safe; this module makes the *control plane* restartable. A
//! [`ServiceCheckpoint`] is everything the service cannot rederive from
//! config alone: the incumbent policy version, the per-shard RNG stream
//! positions and sequence counters, the joiner's pending set and
//! tombstones, the conservation-ledger counters, and the chaos scheduling
//! cursors. It serializes to JSON (sorted collections, no wall clock, no
//! hash-order leakage) and travels inside the CRC-framed checkpoint blobs
//! of [`harvest_log::checkpoint`].
//!
//! Recovery ([`DecisionService::resume`]) is **checkpoint + deterministic
//! replay**:
//!
//! 1. Load the newest checkpoint that validates *and parses*; torn,
//!    corrupt, and unparsable ones are counted discarded, never silently
//!    skipped. No valid checkpoint at all degenerates to a cold start —
//!    full-log replay from the fresh state.
//! 2. Recover the durable log segments and classify the **suffix**: a
//!    decision is post-checkpoint iff its per-shard sequence number is at
//!    or past the checkpointed next-sequence; an outcome iff its id is not
//!    in the checkpointed joined set.
//! 3. Replay the suffix in log order. Each suffix decision re-runs the
//!    exact ε-greedy draw the previous incarnation made (the engine has a
//!    single shared sampling path, so the draw count per decision is
//!    reproduced exactly), advancing the restored RNG and sequence counter
//!    to precisely where the crash left them — request ids can never
//!    collide across incarnations. Each suffix outcome re-joins against
//!    the restored pending set; an **orphan** (outcome survived, its
//!    decision did not) is counted `rewards_lost`, keeping the reward
//!    ledger reconciled.
//!
//! The conservation invariant `enqueued == written + dropped + quarantined`
//! holds across incarnations: restored counters resume the old ledger, each
//! durable suffix record re-counts as enqueued + written, and quarantine
//! found at rest beyond the checkpointed count is added, never dropped.
//!
//! What is *not* checkpointed, by design: the circuit breaker (it is born
//! closed and [rebased](crate::breaker::CircuitBreaker::rebase) over the
//! restored fault counters, so stale pre-crash faults cannot trip it) and
//! the observability bundle (traces and histograms describe an
//! incarnation, not the service's durable history).

use std::collections::HashSet;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use harvest_log::checkpoint::{
    load_latest_filtered, CheckpointStore, CheckpointWriter, CHECKPOINT_HEADER_LEN,
};
use harvest_log::record::{DecisionRecord, LogRecord};
use harvest_log::scavenge::context_of;
use harvest_log::segment::{recover_segments, SegmentSink};
use harvest_sim_net::fault::{ChaosPlan, CheckpointFault};
use serde::{Deserialize, Serialize};

use crate::engine::{ShardState, SEQ_BITS};
use crate::error::{lock_recovering, ServeError};
use crate::joiner::{JoinOutcome, JoinerState};
use crate::metrics::MetricsState;
use crate::registry::PolicyVersion;
use crate::service::{DecisionService, ServeConfig};

/// The durable control-plane state: everything a warm restart needs that
/// config cannot rederive. Serialized as JSON inside a CRC-framed
/// checkpoint blob; all collections are sorted at capture, so the same
/// logical state always produces byte-identical payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Caller-defined replay cursor — opaque to the service. A wave-based
    /// driver stores "next wave index", so after a restart it knows which
    /// training rounds to re-run from the recovered log.
    pub cursor: u64,
    /// The serving policy version, verbatim.
    pub incumbent: PolicyVersion,
    /// Lifetime promotion count ([`PolicyRegistry::swap_count`]).
    ///
    /// [`PolicyRegistry::swap_count`]: crate::registry::PolicyRegistry::swap_count
    pub swaps: u64,
    /// Per-shard RNG positions, next sequence numbers, last stamps.
    pub shards: Vec<ShardState>,
    /// Pending joins and tombstones.
    pub joiner: JoinerState,
    /// The conservation ledger and telemetry counters.
    pub counters: MetricsState,
    /// Promotion naming counter (`cb-round-N`).
    pub promoted_rounds: u64,
    /// Training-round index (chaos trainer-crash scheduling window).
    pub train_rounds: u64,
    /// Global decision index (chaos poison scheduling window).
    pub decision_seq: u64,
    /// Global reward-call index (chaos reward-fault scheduling window).
    pub reward_seq: u64,
}

/// What [`DecisionService::resume`] did, for logs and assertions.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryReport {
    /// No checkpoint validated — the service rebuilt itself by full-log
    /// replay from the fresh cold state.
    pub cold_start: bool,
    /// The restored caller cursor (0 on a cold start).
    pub cursor: u64,
    /// Checkpoints examined, newest first.
    pub checkpoints_scanned: u64,
    /// Damaged or unparsable checkpoints skipped before a valid one.
    pub checkpoints_discarded: u64,
    /// Sequence number of the checkpoint that loaded, if any.
    pub loaded_seq: Option<u64>,
    /// Records recovered from the durable log segments.
    pub recovered_records: u64,
    /// Record frames quarantined at rest.
    pub quarantined_records: u64,
    /// Post-checkpoint decisions replayed through the engine.
    pub replayed_decisions: u64,
    /// Post-checkpoint outcomes replayed through the joiner.
    pub replayed_outcomes: u64,
    /// Replayed outcomes that re-joined a pending decision.
    pub replayed_joins: u64,
    /// Replayed outcomes whose decision did not survive (counted
    /// `rewards_lost`, never dropped).
    pub orphan_outcomes: u64,
    /// Replayed decisions whose id or action disagreed with the logged
    /// record — zero unless the log, the checkpoint, or the config lies.
    pub replay_divergence: u64,
}

impl<S: SegmentSink + Send + 'static> DecisionService<S> {
    /// Assembles the current control-plane state into a checkpoint.
    ///
    /// Call from a quiescent point — the wave boundary discipline: decisions
    /// served, rewards delivered, log drained, training done — so the
    /// snapshot is one consistent cut across registry, engine, joiner, and
    /// counters. `cursor` is the caller's replay cursor, stored verbatim.
    pub fn checkpoint_state(&self, cursor: u64) -> ServiceCheckpoint {
        let incumbent = self.registry.current();
        ServiceCheckpoint {
            cursor,
            incumbent: (*incumbent).clone(),
            swaps: self.registry.swap_count(),
            shards: self.engine.shard_states(),
            joiner: lock_recovering(&self.joiner, Some(&self.metrics)).state(),
            counters: self.metrics.checkpoint_counters(),
            promoted_rounds: *lock_recovering(&self.rounds, Some(&self.metrics)),
            train_rounds: self.train_rounds.load(Ordering::SeqCst),
            decision_seq: self.decision_seq.load(Ordering::SeqCst),
            reward_seq: self.reward_seq.load(Ordering::SeqCst),
        }
    }

    /// Captures [`checkpoint_state`](Self::checkpoint_state) and publishes
    /// it through `writer` at logical time `now_ns`, bumping the checkpoint
    /// telemetry. Returns the published sequence number.
    ///
    /// Chaos integration: a [`CheckpointFault::Tear`] or
    /// [`CheckpointFault::Corrupt`] scheduled at this writer's next
    /// sequence number damages the published blob exactly as the fault
    /// describes — a later [`resume`](Self::resume) must detect it and fall
    /// back. The *process-death* variants (`KillBefore`, `KillAfter`) are
    /// the driver's to enact — a service cannot model its own death — by
    /// killing the incarnation around this call.
    pub fn write_checkpoint<C: CheckpointStore>(
        &self,
        writer: &mut CheckpointWriter<C>,
        cursor: u64,
        now_ns: u64,
    ) -> io::Result<u64> {
        let fault = self
            .chaos
            .as_ref()
            .and_then(|c| c.checkpoint_fault_at(writer.next_seq()));
        self.metrics.record_checkpoint(now_ns);
        // Counters are stamped first, so a checkpoint accounts for itself:
        // restoring it reports the same `checkpoints_written` the original
        // incarnation would have.
        let state = self.checkpoint_state(cursor);
        let payload = serde_json::to_string(&state)
            .map_err(io::Error::other)?
            .into_bytes();
        match fault {
            Some(CheckpointFault::Tear { keep_frac }) => writer.write_damaged(&payload, |blob| {
                let keep = ((blob.len() as f64 - 1.0) * keep_frac.clamp(0.0, 1.0)) as usize;
                let mut blob = blob;
                blob.truncate(keep.clamp(1, blob.len() - 1));
                blob
            }),
            Some(CheckpointFault::Corrupt { xor }) => writer.write_damaged(&payload, |mut blob| {
                if blob.len() > CHECKPOINT_HEADER_LEN {
                    blob[CHECKPOINT_HEADER_LEN] ^= xor.max(1);
                }
                blob
            }),
            _ => writer.write(&payload),
        }
    }

    /// Boots a service that **continues** a previous incarnation: loads the
    /// newest valid checkpoint from `checkpoints`, replays the
    /// post-checkpoint suffix of the durable log (`segments` — typically
    /// the sink's own segments read back), and returns the warm service
    /// alongside the accounting.
    ///
    /// `cfg` must describe the same service (same seed, shard count, ε);
    /// the new incarnation's writer appends *after* the existing segments
    /// and resumes the consumed portion of any writer fault schedule, so
    /// history is never overwritten and already-fired faults never re-fire.
    ///
    /// With no valid checkpoint this degenerates to a **cold start**: the
    /// damaged checkpoints are counted discarded and the entire log is
    /// replayed from the fresh state — slower, never wrong.
    pub fn resume<C: CheckpointStore>(
        mut cfg: ServeConfig,
        sink: S,
        chaos: Option<ChaosPlan>,
        checkpoints: &C,
        segments: &[Vec<u8>],
    ) -> Result<(Self, RecoveryReport), ServeError> {
        let (loaded, ckpt_rec) = load_latest_filtered(checkpoints, |_, payload| {
            std::str::from_utf8(payload)
                .ok()
                .and_then(|text| serde_json::from_str::<ServiceCheckpoint>(text).ok())
        });
        let (records, log_stats) = recover_segments(segments);

        let mut report = RecoveryReport {
            cold_start: loaded.is_none(),
            cursor: loaded.as_ref().map_or(0, |c| c.cursor),
            checkpoints_scanned: ckpt_rec.scanned,
            checkpoints_discarded: ckpt_rec.discarded,
            loaded_seq: ckpt_rec.loaded_seq,
            recovered_records: log_stats.recovered as u64,
            quarantined_records: log_stats.quarantined_records as u64,
            ..RecoveryReport::default()
        };

        // The new incarnation's writer starts past the durable history: its
        // segments append after the existing ones, and its fault-schedule
        // clock starts at the number of records the old incarnations
        // already pushed through (written + quarantined at rest), so
        // consumed writer faults stay consumed.
        cfg.logger.first_segment = segments.len() as u64;
        cfg.supervisor.first_record_index =
            (log_stats.recovered + log_stats.quarantined_records) as u64;

        let svc = Self::build(cfg, sink, chaos.map(Arc::new));

        // Restore the checkpointed cut (a cold start keeps the fresh state).
        let mut shard_next_seq: Vec<u64> = Vec::new();
        let mut joined_tombstones: HashSet<u64> = HashSet::new();
        if let Some(ckpt) = &loaded {
            svc.registry.restore(ckpt.incumbent.clone(), ckpt.swaps);
            svc.engine.restore_shard_states(&ckpt.shards)?;
            lock_recovering(&svc.joiner, Some(&svc.metrics)).restore(&ckpt.joiner);
            svc.metrics.restore_counters(&ckpt.counters);
            *lock_recovering(&svc.rounds, Some(&svc.metrics)) = ckpt.promoted_rounds;
            svc.train_rounds.store(ckpt.train_rounds, Ordering::SeqCst);
            shard_next_seq = ckpt.shards.iter().map(|s| s.seq).collect();
            joined_tombstones = ckpt.joiner.joined.iter().copied().collect();
        }

        // Quarantine discovered at rest beyond what the checkpoint already
        // counted (e.g. a tear in the killed wave): counted, never silent.
        // At-rest counts can legitimately undercount the runtime counter
        // (a torn batch frame counts once at rest), hence saturating.
        let already_counted = loaded.as_ref().map_or(0, |c| c.counters.log_quarantined);
        svc.metrics.record_quarantined(
            (log_stats.quarantined_records as u64).saturating_sub(already_counted),
        );

        // Replay the post-checkpoint suffix in log order. Decisions re-run
        // their draws (advancing RNG + seq); outcomes re-join. Both re-count
        // enqueued + written: the records are durably in the log, and the
        // restored ledger must cover them exactly once.
        let seq_mask = (1u64 << SEQ_BITS) - 1;
        let mut replay_decision = |d: &DecisionRecord| {
            let shard = (d.request_id >> SEQ_BITS) as usize;
            let seq = d.request_id & seq_mask;
            if seq < shard_next_seq.get(shard).copied().unwrap_or(0) {
                return; // pre-checkpoint: already inside the restored state
            }
            report.replayed_decisions += 1;
            svc.metrics.record_enqueued();
            svc.metrics.record_written();
            let Some(ctx) = context_of(d) else {
                report.replay_divergence += 1;
                return;
            };
            match svc.engine.replay_decision(shard, d.timestamp_ns, &ctx) {
                Ok((id, action, explored)) => {
                    if id != d.request_id || action != d.action {
                        report.replay_divergence += 1;
                    }
                    svc.metrics.record_decision(d.timestamp_ns, explored);
                    lock_recovering(&svc.joiner, Some(&svc.metrics))
                        .track(d.request_id, d.timestamp_ns);
                }
                Err(_) => report.replay_divergence += 1,
            }
        };
        for record in &records {
            match record {
                LogRecord::Decision(d) => replay_decision(d),
                // Segment recovery flattens batch frames, but replay over
                // caller-supplied records must not rely on that.
                LogRecord::Batch(b) => {
                    for d in b.flatten() {
                        replay_decision(&d);
                    }
                }
                LogRecord::Outcome(o) => {
                    if joined_tombstones.contains(&o.request_id) {
                        continue; // pre-checkpoint join, already restored
                    }
                    report.replayed_outcomes += 1;
                    svc.metrics.record_enqueued();
                    svc.metrics.record_written();
                    svc.metrics.record_replayed_join();
                    let outcome = lock_recovering(&svc.joiner, Some(&svc.metrics)).replay_outcome(
                        o.request_id,
                        o.timestamp_ns,
                        o.reward,
                    );
                    match outcome {
                        JoinOutcome::Joined => report.replayed_joins += 1,
                        JoinOutcome::Lost => report.orphan_outcomes += 1,
                        _ => {}
                    }
                }
            }
        }

        // Chaos scheduling clocks continue where the old incarnation's
        // durable trace ends: each replayed suffix record consumed one
        // index before the crash. (Reward calls that produced no log record
        // — drops, duplicates, late arrivals *after* the checkpoint — are
        // not reconstructible from the log; a chaos schedule that must stay
        // aligned across a restart should fault only pre-checkpoint waves.)
        let base = loaded.as_ref();
        svc.decision_seq.store(
            base.map_or(0, |c| c.decision_seq) + report.replayed_decisions,
            Ordering::SeqCst,
        );
        svc.reward_seq.store(
            base.map_or(0, |c| c.reward_seq) + report.replayed_outcomes,
            Ordering::SeqCst,
        );

        // Recovery telemetry, then rebase the breaker so restored fault
        // counters (and the quarantine delta above) read as history, not as
        // a fresh fault burst in its first window.
        svc.metrics.record_restart();
        svc.metrics.record_checkpoints_discarded(ckpt_rec.discarded);
        svc.metrics
            .record_recovered_records(log_stats.recovered as u64);
        svc.breaker.rebase(&svc.metrics);

        Ok((svc, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::joiner::JoinOutcome;
    use harvest_core::SimpleContext;
    use harvest_log::checkpoint::MemoryCheckpoints;
    use harvest_log::segment::MemorySegments;

    fn config(seed: u64) -> ServeConfig {
        ServeConfig {
            engine: EngineConfig {
                shards: 2,
                epsilon: 0.2,
                master_seed: seed,
                component: "recovery-test".to_string(),
            },
            ..ServeConfig::default()
        }
    }

    fn drain(svc: &DecisionService<MemorySegments>) {
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
    }

    /// Serve `n` decisions (and join each reward) starting at step `start`.
    fn serve(
        svc: &DecisionService<MemorySegments>,
        start: u64,
        n: u64,
        rewarded: bool,
    ) -> Vec<crate::engine::Decision> {
        let ctx = SimpleContext::new(vec![0.4], 3);
        (start..start + n)
            .map(|i| {
                let d = svc.decide((i % 2) as usize, i * 100, &ctx).unwrap();
                if rewarded {
                    assert_eq!(
                        svc.reward(d.request_id, i * 100 + 10, 1.0),
                        JoinOutcome::Joined
                    );
                }
                d
            })
            .collect()
    }

    #[test]
    fn checkpoint_state_round_trips_through_json() {
        let svc = DecisionService::new(config(3), MemorySegments::new());
        serve(&svc, 0, 10, true);
        drain(&svc);
        let state = svc.checkpoint_state(7);
        let json = serde_json::to_string(&state).unwrap();
        let back: ServiceCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cursor, 7);
        assert_eq!(back.shards, state.shards);
        assert_eq!(back.joiner, state.joiner);
        assert_eq!(back.counters, state.counters);
        assert_eq!(back.decision_seq, 10);
        assert_eq!(back.reward_seq, 10);
        // Same quiescent state ⇒ byte-identical payload.
        assert_eq!(
            json,
            serde_json::to_string(&svc.checkpoint_state(7)).unwrap()
        );
        svc.shutdown().unwrap();
    }

    #[test]
    fn resume_after_clean_checkpoint_continues_byte_for_byte() {
        // Uninterrupted reference: 80 decisions straight through.
        let ref_store = MemorySegments::new();
        let ref_svc = DecisionService::new(config(5), ref_store.clone());
        let mut expected = serve(&ref_svc, 0, 40, true);
        expected.extend(serve(&ref_svc, 40, 40, true));
        let ref_snap = ref_svc.metrics();
        let ref_store = ref_svc.shutdown().unwrap();
        let (ref_records, _) = ref_store.recover();

        // Interrupted run: checkpoint at the 40-decision wave boundary,
        // "crash" (shutdown), resume, serve the remaining 40.
        let store = MemorySegments::new();
        let ckpts = MemoryCheckpoints::new();
        let mut writer = CheckpointWriter::new(ckpts.clone(), 3).unwrap();
        let svc = DecisionService::new(config(5), store.clone());
        let mut got = serve(&svc, 0, 40, true);
        drain(&svc);
        svc.write_checkpoint(&mut writer, 1, 39 * 100).unwrap();
        let store = svc.shutdown().unwrap();

        let (svc, report) =
            DecisionService::resume(config(5), store.clone(), None, &ckpts, &store.snapshot())
                .unwrap();
        assert!(!report.cold_start);
        assert_eq!(report.cursor, 1);
        assert_eq!(report.replayed_decisions, 0, "nothing after the checkpoint");
        assert_eq!(report.replay_divergence, 0);
        got.extend(serve(&svc, 40, 40, true));
        assert_eq!(got, expected, "resumed stream must continue bit-for-bit");

        let snap = svc.metrics();
        assert_eq!(snap.decisions, ref_snap.decisions);
        assert_eq!(snap.explorations, ref_snap.explorations);
        assert_eq!(snap.join_hits, ref_snap.join_hits);
        assert_eq!(snap.restart_count, 1);
        assert_eq!(snap.checkpoints_written, 1);
        let store = svc.shutdown().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.quarantined_records, 0);
        assert_eq!(records, ref_records, "durable logs must be identical");
    }

    #[test]
    fn post_checkpoint_suffix_is_replayed_into_identical_state() {
        let ref_svc = DecisionService::new(config(7), MemorySegments::new());
        let mut expected = serve(&ref_svc, 0, 30, true);
        expected.extend(serve(&ref_svc, 30, 30, true));
        let ref_snap = ref_svc.metrics();
        ref_svc.shutdown().unwrap();

        // Crash 30 decisions *after* the checkpoint: those 30 decisions and
        // their outcomes exist only in the log and must replay.
        let ckpts = MemoryCheckpoints::new();
        let mut writer = CheckpointWriter::new(ckpts.clone(), 3).unwrap();
        let svc = DecisionService::new(config(7), MemorySegments::new());
        let mut got = serve(&svc, 0, 15, true);
        drain(&svc);
        svc.write_checkpoint(&mut writer, 1, 14 * 100).unwrap();
        got.extend(serve(&svc, 15, 15, true));
        drain(&svc);
        let store = svc.shutdown().unwrap();

        let (svc, report) =
            DecisionService::resume(config(7), store.clone(), None, &ckpts, &store.snapshot())
                .unwrap();
        assert_eq!(report.replayed_decisions, 15);
        assert_eq!(report.replayed_outcomes, 15);
        assert_eq!(report.replayed_joins, 15);
        assert_eq!(report.orphan_outcomes, 0);
        assert_eq!(report.replay_divergence, 0);
        got.extend(serve(&svc, 30, 30, true));
        assert_eq!(got, expected);
        let snap = svc.metrics();
        assert_eq!(snap.decisions, ref_snap.decisions);
        assert_eq!(snap.explorations, ref_snap.explorations);
        assert_eq!(snap.log_enqueued, ref_snap.log_enqueued);
        assert_eq!(snap.join_hits, ref_snap.join_hits);
        assert_eq!(snap.replayed_joins, 15);
        svc.shutdown().unwrap();
    }

    #[test]
    fn damaged_checkpoints_fall_back_and_are_counted() {
        let ckpts = MemoryCheckpoints::new();
        let mut writer = CheckpointWriter::new(ckpts.clone(), 4).unwrap();
        let svc = DecisionService::new(config(9), MemorySegments::new());
        serve(&svc, 0, 10, true);
        drain(&svc);
        svc.write_checkpoint(&mut writer, 1, 900).unwrap();
        serve(&svc, 10, 10, true);
        drain(&svc);
        let newest = svc.write_checkpoint(&mut writer, 2, 1900).unwrap();
        assert!(ckpts.tear(newest, 0.5), "damage the newest at rest");
        let store = svc.shutdown().unwrap();

        let (svc, report) =
            DecisionService::resume(config(9), store.clone(), None, &ckpts, &store.snapshot())
                .unwrap();
        assert_eq!(report.loaded_seq, Some(0), "fell back to the older one");
        assert_eq!(report.checkpoints_discarded, 1);
        assert_eq!(report.cursor, 1);
        assert_eq!(report.replayed_decisions, 10, "the second wave replays");
        assert_eq!(svc.metrics().checkpoints_discarded, 1);
        svc.shutdown().unwrap();
    }

    #[test]
    fn all_checkpoints_damaged_degenerates_to_cold_full_log_replay() {
        let ckpts = MemoryCheckpoints::new();
        let mut writer = CheckpointWriter::new(ckpts.clone(), 4).unwrap();
        let svc = DecisionService::new(config(11), MemorySegments::new());
        serve(&svc, 0, 20, true);
        drain(&svc);
        let seq = svc.write_checkpoint(&mut writer, 1, 1900).unwrap();
        assert!(ckpts.corrupt(seq, 0x40));
        let store = svc.shutdown().unwrap();

        let (svc, report) =
            DecisionService::resume(config(11), store.clone(), None, &ckpts, &store.snapshot())
                .unwrap();
        assert!(report.cold_start);
        assert_eq!(report.checkpoints_discarded, 1);
        assert_eq!(report.replayed_decisions, 20, "the whole log replays");
        assert_eq!(report.replayed_joins, 20);
        assert_eq!(report.replay_divergence, 0);
        let snap = svc.metrics();
        assert_eq!(snap.decisions, 20);
        assert_eq!(snap.join_hits, 20);
        assert_eq!(snap.restart_count, 1);
        // The cold replay reconstructed the shard streams: new decisions
        // continue with fresh, unique ids.
        let d = svc
            .decide(0, 10_000, &SimpleContext::new(vec![0.4], 3))
            .unwrap();
        assert_eq!(d.request_id & ((1 << SEQ_BITS) - 1), 10);
        svc.shutdown().unwrap();
    }

    #[test]
    fn orphan_outcomes_are_counted_lost_never_dropped() {
        // Hand-build a log whose only decision was quarantined away: the
        // outcome record survives alone.
        let store = MemorySegments::new();
        let svc = DecisionService::new(config(13), store.clone());
        let d = serve(&svc, 0, 1, true).remove(0);
        drain(&svc);
        let store = svc.shutdown().unwrap();
        // Keep only the outcome: drop the decision frame by re-writing the
        // segment list with the decision's bytes torn off the front.
        let (records, _) = store.recover();
        assert_eq!(records.len(), 2);
        let outcome_only: Vec<LogRecord> =
            records.into_iter().filter(|r| !r.is_decision()).collect();
        assert_eq!(outcome_only.len(), 1);
        let mut seg = harvest_log::segment::SegmentedLogWriter::new(
            MemorySegments::new(),
            harvest_log::segment::SegmentConfig::default(),
        );
        for r in &outcome_only {
            seg.write(r).unwrap();
        }
        let lone = seg.into_sink().unwrap();

        let ckpts = MemoryCheckpoints::new();
        let (svc, report) = DecisionService::resume(
            config(13),
            MemorySegments::new(),
            None,
            &ckpts,
            &lone.snapshot(),
        )
        .unwrap();
        assert_eq!(report.replayed_outcomes, 1);
        assert_eq!(report.orphan_outcomes, 1);
        assert_eq!(report.replayed_joins, 0);
        let snap = svc.metrics();
        assert_eq!(snap.rewards_lost, 1, "orphan reward is lost, not vanished");
        assert_eq!(snap.join_hits, 0);
        let _ = d;
        svc.shutdown().unwrap();
    }

    #[test]
    fn chaos_tear_and_corrupt_damage_the_published_checkpoint() {
        use harvest_sim_net::fault::ChaosPlan;
        let ckpts = MemoryCheckpoints::new();
        let mut writer = CheckpointWriter::new(ckpts.clone(), 4).unwrap();
        let plan = ChaosPlan::none()
            .fault_checkpoint_at(0, CheckpointFault::Tear { keep_frac: 0.5 })
            .fault_checkpoint_at(1, CheckpointFault::Corrupt { xor: 0x08 });
        let svc = DecisionService::with_chaos(config(17), MemorySegments::new(), plan);
        serve(&svc, 0, 5, true);
        drain(&svc);
        svc.write_checkpoint(&mut writer, 1, 400).unwrap();
        svc.write_checkpoint(&mut writer, 2, 400).unwrap();
        svc.write_checkpoint(&mut writer, 3, 400).unwrap();
        let store = svc.shutdown().unwrap();
        // Checkpoints 0 (torn) and 1 (corrupt) must both fail validation;
        // recovery lands on the clean third one.
        let (svc, report) =
            DecisionService::resume(config(17), store.clone(), None, &ckpts, &store.snapshot())
                .unwrap();
        assert_eq!(report.loaded_seq, Some(2));
        assert_eq!(report.cursor, 3);
        assert_eq!(report.checkpoints_discarded, 0, "newest is valid");
        svc.shutdown().unwrap();
    }
}

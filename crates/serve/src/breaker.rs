//! The degraded-mode circuit breaker.
//!
//! When the log pipeline degrades — records dropped or quarantined, writer
//! restarting or permanently down, trainer crashing, or the promotion
//! gate's confidence interval collapsing — continuing to serve the learned
//! incumbent is the risky move: its value estimate rests on a log we can no
//! longer trust to be complete. The paper's §3 answer is a *safe arm*: a
//! default policy whose worst case is known. The breaker decides when to
//! serve it.
//!
//! States are the classic two: **closed** (healthy, serve the incumbent)
//! and **open** (degraded, serve the safe policy). A trip happens when
//!
//! * the fault signal ([`ServeMetrics::fault_signal`]) rises by at least
//!   `trip_faults` within a `window`-decision window,
//! * the writer is permanently down (restart budget exhausted), or
//! * training reports a crash or a collapsed confidence radius.
//!
//! Re-arming requires `rearm_healthy` *consecutive* decisions with the
//! writer alive and a flat fault signal — sustained health, not one lucky
//! request. Trips and re-arms are counted in the metrics; decisions served
//! while open are stamped `degraded` and still log exact propensities, so
//! even degraded traffic remains harvestable.

use std::fmt;
use std::sync::Mutex;

use crate::error::lock_recovering;
use crate::metrics::ServeMetrics;

/// Why the breaker last tripped. Retained until the next trip (surviving
/// re-arms), so operators can always answer "why did we degrade?" from a
/// metrics snapshot instead of spelunking logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripReason {
    /// The fault signal rose by `delta` within one health-check window.
    FaultSlope {
        /// Fault-signal rise observed over the window.
        delta: u64,
    },
    /// The writer is permanently down (restart budget exhausted).
    WriterDown,
    /// The trainer panicked mid-round.
    TrainerCrash,
    /// The promotion gate's confidence radius collapsed (non-finite or
    /// over the configured ceiling) on real data.
    GateCollapsed {
        /// The offending confidence radius.
        radius: f64,
    },
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::FaultSlope { delta } => {
                write!(f, "fault_slope(delta={delta})")
            }
            TripReason::WriterDown => write!(f, "writer_down"),
            TripReason::TrainerCrash => write!(f, "trainer_crash"),
            TripReason::GateCollapsed { radius } => {
                write!(f, "gate_collapsed(radius={radius})")
            }
        }
    }
}

/// Circuit-breaker thresholds.
///
/// Construct via [`BreakerConfig::builder`] (validating) or from
/// [`BreakerConfig::default`]; `#[non_exhaustive]`, so out-of-crate
/// literal construction no longer compiles.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct BreakerConfig {
    /// Health-check window length, in decisions.
    pub window: u64,
    /// Fault-signal rise within one window that trips the breaker. Must be
    /// at least 1; a huge value disables slope-based tripping (explicit
    /// trips via writer death / trainer crash still fire).
    pub trip_faults: u64,
    /// Consecutive healthy decisions required to re-arm.
    pub rearm_healthy: u64,
    /// Gate confidence radii above this (or non-finite, with enough
    /// samples) count as estimator collapse and trip the breaker.
    pub max_gate_radius: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            trip_faults: 8,
            rearm_healthy: 128,
            max_gate_radius: 100.0,
        }
    }
}

impl BreakerConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> BreakerConfigBuilder {
        BreakerConfigBuilder(BreakerConfig::default())
    }
}

/// Builder for [`BreakerConfig`].
#[derive(Debug, Clone)]
pub struct BreakerConfigBuilder(BreakerConfig);

impl BreakerConfigBuilder {
    /// Health-check window length, in decisions (must stay ≥ 1).
    pub fn window(mut self, window: u64) -> Self {
        self.0.window = window;
        self
    }

    /// Fault-signal rise per window that trips the breaker (must stay
    /// ≥ 1; use a huge value to disable slope-based tripping).
    pub fn trip_faults(mut self, trip_faults: u64) -> Self {
        self.0.trip_faults = trip_faults;
        self
    }

    /// Consecutive healthy decisions required to re-arm (must stay ≥ 1).
    pub fn rearm_healthy(mut self, rearm_healthy: u64) -> Self {
        self.0.rearm_healthy = rearm_healthy;
        self
    }

    /// Gate confidence radius treated as estimator collapse.
    pub fn max_gate_radius(mut self, radius: f64) -> Self {
        self.0.max_gate_radius = radius;
        self
    }

    /// Validates and returns the config: `window`, `trip_faults`, and
    /// `rearm_healthy` must all be nonzero (a zero window or re-arm
    /// streak would divide the health check into nothing).
    pub fn build(self) -> Result<BreakerConfig, crate::error::ServeError> {
        for (name, v) in [
            ("window", self.0.window),
            ("trip_faults", self.0.trip_faults),
            ("rearm_healthy", self.0.rearm_healthy),
        ] {
            if v == 0 {
                return Err(crate::error::ServeError::InvalidConfig {
                    reason: format!("breaker {name} must be nonzero"),
                });
            }
        }
        Ok(self.0)
    }
}

#[derive(Debug, Default)]
struct BreakerState {
    open: bool,
    window_decisions: u64,
    window_start_faults: u64,
    last_faults: u64,
    healthy_streak: u64,
    last_trip: Option<TripReason>,
}

/// The breaker itself: one per service, consulted on every decision.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if `trip_faults == 0` (every window would trip) or
    /// `rearm_healthy == 0` (the breaker could never stay open).
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.trip_faults > 0, "trip_faults must be at least 1");
        assert!(cfg.rearm_healthy > 0, "rearm_healthy must be at least 1");
        assert!(cfg.window > 0, "window must be at least 1");
        CircuitBreaker {
            cfg,
            state: Mutex::new(BreakerState::default()),
        }
    }

    /// Whether the breaker is currently open (serving the safe policy).
    pub fn is_open(&self) -> bool {
        lock_recovering(&self.state, None).open
    }

    /// The reason for the most recent trip, or `None` if the breaker has
    /// never tripped. Survives re-arming.
    pub fn last_trip(&self) -> Option<TripReason> {
        lock_recovering(&self.state, None).last_trip
    }

    /// Consults the breaker for one decision. Returns `true` when this
    /// decision must be served by the safe policy.
    ///
    /// Closed: a dead writer trips immediately; otherwise the fault-signal
    /// slope is checked once per window. Open: health accrues when the
    /// writer is alive and the fault signal is flat; `rearm_healthy` in a
    /// row closes the breaker (and this decision serves normally).
    pub fn on_decision(&self, writer_alive: bool, metrics: &ServeMetrics) -> bool {
        let faults = metrics.fault_signal();
        let mut s = lock_recovering(&self.state, Some(metrics));
        if s.open {
            let healthy = writer_alive && faults == s.last_faults;
            s.last_faults = faults;
            if healthy {
                s.healthy_streak += 1;
            } else {
                s.healthy_streak = 0;
            }
            if s.healthy_streak >= self.cfg.rearm_healthy {
                s.open = false;
                s.healthy_streak = 0;
                s.window_decisions = 0;
                s.window_start_faults = faults;
                metrics.record_breaker_rearm();
                return false;
            }
            return true;
        }
        if !writer_alive {
            trip(&mut s, faults, TripReason::WriterDown, metrics);
            return true;
        }
        s.window_decisions += 1;
        if s.window_decisions >= self.cfg.window {
            let delta = faults.saturating_sub(s.window_start_faults);
            s.window_decisions = 0;
            s.window_start_faults = faults;
            if delta >= self.cfg.trip_faults {
                trip(&mut s, faults, TripReason::FaultSlope { delta }, metrics);
                return true;
            }
        }
        false
    }

    /// Reports a completed gate evaluation. A non-finite or oversized
    /// confidence radius on real data (`n > 1`) means the estimator has
    /// collapsed — the incumbent's pedigree is no longer trustworthy, so
    /// the breaker trips.
    pub fn note_gate(&self, n: usize, candidate_radius: f64, metrics: &ServeMetrics) {
        let collapsed = n > 1
            && !(candidate_radius.is_finite() && candidate_radius <= self.cfg.max_gate_radius);
        if collapsed {
            let mut s = lock_recovering(&self.state, Some(metrics));
            if !s.open {
                trip(
                    &mut s,
                    metrics.fault_signal(),
                    TripReason::GateCollapsed {
                        radius: candidate_radius,
                    },
                    metrics,
                );
            }
        }
    }

    /// Re-bases the fault-slope window on the current fault signal. A warm
    /// restart restores the previous incarnation's fault counters in one
    /// step; without a rebase the breaker's first window would read that
    /// entire history as a single-window rise and trip spuriously. Resets
    /// only the window accounting — a breaker is born closed, and whether
    /// it should re-open is judged on post-restart evidence.
    pub fn rebase(&self, metrics: &ServeMetrics) {
        let faults = metrics.fault_signal();
        let mut s = lock_recovering(&self.state, Some(metrics));
        s.window_decisions = 0;
        s.window_start_faults = faults;
        s.last_faults = faults;
    }

    /// Reports a trainer crash: trips the breaker unconditionally.
    pub fn note_trainer_crash(&self, metrics: &ServeMetrics) {
        let mut s = lock_recovering(&self.state, Some(metrics));
        if !s.open {
            trip(
                &mut s,
                metrics.fault_signal(),
                TripReason::TrainerCrash,
                metrics,
            );
        }
    }
}

fn trip(s: &mut BreakerState, faults: u64, reason: TripReason, metrics: &ServeMetrics) {
    s.open = true;
    s.healthy_streak = 0;
    s.last_faults = faults;
    s.last_trip = Some(reason);
    metrics.record_breaker_trip();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn breaker(window: u64, trip_faults: u64, rearm: u64) -> (CircuitBreaker, Arc<ServeMetrics>) {
        (
            CircuitBreaker::new(BreakerConfig {
                window,
                trip_faults,
                rearm_healthy: rearm,
                max_gate_radius: 10.0,
            }),
            Arc::new(ServeMetrics::new()),
        )
    }

    #[test]
    fn stays_closed_while_healthy() {
        let (b, m) = breaker(4, 2, 8);
        for _ in 0..100 {
            assert!(!b.on_decision(true, &m));
        }
        assert_eq!(m.snapshot().breaker_trips, 0);
    }

    #[test]
    fn trips_on_fault_slope_and_rearms_after_sustained_health() {
        let (b, m) = breaker(4, 2, 8);
        assert!(!b.on_decision(true, &m));
        m.record_dropped();
        m.record_quarantined(1);
        // The window closes on the 4th decision and sees a delta of 2.
        assert!(!b.on_decision(true, &m));
        assert!(!b.on_decision(true, &m));
        assert!(b.on_decision(true, &m), "breaker should trip at window end");
        assert!(b.is_open());
        assert_eq!(m.snapshot().breaker_trips, 1);
        // 7 healthy decisions keep it open; the 8th re-arms.
        for _ in 0..7 {
            assert!(b.on_decision(true, &m));
        }
        assert!(!b.on_decision(true, &m), "8th healthy decision re-arms");
        assert!(!b.is_open());
        assert_eq!(m.snapshot().breaker_rearms, 1);
    }

    #[test]
    fn a_new_fault_resets_the_healthy_streak() {
        let (b, m) = breaker(2, 1, 4);
        m.record_dropped();
        b.on_decision(true, &m);
        assert!(b.on_decision(true, &m) || b.is_open());
        for _ in 0..3 {
            assert!(b.on_decision(true, &m));
        }
        m.record_dropped(); // fault mid-recovery: streak resets
        assert!(b.on_decision(true, &m));
        for _ in 0..3 {
            assert!(b.on_decision(true, &m));
        }
        assert!(!b.on_decision(true, &m), "full streak after the reset");
    }

    #[test]
    fn dead_writer_trips_immediately_and_blocks_rearm() {
        let (b, m) = breaker(64, 1000, 4);
        assert!(b.on_decision(false, &m));
        assert!(b.is_open());
        // Health never accrues while the writer stays dead.
        for _ in 0..50 {
            assert!(b.on_decision(false, &m));
        }
        assert_eq!(m.snapshot().breaker_rearms, 0);
    }

    #[test]
    fn collapsed_gate_radius_trips_but_bootstrap_noise_does_not() {
        let (b, m) = breaker(64, 1000, 4);
        // n ≤ 1 is bootstrap noise (radius_of returns ∞ by design): no trip.
        b.note_gate(0, f64::INFINITY, &m);
        b.note_gate(1, f64::NAN, &m);
        assert!(!b.is_open());
        // A real dataset with a collapsed CI trips.
        b.note_gate(500, f64::INFINITY, &m);
        assert!(b.is_open());
        assert_eq!(m.snapshot().breaker_trips, 1);
        // A second report while open does not double-trip.
        b.note_gate(500, 1e9, &m);
        assert_eq!(m.snapshot().breaker_trips, 1);
    }

    #[test]
    fn trainer_crash_trips() {
        let (b, m) = breaker(64, 1000, 4);
        b.note_trainer_crash(&m);
        assert!(b.is_open());
        assert_eq!(m.snapshot().breaker_trips, 1);
        assert_eq!(b.last_trip(), Some(TripReason::TrainerCrash));
    }

    #[test]
    fn trip_reasons_are_recorded_and_survive_rearm() {
        let (b, m) = breaker(2, 1, 2);
        assert_eq!(b.last_trip(), None);
        assert!(b.on_decision(false, &m));
        assert_eq!(b.last_trip(), Some(TripReason::WriterDown));
        assert!(b.on_decision(true, &m));
        assert!(!b.on_decision(true, &m), "second healthy decision re-arms");
        assert_eq!(
            b.last_trip(),
            Some(TripReason::WriterDown),
            "reason survives re-arm"
        );
        b.note_gate(500, f64::INFINITY, &m);
        assert!(matches!(
            b.last_trip(),
            Some(TripReason::GateCollapsed { .. })
        ));
    }

    #[test]
    fn rebase_absorbs_restored_fault_counters() {
        let (b, m) = breaker(4, 2, 8);
        // A warm restart restores a fault-heavy history in one step …
        for _ in 0..10 {
            m.record_dropped();
        }
        b.rebase(&m);
        // … which a rebased breaker does not read as a fresh fault slope.
        for _ in 0..20 {
            assert!(!b.on_decision(true, &m));
        }
        assert_eq!(m.snapshot().breaker_trips, 0);
        // New faults after the rebase still trip normally.
        m.record_dropped();
        m.record_dropped();
        for _ in 0..4 {
            b.on_decision(true, &m);
        }
        assert!(b.is_open());
    }

    #[test]
    fn trip_reasons_render_for_operators() {
        assert_eq!(
            TripReason::FaultSlope { delta: 9 }.to_string(),
            "fault_slope(delta=9)"
        );
        assert_eq!(TripReason::WriterDown.to_string(), "writer_down");
        assert_eq!(TripReason::TrainerCrash.to_string(), "trainer_crash");
        assert_eq!(
            TripReason::GateCollapsed { radius: 1.5 }.to_string(),
            "gate_collapsed(radius=1.5)"
        );
    }
}

//! Telemetry exporters: a JSON snapshot and Prometheus text exposition.
//!
//! Both renderings are **deterministic**: every number they carry derives
//! from logical time, seeded RNGs, and monotone counters, and both walk
//! their fields in a fixed order — so two same-seed runs produce
//! byte-identical pages. That property is asserted by integration tests and
//! is what makes the exposition diffable across runs: any byte that changes
//! is a behavior change, not noise.
//!
//! The JSON side ([`ObsSnapshot`]) is the machine-readable union of the
//! counter snapshot, the breaker's state *and last trip reason*, the latest
//! harvest-quality gauges from the promotion gate, histogram summaries, and
//! the tracer's conservation audit. The Prometheus side renders the same
//! facts in text exposition format for scrape-based collection; see
//! [`export_prometheus`] for the metric families emitted.

use harvest_estimators::{HarvestQuality, PortfolioReport};
use harvest_obs::{HistogramSummary, PromText, TraceAudit};
use serde::Serialize;

use crate::breaker::TripReason;
use crate::metrics::{MetricsSnapshot, ServeMetrics};

/// Point-in-time JSON-serializable view of everything the service can
/// report about itself. Histogram and trace fields are `None` when the
/// service was built without an observability bundle.
#[derive(Debug, Clone, Serialize)]
pub struct ObsSnapshot {
    /// Counter snapshot with derived rates.
    pub metrics: MetricsSnapshot,
    /// Whether the breaker is serving the safe policy right now.
    pub breaker_open: bool,
    /// Human-readable reason for the most recent trip, if any ever fired.
    pub breaker_last_trip: Option<String>,
    /// Harvest-quality gauges from the most recent completed gate round.
    pub quality: Option<HarvestQuality>,
    /// Ranked portfolio leaderboard from the most recent shadow-evaluation
    /// round.
    pub leaderboard: Option<PortfolioReport>,
    /// Per-shard logical inter-arrival gap between consecutive decisions.
    pub decision_interarrival_ns: Option<HistogramSummary>,
    /// Logical delay between a decision and its joined reward.
    pub join_delay_ns: Option<HistogramSummary>,
    /// Joiner pending-set size sampled at every track call.
    pub join_queue_depth: Option<HistogramSummary>,
    /// Records per sealed log segment.
    pub segment_records: Option<HistogramSummary>,
    /// Bytes per sealed log segment.
    pub segment_bytes: Option<HistogramSummary>,
    /// The tracer's lifecycle-conservation audit.
    pub trace: Option<TraceAudit>,
}

/// Builds the JSON-serializable snapshot. `breaker_open` and `last_trip`
/// come from the breaker because the metrics handle does not know them.
pub fn obs_snapshot(
    metrics: &ServeMetrics,
    breaker_open: bool,
    last_trip: Option<TripReason>,
) -> ObsSnapshot {
    let obs = metrics.obs();
    ObsSnapshot {
        metrics: metrics.snapshot(),
        breaker_open,
        breaker_last_trip: last_trip.map(|r| r.to_string()),
        quality: obs.and_then(|o| o.quality()),
        leaderboard: obs.and_then(|o| o.leaderboard()),
        decision_interarrival_ns: obs.map(|o| o.interarrival_histogram().summary()),
        join_delay_ns: obs.map(|o| o.join_delay_histogram().summary()),
        join_queue_depth: obs.map(|o| o.join_queue_depth_histogram().summary()),
        segment_records: obs.map(|o| o.segment_records_histogram().summary()),
        segment_bytes: obs.map(|o| o.segment_bytes_histogram().summary()),
        trace: obs.map(|o| o.tracer().audit()),
    }
}

/// Numeric code for the last trip reason, for the scrape side (labels are
/// out of scope for the minimal exposition writer): 0 = never tripped,
/// 1 = fault slope, 2 = writer down, 3 = trainer crash, 4 = gate collapsed.
fn trip_code(last_trip: Option<TripReason>) -> f64 {
    match last_trip {
        None => 0.0,
        Some(TripReason::FaultSlope { .. }) => 1.0,
        Some(TripReason::WriterDown) => 2.0,
        Some(TripReason::TrainerCrash) => 3.0,
        Some(TripReason::GateCollapsed { .. }) => 4.0,
    }
}

/// Renders the full Prometheus text exposition page.
///
/// Families: `harvest_*_total` counters mirroring every
/// [`MetricsSnapshot`] counter, derived-rate and breaker gauges
/// (`harvest_log_conservation_ok` is 1 when the drained ledger balances),
/// `harvest_quality_*` gauges (zeros until the first gate round),
/// `harvest_trace_*` conservation-audit counters, and the
/// observability histograms.
///
/// A service that carries a [`HarvestScope`](crate::scope::HarvestScope)
/// appends its alert and stage-latency families before finishing the page
/// (see `DecisionService::export_prometheus`); this free function renders
/// the scope-less base page.
pub fn export_prometheus(
    metrics: &ServeMetrics,
    breaker_open: bool,
    last_trip: Option<TripReason>,
) -> String {
    prometheus_page(metrics, breaker_open, last_trip).finish()
}

/// The base exposition page as a builder still open for appending — the
/// scope-carrying service adds its families before `finish()` so the
/// in-process page and the wire OPS scrape render from one code path.
pub(crate) fn prometheus_page(
    metrics: &ServeMetrics,
    breaker_open: bool,
    last_trip: Option<TripReason>,
) -> PromText {
    let s = metrics.snapshot();
    let mut p = PromText::new();
    p.counter("harvest_decisions_total", "Decisions served.", s.decisions);
    p.counter(
        "harvest_explorations_total",
        "Decisions where the exploration branch fired.",
        s.explorations,
    );
    p.counter(
        "harvest_log_enqueued_total",
        "Records offered to the log pipeline.",
        s.log_enqueued,
    );
    p.counter(
        "harvest_log_written_total",
        "Records persisted by the writer thread.",
        s.log_written,
    );
    p.counter(
        "harvest_log_dropped_total",
        "Records dropped by backpressure, shutdown, or a dead writer.",
        s.log_dropped,
    );
    p.counter(
        "harvest_log_quarantined_total",
        "Records lost to damage, counted never skipped.",
        s.log_quarantined,
    );
    p.counter(
        "harvest_join_hits_total",
        "Rewards joined within the TTL.",
        s.join_hits,
    );
    p.counter(
        "harvest_join_duplicates_total",
        "Rewards refused as duplicates.",
        s.join_duplicates,
    );
    p.counter(
        "harvest_join_late_total",
        "Rewards refused as late.",
        s.join_late,
    );
    p.counter(
        "harvest_join_unknown_total",
        "Rewards whose decision was never tracked.",
        s.join_unknown,
    );
    p.counter(
        "harvest_timed_out_decisions_total",
        "Tracked decisions whose TTL lapsed unrewarded.",
        s.timed_out_decisions,
    );
    p.counter("harvest_swaps_total", "Policy hot-swaps.", s.swaps);
    p.counter(
        "harvest_lock_recoveries_total",
        "Shard-level faults recovered (wedge recoveries included; legacy name).",
        s.lock_recoveries,
    );
    p.counter(
        "harvest_shard_wedges_total",
        "Wedged shard cells recovered at acquisition.",
        s.shard_wedges,
    );
    p.counter(
        "harvest_writer_restarts_total",
        "Writer-thread restarts by the supervisor.",
        s.writer_restarts,
    );
    p.counter(
        "harvest_trainer_crashes_total",
        "Trainer crashes caught mid-fit.",
        s.trainer_crashes,
    );
    p.counter(
        "harvest_breaker_trips_total",
        "Circuit-breaker trips.",
        s.breaker_trips,
    );
    p.counter(
        "harvest_breaker_rearms_total",
        "Circuit-breaker re-arms.",
        s.breaker_rearms,
    );
    p.counter(
        "harvest_degraded_decisions_total",
        "Decisions served by the safe policy.",
        s.degraded_decisions,
    );
    p.counter(
        "harvest_rewards_lost_total",
        "Reward deliveries lost in flight.",
        s.rewards_lost,
    );
    p.counter(
        "harvest_admission_shed_total",
        "Requests refused at the admission door before reaching a shard.",
        s.admission_shed,
    );
    p.counter(
        "harvest_watchdog_faults_total",
        "Watchdog firings fed into the breaker's fault signal.",
        s.watchdog_faults,
    );
    p.counter(
        "harvest_checkpoints_written_total",
        "Control-plane checkpoints published.",
        s.checkpoints_written,
    );
    p.counter(
        "harvest_checkpoints_discarded_total",
        "Checkpoints rejected at recovery as torn, corrupt, or unparsable.",
        s.checkpoints_discarded,
    );
    p.counter(
        "harvest_recovered_records_total",
        "Log records recovered from durable segments at warm restart.",
        s.recovered_records,
    );
    p.counter(
        "harvest_replayed_joins_total",
        "Outcomes replayed into the joiner during warm restart.",
        s.replayed_joins,
    );
    p.counter(
        "harvest_segments_compacted_total",
        "Sealed segments retired by lifecycle compaction.",
        s.segments_compacted,
    );
    p.counter(
        "harvest_restarts_total",
        "Warm restarts (service resumed from checkpoint or cold replay).",
        s.restart_count,
    );
    p.gauge(
        "harvest_checkpoint_age_ns",
        "Logical ns between the last decision and the last checkpoint.",
        s.checkpoint_age_ns as f64,
    );
    p.gauge(
        "harvest_exploration_rate",
        "explorations / decisions.",
        s.exploration_rate,
    );
    p.gauge(
        "harvest_decisions_per_logical_sec",
        "Decisions per logical second of stamped time.",
        s.decisions_per_sec,
    );
    p.gauge(
        "harvest_join_hit_rate",
        "hits / all join attempts.",
        s.join_hit_rate,
    );
    p.gauge(
        "harvest_log_backlog",
        "Records still queued for the writer.",
        s.log_backlog as f64,
    );
    p.gauge(
        "harvest_log_conservation_ok",
        "1 when enqueued == written + dropped + quarantined (drained).",
        if s.log_backlog == 0 { 1.0 } else { 0.0 },
    );
    p.gauge(
        "harvest_breaker_open",
        "1 while the breaker serves the safe policy.",
        if breaker_open { 1.0 } else { 0.0 },
    );
    p.gauge(
        "harvest_breaker_last_trip_code",
        "0 never, 1 fault slope, 2 writer down, 3 trainer crash, 4 gate collapsed.",
        trip_code(last_trip),
    );
    let obs = metrics.obs();
    // Quality gauges always present (zeros before the first gate round), so
    // scrapers and the CI grep see a stable set of families.
    let q = obs
        .and_then(|o| o.quality())
        .unwrap_or_else(HarvestQuality::empty);
    p.gauge(
        "harvest_quality_samples",
        "Harvested samples behind the latest gate round.",
        q.n as f64,
    );
    p.gauge(
        "harvest_quality_ess",
        "Kish effective sample size of the candidate's importance weights.",
        q.effective_sample_size,
    );
    p.gauge("harvest_quality_ess_fraction", "ESS / n.", q.ess_fraction);
    p.gauge(
        "harvest_quality_min_weight",
        "Smallest importance weight.",
        q.min_weight,
    );
    p.gauge(
        "harvest_quality_max_weight",
        "Largest importance weight.",
        q.max_weight,
    );
    p.gauge(
        "harvest_quality_clipped_weight_mass",
        "Share of importance mass above the diagnostic clip.",
        q.clipped_weight_mass,
    );
    p.gauge(
        "harvest_quality_floor_hit_rate",
        "Share of samples logged at the propensity floor.",
        q.floor_hit_rate,
    );
    p.gauge(
        "harvest_quality_drift_max_effect_size",
        "Largest per-feature effect size between harvest halves.",
        q.drift_max_effect_size,
    );
    p.gauge(
        "harvest_quality_drift_max_ks",
        "Largest per-feature KS statistic between harvest halves.",
        q.drift_max_ks,
    );
    p.gauge(
        "harvest_quality_drift_suspected",
        "1 when within-harvest drift breaches the A1 thresholds.",
        if q.drift_suspected { 1.0 } else { 0.0 },
    );
    // Portfolio gauges likewise always present (zeros before the first
    // shadow-evaluation round); a non-finite winner LCB renders as 0 so the
    // exposition stays parseable.
    let lb = obs.and_then(|o| o.leaderboard());
    let (lb_candidates, lb_samples, lb_winner_lcb, lb_winner_ess) =
        match lb.as_ref().and_then(|l| l.winner().map(|w| (l, w))) {
            Some((l, w)) => (
                l.entries.len() as f64,
                l.n as f64,
                if w.snips.lcb.is_finite() {
                    w.snips.lcb
                } else {
                    0.0
                },
                w.ess,
            ),
            None => (0.0, 0.0, 0.0, 0.0),
        };
    p.gauge(
        "harvest_portfolio_candidates",
        "Candidates scored by the latest shadow-evaluation round.",
        lb_candidates,
    );
    p.gauge(
        "harvest_portfolio_samples",
        "Samples behind the latest leaderboard.",
        lb_samples,
    );
    p.gauge(
        "harvest_portfolio_winner_lcb",
        "Leaderboard winner's SNIPS lower confidence bound (0 when not finite).",
        lb_winner_lcb,
    );
    p.gauge(
        "harvest_portfolio_winner_ess",
        "Leaderboard winner's effective sample size.",
        lb_winner_ess,
    );
    if let Some(o) = obs {
        let audit = o.tracer().audit();
        p.counter(
            "harvest_trace_decided_total",
            "Decision traces opened.",
            audit.decided,
        );
        p.counter(
            "harvest_trace_written_total",
            "Traces terminated written.",
            audit.written,
        );
        p.counter(
            "harvest_trace_dropped_total",
            "Traces terminated dropped.",
            audit.dropped,
        );
        p.counter(
            "harvest_trace_quarantined_total",
            "Traces terminated quarantined.",
            audit.quarantined,
        );
        p.counter(
            "harvest_trace_unterminated",
            "Traces still awaiting a terminal state.",
            audit.unterminated,
        );
        p.counter(
            "harvest_trace_joined_total",
            "Traces with a joined reward.",
            audit.joined,
        );
        p.counter(
            "harvest_trace_trained_total",
            "Traces whose record entered a training round.",
            audit.trained,
        );
        p.counter(
            "harvest_trace_evictions_total",
            "Traces evicted by ring-buffer capacity.",
            audit.evictions,
        );
        // Canonical tracer-health name for the same count; the legacy
        // `harvest_trace_evictions_total` family above stays for
        // dashboards already scraping it.
        p.counter(
            "harvest_trace_evicted_total",
            "Traces evicted by ring-buffer FIFO capacity (canonical name).",
            audit.evictions,
        );
        p.counter(
            "harvest_trace_late_events_total",
            "Events that arrived after their trace was evicted.",
            audit.late_events,
        );
        p.counter(
            "harvest_trace_terminal_conflicts_total",
            "Traces offered two different terminal states.",
            audit.terminal_conflicts,
        );
        p.counter(
            "harvest_stage_journal_dropped_total",
            "Stage-journal entries dropped to the ring bound.",
            o.stage_journal_dropped(),
        );
        p.histogram(
            "harvest_trace_flush_depth",
            "Deferred-terminal events applied per tracer inbox flush.",
            &o.tracer().flush_depth_histogram(),
        );
        p.histogram(
            "harvest_gate_span_ns",
            "Logical span of each training round's harvest (gate to promote).",
            &o.gate_span_histogram(),
        );
        p.histogram(
            "harvest_decision_interarrival_ns",
            "Per-shard logical gap between consecutive decisions.",
            &o.interarrival_histogram(),
        );
        p.histogram(
            "harvest_join_delay_ns",
            "Logical delay between a decision and its joined reward.",
            &o.join_delay_histogram(),
        );
        p.histogram(
            "harvest_join_queue_depth",
            "Joiner pending-set size sampled at every track call.",
            &o.join_queue_depth_histogram(),
        );
        p.histogram(
            "harvest_segment_records",
            "Records per sealed log segment.",
            &o.segment_records_histogram(),
        );
        p.histogram(
            "harvest_segment_bytes",
            "Bytes per sealed log segment.",
            &o.segment_bytes_histogram(),
        );
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, ServeObs};
    use std::sync::Arc;

    #[test]
    fn snapshot_without_obs_has_no_histograms_but_serializes() {
        let m = ServeMetrics::new();
        let snap = obs_snapshot(&m, false, None);
        assert!(snap.trace.is_none());
        assert!(snap.quality.is_none());
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"breaker_open\":false"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn exposition_is_stable_and_carries_quality_families() {
        let m = ServeMetrics::with_obs(Arc::new(ServeObs::new(&ObsConfig::default())));
        m.record_decision(10, true);
        let page_a = export_prometheus(&m, false, None);
        let page_b = export_prometheus(&m, false, None);
        assert_eq!(page_a, page_b, "same state must render byte-identically");
        for family in [
            "harvest_decisions_total 1",
            "harvest_quality_ess 0",
            "harvest_portfolio_candidates 0",
            "harvest_portfolio_samples 0",
            "harvest_portfolio_winner_lcb 0",
            "harvest_portfolio_winner_ess 0",
            "harvest_log_conservation_ok 1",
            "harvest_trace_decided_total 0",
            "harvest_checkpoints_written_total 0",
            "harvest_checkpoints_discarded_total 0",
            "harvest_recovered_records_total 0",
            "harvest_replayed_joins_total 0",
            "harvest_segments_compacted_total 0",
            "harvest_restarts_total 0",
            "harvest_checkpoint_age_ns 0",
            "harvest_watchdog_faults_total 0",
            "harvest_trace_evicted_total 0",
            "harvest_stage_journal_dropped_total 0",
            "# TYPE harvest_trace_flush_depth histogram",
            "# TYPE harvest_gate_span_ns histogram",
            "# TYPE harvest_decision_interarrival_ns histogram",
        ] {
            assert!(page_a.contains(family), "missing `{family}` in:\n{page_a}");
        }
        harvest_obs::validate_exposition(&page_a).expect("base page validates");
    }

    #[test]
    fn trip_reason_reaches_both_exports() {
        let m = ServeMetrics::new();
        let snap = obs_snapshot(&m, true, Some(TripReason::WriterDown));
        assert_eq!(snap.breaker_last_trip.as_deref(), Some("writer_down"));
        let page = export_prometheus(&m, true, Some(TripReason::WriterDown));
        assert!(page.contains("harvest_breaker_open 1"));
        assert!(page.contains("harvest_breaker_last_trip_code 2"));
    }
}

//! Reusable output buffer for the batched decide path.
//!
//! [`DecisionBatch`] is the caller-owned scratch that
//! [`DecisionService::decide_batch`](crate::service::DecisionService::decide_batch)
//! and [`DecisionEngine::decide_batch`](crate::engine::DecisionEngine::decide_batch)
//! fill. Reusing one across calls keeps the hot path's own allocations
//! amortized: the decision buffer and the degraded mask retain their
//! capacity between batches, so a steady-state serve loop allocates only
//! what the log record itself must own — one `Vec` of
//! [`BatchDecision`](harvest_log::record::BatchDecision) entries per batch
//! (the record is moved into the writer queue, so its buffer cannot be
//! reclaimed), plus the per-decision feature clones every logged decision
//! has always carried. That replaces the single-call path's per-decision
//! record allocation and per-decision queue hand-off with one of each per
//! batch.

use crate::engine::Decision;
use harvest_log::record::BatchDecision;

/// Caller-owned, reusable output buffer for one batched decide call.
///
/// Create it once (ideally with [`with_capacity`](DecisionBatch::with_capacity)
/// matching your batch size) and pass `&mut` to every `decide_batch` call;
/// each call clears and refills it.
#[derive(Debug, Default)]
pub struct DecisionBatch {
    /// The served decisions, in request order.
    pub(crate) decisions: Vec<Decision>,
    /// Staging for the batch log record's payload. `mem::take`n into the
    /// record at the end of each engine batch, so it is empty between
    /// calls; kept here so the field count documents the full allocation
    /// story in one place.
    pub(crate) entries: Vec<BatchDecision>,
    /// Per-decision degraded-mode mask, filled by the service layer from
    /// the circuit breaker *per decision* — the breaker can open or
    /// re-arm mid-batch, and the RNG draw sequence (hence the whole
    /// decision stream) depends on which policy serves each slot.
    pub(crate) degraded: Vec<bool>,
}

impl DecisionBatch {
    /// An empty batch buffer.
    pub fn new() -> Self {
        DecisionBatch::default()
    }

    /// An empty batch buffer with room for `n` decisions.
    pub fn with_capacity(n: usize) -> Self {
        DecisionBatch {
            decisions: Vec::with_capacity(n),
            entries: Vec::with_capacity(n),
            degraded: Vec::with_capacity(n),
        }
    }

    /// The decisions from the last `decide_batch` call, in request order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Number of decisions currently held.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the buffer holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Iterates the held decisions.
    pub fn iter(&self) -> std::slice::Iter<'_, Decision> {
        self.decisions.iter()
    }

    /// Clears all buffers, retaining capacity.
    pub(crate) fn reset(&mut self) {
        self.decisions.clear();
        self.entries.clear();
        self.degraded.clear();
    }
}

impl<'a> IntoIterator for &'a DecisionBatch {
    type Item = &'a Decision;
    type IntoIter = std::slice::Iter<'a, Decision>;

    fn into_iter(self) -> Self::IntoIter {
        self.decisions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_reset() {
        let mut b = DecisionBatch::with_capacity(64);
        b.degraded.extend(std::iter::repeat_n(false, 64));
        b.reset();
        assert!(b.is_empty());
        assert!(b.decisions.capacity() >= 64);
        assert!(b.degraded.capacity() >= 64);
        assert_eq!(b.iter().count(), 0);
    }
}

//! The background trainer and promotion gate.
//!
//! One training round is the paper's §3 loop in miniature: scavenge the
//! service's own decision log into exploration data ([`harvest_log`]), fit a
//! candidate reward model ([`harvest_core::learner::RegressionCbLearner`]),
//! then gate the candidate *as it would actually be served* — wrapped in the
//! same ε floor the engine applies — against the incumbent on the same
//! harvested data.
//!
//! The gate is deliberately asymmetric: the candidate must clear a
//! finite-sample **lower confidence bound** ([`empirical_bernstein_radius`])
//! above the incumbent's **point estimate**. A candidate that merely looks
//! good inside its own noise band is refused; only statistically-grounded
//! improvements reach the registry. This is what makes unattended continuous
//! promotion safe.

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::policy::UniformPolicy;
use harvest_core::scorer::LinearScorer;
use harvest_core::{Dataset, HarvestError, Scorer, SimpleContext};
use harvest_estimators::bounds::{empirical_bernstein_radius, BoundConfig};
use harvest_estimators::{harvest_quality, HarvestQuality};
use harvest_log::pipeline::{HarvestPipeline, HarvestReport};
use harvest_log::record::LogRecord;
use harvest_log::KnownPropensity;
use serde::Serialize;

use crate::registry::ServePolicy;

/// Which off-policy estimator the gate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateEstimator {
    /// Self-normalized IPS: bounded by the observed reward range, no reward
    /// model needed.
    Snips,
    /// Doubly robust: uses the candidate's own reward model as the
    /// direct-method baseline; lower variance when the model is decent.
    Dr,
}

/// Trainer and gate configuration.
///
/// Construct via [`TrainerConfig::builder`] or from
/// [`TrainerConfig::default`]; `#[non_exhaustive]`, so out-of-crate
/// literal construction no longer compiles.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TrainerConfig {
    /// The exploration floor the engine serves with; candidate and
    /// incumbent are both evaluated as served (ε-floored).
    pub epsilon: f64,
    /// Ridge regularizer for the candidate reward model.
    pub lambda: f64,
    /// How (context, action) pairs are featurized.
    pub modeling: ModelingMode,
    /// Constants for the confidence radius.
    pub bound: BoundConfig,
    /// The gate's estimator.
    pub estimator: GateEstimator,
    /// Refuse to promote from fewer harvested samples than this.
    pub min_samples: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epsilon: 0.1,
            lambda: 1.0,
            modeling: ModelingMode::PerAction,
            bound: BoundConfig {
                c: 2.0,
                delta: 0.05,
            },
            estimator: GateEstimator::Snips,
            min_samples: 100,
        }
    }
}

impl TrainerConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> TrainerConfigBuilder {
        TrainerConfigBuilder(TrainerConfig::default())
    }
}

/// Builder for [`TrainerConfig`].
#[derive(Debug, Clone)]
pub struct TrainerConfigBuilder(TrainerConfig);

impl TrainerConfigBuilder {
    /// The exploration floor candidates are evaluated under (should match
    /// the engine's ε).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.0.epsilon = epsilon;
        self
    }

    /// Ridge regularizer for the candidate reward model.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.0.lambda = lambda;
        self
    }

    /// How (context, action) pairs are featurized.
    pub fn modeling(mut self, modeling: ModelingMode) -> Self {
        self.0.modeling = modeling;
        self
    }

    /// Constants for the confidence radius.
    pub fn bound(mut self, bound: BoundConfig) -> Self {
        self.0.bound = bound;
        self
    }

    /// The gate's off-policy estimator.
    pub fn estimator(mut self, estimator: GateEstimator) -> Self {
        self.0.estimator = estimator;
        self
    }

    /// Refuse to promote from fewer harvested samples than this.
    pub fn min_samples(mut self, min_samples: usize) -> Self {
        self.0.min_samples = min_samples;
        self
    }

    /// Returns the config.
    pub fn build(self) -> TrainerConfig {
        self.0
    }
}

/// The gate's verdict, with everything needed to audit it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GateReport {
    /// Harvested samples the verdict rests on.
    pub n: usize,
    /// Candidate's as-served estimate.
    pub candidate_value: f64,
    /// The confidence radius subtracted from the candidate.
    pub candidate_radius: f64,
    /// `candidate_value − candidate_radius`.
    pub candidate_lcb: f64,
    /// Incumbent's as-served point estimate on the same data.
    pub incumbent_value: f64,
    /// Whether the candidate cleared the bar.
    pub promoted: bool,
    /// Why the gate ruled the way it did: `"promoted"`,
    /// `"insufficient_samples"`, or `"lcb_not_above_incumbent"`.
    pub reason: String,
    /// Harvest-quality diagnostics (ESS, weight concentration, propensity
    /// floor hits, drift) over the candidate's importance weights — the
    /// evidence behind the verdict, exported alongside it.
    pub quality: HarvestQuality,
}

/// One completed training round.
#[derive(Debug, Clone)]
pub struct TrainRound {
    /// The candidate reward model (promoted or not).
    pub scorer: LinearScorer,
    /// Scavenging provenance.
    pub harvest: HarvestReport,
    /// The gate's verdict.
    pub gate: GateReport,
}

/// Scavenges logs, trains candidates, and gates promotions.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 1]` or `lambda` is not positive.
    pub fn new(cfg: TrainerConfig) -> Self {
        assert!(
            cfg.epsilon > 0.0 && cfg.epsilon <= 1.0,
            "epsilon must be in (0, 1]"
        );
        assert!(
            cfg.lambda.is_finite() && cfg.lambda > 0.0,
            "lambda must be positive"
        );
        Trainer { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Step 1–2: joins decisions with outcomes and validates propensities.
    /// The engine stamps exact propensities, so logged values are trusted;
    /// uniform is the fallback for records that somehow lack one.
    pub fn harvest(
        &self,
        records: &[LogRecord],
    ) -> Result<(Dataset<SimpleContext>, HarvestReport), HarvestError> {
        HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true).run(records)
    }

    /// Step 3: fits the candidate reward model from harvested data.
    pub fn train(&self, data: &Dataset<SimpleContext>) -> Result<LinearScorer, HarvestError> {
        RegressionCbLearner::new(self.cfg.modeling, SampleWeighting::Uniform, self.cfg.lambda)?
            .fit(data)
    }

    /// Step 4: the promotion gate.
    ///
    /// Estimates both policies *as served* (ε-floored) on the same data and
    /// promotes only if the candidate's lower confidence bound beats the
    /// incumbent's point estimate.
    pub fn gate(
        &self,
        data: &Dataset<SimpleContext>,
        incumbent: &ServePolicy,
        candidate: &ServePolicy,
        model: &LinearScorer,
    ) -> GateReport {
        let n = data.len();
        let (candidate_value, terms) = self.estimate(data, candidate, model);
        let incumbent_value = self.estimate(data, incumbent, model).0;
        let candidate_radius = radius_of(&self.cfg.bound, &terms);
        let candidate_lcb = candidate_value - candidate_radius;
        let weights = self.importance_weights(data, candidate);
        let quality = harvest_quality(data, &weights, self.cfg.epsilon, WEIGHT_CLIP);
        let promoted = n >= self.cfg.min_samples && candidate_lcb > incumbent_value;
        let reason = if promoted {
            "promoted"
        } else if n < self.cfg.min_samples {
            "insufficient_samples"
        } else {
            "lcb_not_above_incumbent"
        };
        GateReport {
            n,
            candidate_value,
            candidate_radius,
            candidate_lcb,
            incumbent_value,
            promoted,
            reason: reason.to_string(),
            quality,
        }
    }

    /// The candidate's as-served importance weights `π(aₜ|xₜ)/pₜ`, the raw
    /// material for the harvest-quality gauges.
    fn importance_weights(&self, data: &Dataset<SimpleContext>, policy: &ServePolicy) -> Vec<f64> {
        data.iter()
            .map(|s| {
                let probs = policy.served_probabilities(&s.context, self.cfg.epsilon);
                probs[s.action] / s.propensity
            })
            .collect()
    }

    /// Runs a full round: harvest → train → gate. Does **not** touch the
    /// registry; the caller promotes iff `gate.promoted` (see
    /// [`DecisionService::train_and_maybe_promote`]).
    ///
    /// [`DecisionService::train_and_maybe_promote`]: crate::service::DecisionService::train_and_maybe_promote
    pub fn run_round(
        &self,
        records: &[LogRecord],
        incumbent: &ServePolicy,
    ) -> Result<TrainRound, HarvestError> {
        let (data, harvest) = self.harvest(records)?;
        let scorer = self.train(&data)?;
        let candidate = ServePolicy::Greedy(scorer.clone());
        let gate = self.gate(&data, incumbent, &candidate, &scorer);
        Ok(TrainRound {
            scorer,
            harvest,
            gate,
        })
    }

    /// The as-served estimate of `policy` on `data`, plus the per-sample
    /// terms whose spread sets the confidence radius.
    ///
    /// Targets here are stochastic (the served ε-floored distribution), so
    /// the importance weight is `π(aₜ|xₜ)/pₜ` rather than an indicator:
    ///
    /// * SNIPS: `Σ wₜ rₜ / Σ wₜ`, radius from the plain IPS terms `wₜ rₜ`
    ///   (a conservative proxy — SNIPS's own variance is never larger).
    /// * DR: `mean[ Σₐ π(a|xₜ) r̂(xₜ,a) + wₜ (rₜ − r̂(xₜ,aₜ)) ]`, radius
    ///   from exactly those terms.
    fn estimate(
        &self,
        data: &Dataset<SimpleContext>,
        policy: &ServePolicy,
        model: &LinearScorer,
    ) -> (f64, Vec<f64>) {
        let eps = self.cfg.epsilon;
        match self.cfg.estimator {
            GateEstimator::Snips => {
                let mut num = 0.0;
                let mut den = 0.0;
                let mut terms = Vec::with_capacity(data.len());
                for s in data {
                    let probs = policy.served_probabilities(&s.context, eps);
                    let w = probs[s.action] / s.propensity;
                    num += w * s.reward;
                    den += w;
                    terms.push(w * s.reward);
                }
                let value = if den > 0.0 { num / den } else { 0.0 };
                (value, terms)
            }
            GateEstimator::Dr => {
                let mut terms = Vec::with_capacity(data.len());
                for s in data {
                    let probs = policy.served_probabilities(&s.context, eps);
                    let baseline: f64 = probs
                        .iter()
                        .enumerate()
                        .map(|(a, &p)| p * model.score(&s.context, a))
                        .sum();
                    let w = probs[s.action] / s.propensity;
                    let correction = w * (s.reward - model.score(&s.context, s.action));
                    terms.push(baseline + correction);
                }
                let value = if terms.is_empty() {
                    0.0
                } else {
                    terms.iter().sum::<f64>() / terms.len() as f64
                };
                (value, terms)
            }
        }
    }
}

/// Weight magnitude above which importance mass counts as "clipped" in the
/// harvest-quality gauges. Diagnostic only — the estimators themselves never
/// clip; this flags how much of the estimate rides on rare heavy weights.
const WEIGHT_CLIP: f64 = 10.0;

/// Empirical-Bernstein radius of the mean of `terms` (k = 1 candidate).
/// Degenerate inputs (n ≤ 1) get an infinite radius: never promote on them.
fn radius_of(bound: &BoundConfig, terms: &[f64]) -> f64 {
    let n = terms.len();
    if n <= 1 {
        return f64::INFINITY;
    }
    let mean = terms.iter().sum::<f64>() / n as f64;
    let var = terms.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let min = terms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    empirical_bernstein_radius(bound, var, max - min, n as f64, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::LoggedDecision;
    use harvest_sim_net::rng::fork_rng;
    use rand::Rng;

    /// Uniform-logged data where action 0 pays `x` and action 1 pays
    /// `1 − x`: the crossing problem every learner in the workspace faces.
    fn crossing_data(n: usize, seed: u64) -> Dataset<SimpleContext> {
        let mut rng = fork_rng(seed, "trainer-test");
        let mut data = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let a = rng.gen_range(0..2usize);
            let r = if a == 0 { x } else { 1.0 - x };
            data.push(LoggedDecision {
                context: SimpleContext::new(vec![x], 2),
                action: a,
                reward: r,
                propensity: 0.5,
            })
            .unwrap();
        }
        data
    }

    /// φ is `[x, 1]`; these weights make action 0 score `x` and action 1
    /// score `1 − x` — the true reward, hence the optimal greedy policy.
    fn good_scorer() -> LinearScorer {
        LinearScorer::PerAction {
            weights: vec![vec![1.0, 0.0], vec![-1.0, 1.0]],
        }
    }

    /// The optimal policy inverted: picks the *worse* action everywhere.
    fn bad_scorer() -> LinearScorer {
        LinearScorer::PerAction {
            weights: vec![vec![-1.0, 1.0], vec![1.0, 0.0]],
        }
    }

    #[test]
    fn gate_accepts_a_clearly_better_candidate() {
        let data = crossing_data(4000, 1);
        let t = Trainer::new(TrainerConfig::default());
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        // Truth: candidate ≈ 0.75 (minus a little ε), incumbent = 0.5.
        assert!(report.promoted, "{report:?}");
        assert!(report.candidate_lcb > report.incumbent_value);
        assert!((report.incumbent_value - 0.5).abs() < 0.05, "{report:?}");
        assert_eq!(report.reason, "promoted");
        // Quality gauges ride along: uniform logging with a near-greedy
        // candidate halves the effective sample size, roughly.
        assert_eq!(report.quality.n, 4000);
        assert!(report.quality.effective_sample_size > 0.0);
        assert!(report.quality.ess_fraction <= 1.0 + 1e-12, "{report:?}");
    }

    #[test]
    fn gate_refuses_a_degraded_candidate() {
        let data = crossing_data(4000, 2);
        let t = Trainer::new(TrainerConfig::default());
        let candidate = ServePolicy::Greedy(bad_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &bad_scorer());
        // Truth: candidate ≈ 0.25 < incumbent 0.5 — refused decisively.
        assert!(!report.promoted, "{report:?}");
        assert!(report.candidate_value < report.incumbent_value);
        assert_eq!(report.reason, "lcb_not_above_incumbent");
    }

    #[test]
    fn gate_refuses_on_too_few_samples() {
        let data = crossing_data(20, 3);
        let t = Trainer::new(TrainerConfig {
            min_samples: 1000,
            ..TrainerConfig::default()
        });
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        assert!(!report.promoted);
        assert_eq!(report.reason, "insufficient_samples");
    }

    #[test]
    fn dr_gate_agrees_on_the_easy_cases() {
        let data = crossing_data(4000, 4);
        let t = Trainer::new(TrainerConfig {
            estimator: GateEstimator::Dr,
            ..TrainerConfig::default()
        });
        let good = ServePolicy::Greedy(good_scorer());
        let bad = ServePolicy::Greedy(bad_scorer());
        assert!(
            t.gate(&data, &ServePolicy::Uniform, &good, &good_scorer())
                .promoted
        );
        assert!(
            !t.gate(&data, &ServePolicy::Uniform, &bad, &bad_scorer())
                .promoted
        );
    }

    #[test]
    fn run_round_learns_the_crossing_policy_from_raw_records() {
        use harvest_log::record::{DecisionRecord, OutcomeRecord};
        let mut rng = fork_rng(5, "round-test");
        let mut records = Vec::new();
        for id in 0..3000u64 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let a = rng.gen_range(0..2usize);
            records.push(LogRecord::Decision(DecisionRecord {
                request_id: id,
                timestamp_ns: id,
                component: "test".to_string(),
                shared_features: vec![x],
                action_features: None,
                num_actions: 2,
                action: a,
                propensity: Some(0.5),
                reward: None,
            }));
            records.push(LogRecord::Outcome(OutcomeRecord {
                request_id: id,
                timestamp_ns: id + 1,
                reward: if a == 0 { x } else { 1.0 - x },
            }));
        }
        let t = Trainer::new(TrainerConfig {
            lambda: 1e-3,
            ..TrainerConfig::default()
        });
        let round = t.run_round(&records, &ServePolicy::Uniform).unwrap();
        assert_eq!(round.harvest.scavenge.joined, 3000);
        assert!(round.gate.promoted, "{:?}", round.gate);
        // The learned policy must pick the right side of the crossing.
        let pol = ServePolicy::Greedy(round.scorer);
        assert_eq!(
            pol.greedy_action(&SimpleContext::new(vec![0.9], 2)),
            Some(0)
        );
        assert_eq!(
            pol.greedy_action(&SimpleContext::new(vec![0.1], 2)),
            Some(1)
        );
    }

    #[test]
    fn empty_terms_never_promote() {
        let t = Trainer::new(TrainerConfig {
            min_samples: 0,
            ..TrainerConfig::default()
        });
        let data = Dataset::new();
        let report = t.gate(
            &data,
            &ServePolicy::Uniform,
            &ServePolicy::Greedy(good_scorer()),
            &good_scorer(),
        );
        assert!(!report.promoted);
        assert_eq!(report.candidate_lcb, f64::NEG_INFINITY);
    }
}

//! The background trainer and promotion gate.
//!
//! One training round is the paper's §3 loop in miniature: scavenge the
//! service's own decision log into exploration data ([`harvest_log`]), fit a
//! candidate reward model ([`harvest_core::learner::RegressionCbLearner`]),
//! then gate the candidate *as it would actually be served* — wrapped in the
//! same ε floor the engine applies — against the incumbent on the same
//! harvested data.
//!
//! The gate is deliberately asymmetric: the candidate must clear a
//! finite-sample **lower confidence bound** ([`empirical_bernstein_radius`])
//! above the incumbent's **point estimate**. A candidate that merely looks
//! good inside its own noise band is refused; only statistically-grounded
//! improvements reach the registry. This is what makes unattended continuous
//! promotion safe.
//!
//! Since the portfolio redesign, a round does not gate one candidate but a
//! whole **portfolio**: the fitted scorer plus a deterministic fan of tilted
//! variants, all scored in one pass over the harvested data by
//! [`PortfolioEvaluator`]. The winner by lower confidence bound (under the
//! configured [`GateEstimator`]) challenges the incumbent; the full ranked
//! leaderboard rides along on the [`TrainRound`] for export. Gate knobs —
//! portfolio size, LCB margin, minimum effective sample size, confidence
//! constants — live on [`GateConfig`].

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::policy::UniformPolicy;
use harvest_core::scorer::LinearScorer;
use harvest_core::{Dataset, HarvestError, Scorer, SimpleContext};
use harvest_estimators::bounds::{empirical_bernstein_radius, BoundConfig};
use harvest_estimators::{
    harvest_quality, Candidate, EvaluatorConfig, GreedyScorerCandidate, HarvestQuality,
    LeaderboardEntry, PolicyEstimate, PortfolioEvaluator, PortfolioReport,
};
use harvest_log::pipeline::{HarvestPipeline, HarvestReport};
use harvest_log::record::LogRecord;
use harvest_log::KnownPropensity;
use serde::Serialize;

use crate::registry::ServePolicy;

/// Which off-policy estimator the gate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateEstimator {
    /// Self-normalized IPS: bounded by the observed reward range, no reward
    /// model needed.
    Snips,
    /// Doubly robust: uses the candidate's own reward model as the
    /// direct-method baseline; lower variance when the model is decent.
    Dr,
}

/// Promotion-gate configuration: how many candidates a round scores and what
/// the winner must clear to replace the incumbent.
///
/// Construct via [`GateConfig::builder`] or [`GateConfig::default`];
/// `#[non_exhaustive]`, so out-of-crate literal construction does not
/// compile.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct GateConfig {
    /// Candidates scored per round: the fitted scorer plus `portfolio − 1`
    /// deterministic tilted variants. Must be at least 1.
    pub portfolio: usize,
    /// The winner's LCB must exceed the incumbent's point estimate by this
    /// much. Zero restores the classic `lcb > incumbent` rule.
    pub lcb_margin: f64,
    /// Refuse to promote a winner whose effective sample size (Kish) on the
    /// harvested data is below this floor.
    pub min_ess: f64,
    /// Constants for the confidence radius.
    pub bound: BoundConfig,
    /// The gate's estimator.
    pub estimator: GateEstimator,
    /// Refuse to promote from fewer harvested samples than this.
    pub min_samples: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            portfolio: 16,
            lcb_margin: 0.0,
            min_ess: 0.0,
            bound: BoundConfig {
                c: 2.0,
                delta: 0.05,
            },
            estimator: GateEstimator::Snips,
            min_samples: 100,
        }
    }
}

impl GateConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> GateConfigBuilder {
        GateConfigBuilder(GateConfig::default())
    }
}

/// Builder for [`GateConfig`].
#[derive(Debug, Clone)]
pub struct GateConfigBuilder(GateConfig);

impl GateConfigBuilder {
    /// Candidates scored per round (fitted scorer included).
    pub fn portfolio(mut self, portfolio: usize) -> Self {
        self.0.portfolio = portfolio;
        self
    }

    /// How far above the incumbent the winner's LCB must land.
    pub fn lcb_margin(mut self, lcb_margin: f64) -> Self {
        self.0.lcb_margin = lcb_margin;
        self
    }

    /// Minimum effective sample size behind a promotable winner.
    pub fn min_ess(mut self, min_ess: f64) -> Self {
        self.0.min_ess = min_ess;
        self
    }

    /// Constants for the confidence radius.
    pub fn bound(mut self, bound: BoundConfig) -> Self {
        self.0.bound = bound;
        self
    }

    /// The gate's off-policy estimator.
    pub fn estimator(mut self, estimator: GateEstimator) -> Self {
        self.0.estimator = estimator;
        self
    }

    /// Refuse to promote from fewer harvested samples than this.
    pub fn min_samples(mut self, min_samples: usize) -> Self {
        self.0.min_samples = min_samples;
        self
    }

    /// Returns the config.
    ///
    /// # Panics
    ///
    /// Panics if `portfolio` is zero, or `lcb_margin` / `min_ess` are not
    /// finite and non-negative.
    pub fn build(self) -> GateConfig {
        assert!(self.0.portfolio >= 1, "portfolio must be at least 1");
        assert!(
            self.0.lcb_margin.is_finite() && self.0.lcb_margin >= 0.0,
            "lcb_margin must be finite and non-negative"
        );
        assert!(
            self.0.min_ess.is_finite() && self.0.min_ess >= 0.0,
            "min_ess must be finite and non-negative"
        );
        self.0
    }
}

/// Trainer and gate configuration.
///
/// Construct via [`TrainerConfig::builder`] or from
/// [`TrainerConfig::default`]; `#[non_exhaustive]`, so out-of-crate
/// literal construction no longer compiles. Gate knobs live on
/// [`GateConfig`] under [`TrainerConfig::gate`]; the old flat builder
/// methods remain as deprecated aliases for one release.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TrainerConfig {
    /// The exploration floor the engine serves with; candidate and
    /// incumbent are both evaluated as served (ε-floored).
    pub epsilon: f64,
    /// Ridge regularizer for the candidate reward model.
    pub lambda: f64,
    /// How (context, action) pairs are featurized.
    pub modeling: ModelingMode,
    /// The promotion gate: portfolio size, margins, and confidence knobs.
    pub gate: GateConfig,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epsilon: 0.1,
            lambda: 1.0,
            modeling: ModelingMode::PerAction,
            gate: GateConfig::default(),
        }
    }
}

impl TrainerConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> TrainerConfigBuilder {
        TrainerConfigBuilder(TrainerConfig::default())
    }
}

/// Builder for [`TrainerConfig`].
#[derive(Debug, Clone)]
pub struct TrainerConfigBuilder(TrainerConfig);

impl TrainerConfigBuilder {
    /// The exploration floor candidates are evaluated under (should match
    /// the engine's ε).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.0.epsilon = epsilon;
        self
    }

    /// Ridge regularizer for the candidate reward model.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.0.lambda = lambda;
        self
    }

    /// How (context, action) pairs are featurized.
    pub fn modeling(mut self, modeling: ModelingMode) -> Self {
        self.0.modeling = modeling;
        self
    }

    /// The promotion gate's configuration.
    pub fn gate(mut self, gate: GateConfig) -> Self {
        self.0.gate = gate;
        self
    }

    /// Constants for the confidence radius.
    #[deprecated(
        since = "0.10.0",
        note = "set GateConfig::builder().bound(..) via .gate(..)"
    )]
    pub fn bound(mut self, bound: BoundConfig) -> Self {
        self.0.gate.bound = bound;
        self
    }

    /// The gate's off-policy estimator.
    #[deprecated(
        since = "0.10.0",
        note = "set GateConfig::builder().estimator(..) via .gate(..)"
    )]
    pub fn estimator(mut self, estimator: GateEstimator) -> Self {
        self.0.gate.estimator = estimator;
        self
    }

    /// Refuse to promote from fewer harvested samples than this.
    #[deprecated(
        since = "0.10.0",
        note = "set GateConfig::builder().min_samples(..) via .gate(..)"
    )]
    pub fn min_samples(mut self, min_samples: usize) -> Self {
        self.0.gate.min_samples = min_samples;
        self
    }

    /// Returns the config.
    pub fn build(self) -> TrainerConfig {
        self.0
    }
}

/// The gate's verdict, with everything needed to audit it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GateReport {
    /// Harvested samples the verdict rests on.
    pub n: usize,
    /// Candidates scored this round (1 for the single-candidate gate).
    pub portfolio: usize,
    /// Name of the portfolio winner the verdict is about.
    pub winner: String,
    /// The winner's effective sample size (Kish) on the harvested data.
    pub winner_ess: f64,
    /// Winner's as-served estimate.
    pub candidate_value: f64,
    /// The confidence radius subtracted from the winner.
    pub candidate_radius: f64,
    /// `candidate_value − candidate_radius`.
    pub candidate_lcb: f64,
    /// Incumbent's as-served point estimate on the same data.
    pub incumbent_value: f64,
    /// Whether the winner cleared the bar.
    pub promoted: bool,
    /// Why the gate ruled the way it did: `"promoted"`,
    /// `"insufficient_samples"`, `"below_min_ess"`, or
    /// `"lcb_not_above_incumbent"`.
    pub reason: String,
    /// Harvest-quality diagnostics (ESS, weight concentration, propensity
    /// floor hits, drift) over the winner's importance weights — the
    /// evidence behind the verdict, exported alongside it.
    pub quality: HarvestQuality,
}

/// One completed training round.
#[derive(Debug, Clone)]
pub struct TrainRound {
    /// The fitted candidate reward model (promoted or not).
    pub scorer: LinearScorer,
    /// The portfolio winner as it would be served — what the caller
    /// promotes when [`GateReport::promoted`] is set.
    pub winner_policy: ServePolicy,
    /// The full ranked leaderboard from the round's shadow evaluation.
    pub leaderboard: PortfolioReport,
    /// Scavenging provenance.
    pub harvest: HarvestReport,
    /// The gate's verdict.
    pub gate: GateReport,
}

/// Scavenges logs, trains candidates, and gates promotions.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainerConfig,
}

/// Per-policy single-pass evaluation: the as-served value, the per-sample
/// terms whose spread sets the confidence radius, and the importance
/// weights — all derived from **one** `served_probabilities` call per
/// record, shared by the estimate, the radius, and the quality gauges.
struct EstimateParts {
    value: f64,
    terms: Vec<f64>,
    weights: Vec<f64>,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 1]`, `lambda` is not positive,
    /// or the gate's portfolio is empty.
    pub fn new(cfg: TrainerConfig) -> Self {
        assert!(
            cfg.epsilon > 0.0 && cfg.epsilon <= 1.0,
            "epsilon must be in (0, 1]"
        );
        assert!(
            cfg.lambda.is_finite() && cfg.lambda > 0.0,
            "lambda must be positive"
        );
        assert!(cfg.gate.portfolio >= 1, "gate portfolio must be at least 1");
        Trainer { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Step 1–2: joins decisions with outcomes and validates propensities.
    /// The engine stamps exact propensities, so logged values are trusted;
    /// uniform is the fallback for records that somehow lack one.
    pub fn harvest(
        &self,
        records: &[LogRecord],
    ) -> Result<(Dataset<SimpleContext>, HarvestReport), HarvestError> {
        HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true).run(records)
    }

    /// Step 3: fits the candidate reward model from harvested data.
    pub fn train(&self, data: &Dataset<SimpleContext>) -> Result<LinearScorer, HarvestError> {
        RegressionCbLearner::new(self.cfg.modeling, SampleWeighting::Uniform, self.cfg.lambda)?
            .fit(data)
    }

    /// Step 4, single-candidate form: the classic promotion gate.
    ///
    /// Estimates both policies *as served* (ε-floored) on the same data and
    /// promotes only if the candidate's lower confidence bound clears the
    /// incumbent's point estimate by the configured margin (and the ESS
    /// floor holds).
    pub fn gate(
        &self,
        data: &Dataset<SimpleContext>,
        incumbent: &ServePolicy,
        candidate: &ServePolicy,
        model: &LinearScorer,
    ) -> GateReport {
        let cand = self.estimate(data, candidate, model);
        let incumbent_value = self.estimate(data, incumbent, model).value;
        let candidate_radius = radius_of(&self.cfg.gate.bound, &cand.terms);
        let quality = harvest_quality(data, &cand.weights, self.cfg.epsilon, WEIGHT_CLIP);
        let winner_ess = quality.effective_sample_size;
        self.verdict(
            data.len(),
            1,
            "candidate".to_string(),
            winner_ess,
            cand.value,
            candidate_radius,
            incumbent_value,
            quality,
        )
    }

    /// Step 4, portfolio form: shadow-evaluates the fitted scorer plus a
    /// deterministic fan of tilted variants in **one pass** over the
    /// harvested data, then gates the LCB-winner against the incumbent.
    ///
    /// Returns the verdict, the winner as a servable policy, and the full
    /// ranked leaderboard.
    pub fn portfolio_gate(
        &self,
        data: &Dataset<SimpleContext>,
        incumbent: &ServePolicy,
        fitted: &LinearScorer,
    ) -> (GateReport, ServePolicy, PortfolioReport) {
        let g = &self.cfg.gate;
        let named: Vec<(String, LinearScorer)> = (0..g.portfolio.max(1))
            .map(|j| {
                if j == 0 {
                    ("cb-fit".to_string(), fitted.clone())
                } else {
                    (format!("cb-tilt-{j:03}"), tilt_scorer(fitted, j))
                }
            })
            .collect();
        let evaluator = PortfolioEvaluator::builder()
            .config(
                EvaluatorConfig::builder()
                    .clip(WEIGHT_CLIP)
                    .bound(g.bound)
                    .build(),
            )
            .candidates(named.iter().map(|(name, s)| {
                Candidate::new(
                    name.clone(),
                    GreedyScorerCandidate::new(s.clone(), self.cfg.epsilon),
                )
            }))
            .model(fitted.clone())
            .build()
            .expect("portfolio has at least one candidate");
        let leaderboard = evaluator.evaluate_dataset(data);
        let pick = |e: &LeaderboardEntry| -> PolicyEstimate {
            match g.estimator {
                GateEstimator::Snips => e.snips,
                GateEstimator::Dr => e.dr,
            }
        };
        // Winner under the *configured* estimator's LCB; the leaderboard
        // itself stays ranked by SNIPS LCB. First-wins on exact ties keeps
        // the choice deterministic.
        let winner = leaderboard
            .entries
            .iter()
            .fold(None::<&LeaderboardEntry>, |best, e| match best {
                Some(b) if pick(e).lcb <= pick(b).lcb => Some(b),
                _ => Some(e),
            })
            .expect("portfolio is non-empty");
        let winner_est = pick(winner);
        let winner_scorer = named
            .iter()
            .find(|(n, _)| *n == winner.name)
            .map(|(_, s)| s.clone())
            .expect("winner came from this portfolio");
        let winner_policy = ServePolicy::Greedy(winner_scorer);
        let incumbent_value = self.estimate(data, incumbent, fitted).value;
        // One extra pass over the winner only — the quality gauges need the
        // full weight vector (percentiles, drift), not just the moments the
        // streaming accumulators kept.
        let weights = self.estimate(data, &winner_policy, fitted).weights;
        let quality = harvest_quality(data, &weights, self.cfg.epsilon, WEIGHT_CLIP);
        let report = self.verdict(
            data.len(),
            named.len(),
            winner.name.clone(),
            winner.ess,
            winner_est.point,
            winner_est.point - winner_est.lcb,
            incumbent_value,
            quality,
        );
        (report, winner_policy, leaderboard)
    }

    /// The shared promotion rule: enough samples, enough effective sample
    /// size, and an LCB clearing the incumbent by the margin.
    #[allow(clippy::too_many_arguments)]
    fn verdict(
        &self,
        n: usize,
        portfolio: usize,
        winner: String,
        winner_ess: f64,
        candidate_value: f64,
        candidate_radius: f64,
        incumbent_value: f64,
        quality: HarvestQuality,
    ) -> GateReport {
        let g = &self.cfg.gate;
        let candidate_lcb = candidate_value - candidate_radius;
        let enough = n >= g.min_samples;
        let ess_ok = winner_ess >= g.min_ess;
        let beats = candidate_lcb > incumbent_value + g.lcb_margin;
        let promoted = enough && ess_ok && beats;
        let reason = if promoted {
            "promoted"
        } else if !enough {
            "insufficient_samples"
        } else if !ess_ok {
            "below_min_ess"
        } else {
            "lcb_not_above_incumbent"
        };
        GateReport {
            n,
            portfolio,
            winner,
            winner_ess,
            candidate_value,
            candidate_radius,
            candidate_lcb,
            incumbent_value,
            promoted,
            reason: reason.to_string(),
            quality,
        }
    }

    /// Runs a full round: harvest → train → portfolio gate. Does **not**
    /// touch the registry; the caller promotes [`TrainRound::winner_policy`]
    /// iff `gate.promoted` (see [`DecisionService::train_and_maybe_promote`]).
    ///
    /// [`DecisionService::train_and_maybe_promote`]: crate::service::DecisionService::train_and_maybe_promote
    pub fn run_round(
        &self,
        records: &[LogRecord],
        incumbent: &ServePolicy,
    ) -> Result<TrainRound, HarvestError> {
        let (data, harvest) = self.harvest(records)?;
        let scorer = self.train(&data)?;
        let (gate, winner_policy, leaderboard) = self.portfolio_gate(&data, incumbent, &scorer);
        Ok(TrainRound {
            scorer,
            winner_policy,
            leaderboard,
            harvest,
            gate,
        })
    }

    /// The as-served estimate of `policy` on `data`, with per-sample terms
    /// and importance weights from a single pass.
    ///
    /// Targets here are stochastic (the served ε-floored distribution), so
    /// the importance weight is `π(aₜ|xₜ)/pₜ` rather than an indicator:
    ///
    /// * SNIPS: `Σ wₜ rₜ / Σ wₜ`, radius from the plain IPS terms `wₜ rₜ`
    ///   (a conservative proxy — SNIPS's own variance is never larger).
    /// * DR: `mean[ Σₐ π(a|xₜ) r̂(xₜ,a) + wₜ (rₜ − r̂(xₜ,aₜ)) ]`, radius
    ///   from exactly those terms.
    fn estimate(
        &self,
        data: &Dataset<SimpleContext>,
        policy: &ServePolicy,
        model: &LinearScorer,
    ) -> EstimateParts {
        let eps = self.cfg.epsilon;
        let mut terms = Vec::with_capacity(data.len());
        let mut weights = Vec::with_capacity(data.len());
        match self.cfg.gate.estimator {
            GateEstimator::Snips => {
                let mut num = 0.0;
                let mut den = 0.0;
                for s in data {
                    let probs = policy.served_probabilities(&s.context, eps);
                    let w = probs[s.action] / s.propensity;
                    num += w * s.reward;
                    den += w;
                    terms.push(w * s.reward);
                    weights.push(w);
                }
                let value = if den > 0.0 { num / den } else { 0.0 };
                EstimateParts {
                    value,
                    terms,
                    weights,
                }
            }
            GateEstimator::Dr => {
                for s in data {
                    let probs = policy.served_probabilities(&s.context, eps);
                    let baseline: f64 = probs
                        .iter()
                        .enumerate()
                        .map(|(a, &p)| p * model.score(&s.context, a))
                        .sum();
                    let w = probs[s.action] / s.propensity;
                    let correction = w * (s.reward - model.score(&s.context, s.action));
                    terms.push(baseline + correction);
                    weights.push(w);
                }
                let value = if terms.is_empty() {
                    0.0
                } else {
                    terms.iter().sum::<f64>() / terms.len() as f64
                };
                EstimateParts {
                    value,
                    terms,
                    weights,
                }
            }
        }
    }
}

/// Weight magnitude above which importance mass counts as "clipped" in the
/// harvest-quality gauges. Diagnostic only — the estimators themselves never
/// clip; this flags how much of the estimate rides on rare heavy weights.
const WEIGHT_CLIP: f64 = 10.0;

/// A deterministically tilted copy of `fitted` — candidate `j` of the
/// portfolio. The tilt is a fixed ±2% lattice over (variant, action, dim),
/// no RNG involved, so the portfolio (and everything downstream of it) is a
/// pure function of the fitted scorer.
fn tilt_scorer(fitted: &LinearScorer, j: usize) -> LinearScorer {
    const AMP: f64 = 0.02;
    let delta = |a: usize, d: usize| AMP * ((((j * 31 + a * 17 + d * 7) % 13) as f64 - 6.0) / 6.0);
    match fitted {
        LinearScorer::PerAction { weights } => LinearScorer::PerAction {
            weights: weights
                .iter()
                .enumerate()
                .map(|(a, w)| {
                    w.iter()
                        .enumerate()
                        .map(|(d, &v)| v + delta(a, d))
                        .collect()
                })
                .collect(),
        },
        LinearScorer::Pooled { weights } => LinearScorer::Pooled {
            weights: weights
                .iter()
                .enumerate()
                .map(|(d, &v)| v + delta(0, d))
                .collect(),
        },
    }
}

/// Empirical-Bernstein radius of the mean of `terms` (k = 1 candidate).
/// Degenerate inputs (n ≤ 1) get an infinite radius: never promote on them.
fn radius_of(bound: &BoundConfig, terms: &[f64]) -> f64 {
    let n = terms.len();
    if n <= 1 {
        return f64::INFINITY;
    }
    let mean = terms.iter().sum::<f64>() / n as f64;
    let var = terms.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let min = terms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    empirical_bernstein_radius(bound, var, max - min, n as f64, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::LoggedDecision;
    use harvest_sim_net::rng::fork_rng;
    use rand::Rng;

    /// Uniform-logged data where action 0 pays `x` and action 1 pays
    /// `1 − x`: the crossing problem every learner in the workspace faces.
    fn crossing_data(n: usize, seed: u64) -> Dataset<SimpleContext> {
        let mut rng = fork_rng(seed, "trainer-test");
        let mut data = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let a = rng.gen_range(0..2usize);
            let r = if a == 0 { x } else { 1.0 - x };
            data.push(LoggedDecision {
                context: SimpleContext::new(vec![x], 2),
                action: a,
                reward: r,
                propensity: 0.5,
            })
            .unwrap();
        }
        data
    }

    /// φ is `[x, 1]`; these weights make action 0 score `x` and action 1
    /// score `1 − x` — the true reward, hence the optimal greedy policy.
    fn good_scorer() -> LinearScorer {
        LinearScorer::PerAction {
            weights: vec![vec![1.0, 0.0], vec![-1.0, 1.0]],
        }
    }

    /// The optimal policy inverted: picks the *worse* action everywhere.
    fn bad_scorer() -> LinearScorer {
        LinearScorer::PerAction {
            weights: vec![vec![-1.0, 1.0], vec![1.0, 0.0]],
        }
    }

    #[test]
    fn gate_accepts_a_clearly_better_candidate() {
        let data = crossing_data(4000, 1);
        let t = Trainer::new(TrainerConfig::default());
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        // Truth: candidate ≈ 0.75 (minus a little ε), incumbent = 0.5.
        assert!(report.promoted, "{report:?}");
        assert!(report.candidate_lcb > report.incumbent_value);
        assert!((report.incumbent_value - 0.5).abs() < 0.05, "{report:?}");
        assert_eq!(report.reason, "promoted");
        assert_eq!(report.portfolio, 1);
        assert_eq!(report.winner, "candidate");
        // Quality gauges ride along: uniform logging with a near-greedy
        // candidate halves the effective sample size, roughly.
        assert_eq!(report.quality.n, 4000);
        assert!(report.quality.effective_sample_size > 0.0);
        assert!(report.quality.ess_fraction <= 1.0 + 1e-12, "{report:?}");
        // The winner's ESS on the report is the same Kish statistic the
        // quality gauges compute.
        assert!((report.winner_ess - report.quality.effective_sample_size).abs() < 1e-9);
    }

    #[test]
    fn gate_refuses_a_degraded_candidate() {
        let data = crossing_data(4000, 2);
        let t = Trainer::new(TrainerConfig::default());
        let candidate = ServePolicy::Greedy(bad_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &bad_scorer());
        // Truth: candidate ≈ 0.25 < incumbent 0.5 — refused decisively.
        assert!(!report.promoted, "{report:?}");
        assert!(report.candidate_value < report.incumbent_value);
        assert_eq!(report.reason, "lcb_not_above_incumbent");
    }

    #[test]
    fn gate_refuses_on_too_few_samples() {
        let data = crossing_data(20, 3);
        let t = Trainer::new(TrainerConfig {
            gate: GateConfig {
                min_samples: 1000,
                ..GateConfig::default()
            },
            ..TrainerConfig::default()
        });
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        assert!(!report.promoted);
        assert_eq!(report.reason, "insufficient_samples");
    }

    #[test]
    fn gate_refuses_below_the_ess_floor() {
        let data = crossing_data(4000, 6);
        let t = Trainer::new(TrainerConfig {
            gate: GateConfig {
                min_ess: 1e9,
                ..GateConfig::default()
            },
            ..TrainerConfig::default()
        });
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        assert!(!report.promoted, "{report:?}");
        assert_eq!(report.reason, "below_min_ess");
    }

    #[test]
    fn lcb_margin_raises_the_bar() {
        let data = crossing_data(4000, 7);
        let t = Trainer::new(TrainerConfig {
            gate: GateConfig {
                lcb_margin: 10.0,
                ..GateConfig::default()
            },
            ..TrainerConfig::default()
        });
        let candidate = ServePolicy::Greedy(good_scorer());
        let report = t.gate(&data, &ServePolicy::Uniform, &candidate, &good_scorer());
        assert!(!report.promoted, "{report:?}");
        assert_eq!(report.reason, "lcb_not_above_incumbent");
    }

    #[test]
    fn dr_gate_agrees_on_the_easy_cases() {
        let data = crossing_data(4000, 4);
        let t = Trainer::new(TrainerConfig {
            gate: GateConfig {
                estimator: GateEstimator::Dr,
                ..GateConfig::default()
            },
            ..TrainerConfig::default()
        });
        let good = ServePolicy::Greedy(good_scorer());
        let bad = ServePolicy::Greedy(bad_scorer());
        assert!(
            t.gate(&data, &ServePolicy::Uniform, &good, &good_scorer())
                .promoted
        );
        assert!(
            !t.gate(&data, &ServePolicy::Uniform, &bad, &bad_scorer())
                .promoted
        );
    }

    fn crossing_records(n: u64, seed: u64) -> Vec<LogRecord> {
        use harvest_log::record::{DecisionRecord, OutcomeRecord};
        let mut rng = fork_rng(seed, "round-test");
        let mut records = Vec::new();
        for id in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let a = rng.gen_range(0..2usize);
            records.push(LogRecord::Decision(DecisionRecord {
                request_id: id,
                timestamp_ns: id,
                component: "test".to_string(),
                shared_features: vec![x],
                action_features: None,
                num_actions: 2,
                action: a,
                propensity: Some(0.5),
                reward: None,
            }));
            records.push(LogRecord::Outcome(OutcomeRecord {
                request_id: id,
                timestamp_ns: id + 1,
                reward: if a == 0 { x } else { 1.0 - x },
            }));
        }
        records
    }

    #[test]
    fn run_round_learns_the_crossing_policy_from_raw_records() {
        let records = crossing_records(3000, 5);
        let t = Trainer::new(TrainerConfig {
            lambda: 1e-3,
            ..TrainerConfig::default()
        });
        let round = t.run_round(&records, &ServePolicy::Uniform).unwrap();
        assert_eq!(round.harvest.scavenge.joined, 3000);
        assert!(round.gate.promoted, "{:?}", round.gate);
        // The learned policy must pick the right side of the crossing.
        let pol = ServePolicy::Greedy(round.scorer);
        assert_eq!(
            pol.greedy_action(&SimpleContext::new(vec![0.9], 2)),
            Some(0)
        );
        assert_eq!(
            pol.greedy_action(&SimpleContext::new(vec![0.1], 2)),
            Some(1)
        );
        // And so must the portfolio winner that actually gets promoted.
        assert_eq!(
            round
                .winner_policy
                .greedy_action(&SimpleContext::new(vec![0.9], 2)),
            Some(0)
        );
        assert_eq!(
            round
                .winner_policy
                .greedy_action(&SimpleContext::new(vec![0.1], 2)),
            Some(1)
        );
    }

    #[test]
    fn run_round_scores_the_whole_portfolio() {
        let records = crossing_records(2000, 8);
        let t = Trainer::new(TrainerConfig {
            lambda: 1e-3,
            ..TrainerConfig::default()
        });
        let round = t.run_round(&records, &ServePolicy::Uniform).unwrap();
        // Default portfolio: the fitted scorer plus 15 tilts.
        assert_eq!(round.gate.portfolio, 16);
        assert_eq!(round.leaderboard.entries.len(), 16);
        assert_eq!(round.leaderboard.n, 2000);
        // Ranked by SNIPS LCB, ranks dense from 1.
        for (i, e) in round.leaderboard.entries.iter().enumerate() {
            assert_eq!(e.rank, i + 1);
            if i > 0 {
                let prev = round.leaderboard.entries[i - 1].snips.lcb;
                assert!(prev >= e.snips.lcb || prev.is_nan());
            }
        }
        // The winner the gate reports is on the leaderboard, and under the
        // default SNIPS estimator it is the top-ranked entry.
        assert_eq!(round.gate.winner, round.leaderboard.entries[0].name);
        // The tilts are small: every candidate still beats uniform on this
        // easy problem, so the whole board sits above the incumbent.
        assert!(round
            .leaderboard
            .entries
            .iter()
            .all(|e| e.snips.point > round.gate.incumbent_value - 0.05));
    }

    #[test]
    fn portfolio_gate_is_deterministic() {
        let data = crossing_data(1500, 9);
        let t = Trainer::new(TrainerConfig::default());
        let (g1, p1, l1) = t.portfolio_gate(&data, &ServePolicy::Uniform, &good_scorer());
        let (g2, p2, l2) = t.portfolio_gate(&data, &ServePolicy::Uniform, &good_scorer());
        assert_eq!(g1, g2);
        assert_eq!(l1.to_json(), l2.to_json());
        assert_eq!(
            p1.greedy_action(&SimpleContext::new(vec![0.5], 2)),
            p2.greedy_action(&SimpleContext::new(vec![0.5], 2))
        );
    }

    #[test]
    fn tilts_are_distinct_and_bounded() {
        let s = good_scorer();
        // j = 0 is reserved for the fitted scorer itself; tilts start at 1.
        assert_ne!(tilt_scorer(&s, 1), s);
        assert_ne!(tilt_scorer(&s, 1), tilt_scorer(&s, 2));
        // Tilts are bounded: no weight moves by more than the ±2% lattice.
        if let (LinearScorer::PerAction { weights: w0 }, LinearScorer::PerAction { weights: w1 }) =
            (&s, &tilt_scorer(&s, 3))
        {
            for (r0, r1) in w0.iter().zip(w1) {
                for (a, b) in r0.iter().zip(r1) {
                    assert!((a - b).abs() <= 0.02 + 1e-12);
                }
            }
        } else {
            panic!("expected PerAction");
        }
    }

    #[test]
    fn deprecated_builder_aliases_forward_into_gate() {
        // The old flat knobs must keep steering the gate for one release.
        #[allow(deprecated)]
        let cfg = TrainerConfig::builder()
            .bound(BoundConfig { c: 3.0, delta: 0.2 })
            .estimator(GateEstimator::Dr)
            .min_samples(42)
            .build();
        assert_eq!(cfg.gate.bound.c, 3.0);
        assert_eq!(cfg.gate.bound.delta, 0.2);
        assert_eq!(cfg.gate.estimator, GateEstimator::Dr);
        assert_eq!(cfg.gate.min_samples, 42);
        // And the new surface reaches the same fields.
        let cfg2 = TrainerConfig::builder()
            .gate(
                GateConfig::builder()
                    .bound(BoundConfig { c: 3.0, delta: 0.2 })
                    .estimator(GateEstimator::Dr)
                    .min_samples(42)
                    .portfolio(8)
                    .lcb_margin(0.01)
                    .min_ess(50.0)
                    .build(),
            )
            .build();
        assert_eq!(cfg2.gate.bound.c, cfg.gate.bound.c);
        assert_eq!(cfg2.gate.portfolio, 8);
        assert_eq!(cfg2.gate.lcb_margin, 0.01);
        assert_eq!(cfg2.gate.min_ess, 50.0);
    }

    #[test]
    fn empty_terms_never_promote() {
        let t = Trainer::new(TrainerConfig {
            gate: GateConfig {
                min_samples: 0,
                ..GateConfig::default()
            },
            ..TrainerConfig::default()
        });
        let data = Dataset::new();
        let report = t.gate(
            &data,
            &ServePolicy::Uniform,
            &ServePolicy::Greedy(good_scorer()),
            &good_scorer(),
        );
        assert!(!report.promoted);
        assert_eq!(report.candidate_lcb, f64::NEG_INFINITY);
    }
}

//! `harvest-serve`: an online decision service with hot-swappable policies
//! and a gated harvest → train → promote loop.
//!
//! This crate turns the workspace's offline machinery into the *system* the
//! paper envisions (§3's Decision Service): a process that serves randomized
//! decisions, logs its own exploration, learns from that log, and promotes
//! better policies into the serving path without stopping — the harvesting
//! loop closed end to end, and hardened to keep serving through crashes.
//!
//! ```text
//!   requests ──▶ CircuitBreaker ──▶ DecisionEngine (N shards, ε-floor,
//!                   │ open: safe arm     │    ▲ exact propensities)
//!                   │                    │    │ epoch/RCU hot-swap
//!                   │                    │    └── PolicyRegistry ◀── promote
//!                   ▼                    ▼                            │ gate:
//!              safe policy    per-shard SPSC rings (ticket order)    │ LCB >
//!           (still logged with          │                            │ incumbent
//!            exact propensities)        ▼                            │
//!              supervised writer (restart + backoff, sealed tails)   │
//!                   │                                                │
//!                   ▼                                                │
//!        crash-safe segments (len ‖ crc32 ‖ payload) ──▶ recovery ──▶ Trainer
//!   rewards ──▶ RewardJoiner (TTL) ─────────┘          (longest valid prefix,
//!                                                       quarantine the rest)
//! ```
//!
//! Seven design rules, each load-bearing:
//!
//! 1. **Exact propensities or nothing.** Every decision is sampled from a
//!    distribution with a known ε floor, and that exact probability is
//!    stamped into the record. This is what makes the log harvestable
//!    (paper Eq. 1 needs `ε > 0` and known `p`).
//! 2. **Determinism by construction.** Per-shard RNGs are forked from one
//!    master seed by label and index; time is the caller's logical clock;
//!    even fault schedules ([`ChaosPlan`]) are seeded. Same seed + same
//!    call sequence ⇒ byte-identical decision log, faults included.
//! 3. **Readers never wait on learners.** The serving path sees policy
//!    updates through one atomic generation check; promotion is an `Arc`
//!    flip, not a lock held across training.
//! 4. **Bounded everywhere.** The log queue has a capacity and an explicit
//!    backpressure policy; the reward joiner has a TTL; the writer has a
//!    restart budget and capped backoff. Overload degrades measurably
//!    (counted drops, counted timeouts), never silently.
//! 5. **Promotion is gated, not hoped.** A candidate ships only when its
//!    finite-sample lower confidence bound beats the incumbent's point
//!    estimate on the same harvested data.
//! 6. **No record vanishes from the ledger.** Every record offered to the
//!    log counts `enqueued`; once the pipeline drains,
//!    `enqueued == written + dropped + quarantined`. Corrupt bytes at
//!    recovery are quarantined and counted, never silently skipped.
//! 7. **Degrade, don't die.** Wedged shards are recovered and counted; a
//!    crashed writer restarts with backoff; a degraded pipeline flips the
//!    [`CircuitBreaker`] to the safe arm (paper §3) — which still logs
//!    exact propensities, so even degraded traffic is harvestable.
//!
//! See `examples/harvest_serve.rs` for the loop driven end to end against
//! the load-balancer simulator, and `examples/chaos_harvest.rs` for the
//! same loop under a seeded fault schedule.

// `unsafe` is denied crate-wide and re-allowed in exactly three audited
// islands — the lock-free primitives `cell`, `rcu`, and `ring` — where
// every block carries a `// SAFETY:` comment (checked by
// `tests/unsafe_audit.rs` and a CI grep). Everything else in the crate is
// still unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod breaker;
#[allow(unsafe_code)]
mod cell;
pub mod chaos;
pub mod engine;
pub mod error;
pub mod export;
pub mod joiner;
pub mod logger;
pub mod metrics;
pub mod obs;
#[allow(unsafe_code)]
mod rcu;
pub mod recovery;
pub mod registry;
#[allow(unsafe_code)]
mod ring;
pub mod scope;
pub mod service;
pub mod supervisor;
pub mod trainer;

pub use admission::QueueBudget;
pub use batch::DecisionBatch;
pub use breaker::{BreakerConfig, BreakerConfigBuilder, CircuitBreaker, TripReason};
pub use chaos::apply_at_rest_faults;
pub use engine::{Decision, DecisionEngine, EngineConfig, EngineConfigBuilder, SEQ_BITS};
pub use error::ServeError;
pub use export::{export_prometheus, obs_snapshot, ObsSnapshot};
pub use joiner::{JoinOutcome, RewardJoiner};
pub use logger::{Backpressure, DecisionLogger, LoggerConfig, LoggerConfigBuilder};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use obs::{ObsConfig, ObsConfigBuilder, ServeObs};
pub use recovery::{RecoveryReport, ServiceCheckpoint};
pub use registry::{CachedPolicy, PolicyRegistry, PolicyVersion, ServePolicy};
pub use scope::{HarvestScope, ScopeConfig, ScopeConfigBuilder};
pub use service::{DecisionService, PromotionReport, ServeConfig, ServeConfigBuilder};
pub use supervisor::{
    spawn_supervised_writer, SupervisorConfig, SupervisorConfigBuilder, WriterSupervisorHandle,
};
pub use trainer::{
    GateConfig, GateConfigBuilder, GateEstimator, GateReport, TrainRound, Trainer, TrainerConfig,
    TrainerConfigBuilder,
};

// The tracer and histogram primitives, re-exported so exporters and tests
// need only this crate.
pub use harvest_obs::{
    AlertEvent, AlertPhase, DecisionTrace, Histogram, HistogramSummary, ObsAlert, Terminal,
    TraceAudit, Tracer,
};

// Re-exported so chaos tests and examples need only this crate.
pub use harvest_sim_net::fault::{
    AtRestFault, ChaosHorizon, ChaosPlan, ChaosPlanBuilder, ChaosPlanConfig, CheckpointFault,
    RewardFault, WriterFault,
};

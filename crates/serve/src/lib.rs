//! `harvest-serve`: an online decision service with hot-swappable policies
//! and a gated harvest → train → promote loop.
//!
//! This crate turns the workspace's offline machinery into the *system* the
//! paper envisions (§3's Decision Service): a process that serves randomized
//! decisions, logs its own exploration, learns from that log, and promotes
//! better policies into the serving path without stopping — the harvesting
//! loop closed end to end.
//!
//! ```text
//!   requests ──▶ DecisionEngine (N shards, ε-floor, exact propensities)
//!                   │    ▲ atomic hot-swap
//!                   │    └────────────── PolicyRegistry ◀── promote
//!                   ▼                                          │ gate: LCB >
//!            bounded MPSC queue                                │ incumbent
//!                   │                                          │
//!                   ▼                                          │
//!            log writer thread ──▶ JSON lines ──▶ Trainer (scavenge → fit)
//!   rewards ──▶ RewardJoiner (TTL) ──────┘
//! ```
//!
//! Five design rules, each load-bearing:
//!
//! 1. **Exact propensities or nothing.** Every decision is sampled from a
//!    distribution with a known ε floor, and that exact probability is
//!    stamped into the record. This is what makes the log harvestable
//!    (paper Eq. 1 needs `ε > 0` and known `p`).
//! 2. **Determinism by construction.** Per-shard RNGs are forked from one
//!    master seed by label and index; time is the caller's logical clock.
//!    Same seed + same call sequence ⇒ byte-identical decision log.
//! 3. **Readers never wait on learners.** The serving path sees policy
//!    updates through one atomic generation check; promotion is an `Arc`
//!    flip, not a lock held across training.
//! 4. **Bounded everywhere.** The log queue has a capacity and an explicit
//!    backpressure policy; the reward joiner has a TTL. Overload degrades
//!    measurably (counted drops, counted timeouts), never silently.
//! 5. **Promotion is gated, not hoped.** A candidate ships only when its
//!    finite-sample lower confidence bound beats the incumbent's point
//!    estimate on the same harvested data.
//!
//! See `examples/harvest_serve.rs` for the loop driven end to end against
//! the load-balancer simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod joiner;
pub mod logger;
pub mod metrics;
pub mod registry;
pub mod service;
pub mod trainer;

pub use engine::{Decision, DecisionEngine, EngineConfig};
pub use joiner::{JoinOutcome, RewardJoiner};
pub use logger::{Backpressure, DecisionLogger, LoggerConfig, SharedBuffer};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use registry::{CachedPolicy, PolicyRegistry, PolicyVersion, ServePolicy};
pub use service::{DecisionService, PromotionReport, ServiceConfig};
pub use trainer::{GateEstimator, GateReport, TrainRound, Trainer, TrainerConfig};

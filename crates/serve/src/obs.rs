//! Serve-side observability state: the tracer, the loop's histograms,
//! and the latest harvest-quality gauges, bundled into one handle that
//! rides inside [`ServeMetrics`](crate::metrics::ServeMetrics) so every
//! component that already holds the metrics can emit events.
//!
//! Everything recorded here is a *deterministic observable* — a pure
//! function of the seed, the logical clock, and the call sequence —
//! so same-seed runs export byte-identical pages. That rules out
//! thread-timing-dependent quantities; each histogram below names its
//! deterministic substitute:
//!
//! * **decision inter-arrival** — the logical-ns gap between successive
//!   decisions on the same shard (per-shard stamps are caller-supplied,
//!   so the gaps replay exactly);
//! * **join delay** — reward observation time minus decision time, both
//!   logical;
//! * **join queue depth** — the joiner's pending count sampled at each
//!   `track`, a function of the call sequence alone;
//! * **sealed-segment size** — records and bytes per *sealed* segment
//!   (rotation points are record-indexed, so seals replay; the final
//!   never-sealed segment is not recorded).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use harvest_estimators::{HarvestQuality, PortfolioReport};
use harvest_log::SealObserver;
use harvest_obs::{AtomicHistogram, Histogram, StripedHistogram, Terminal, Tracer, TracerConfig};

/// Stage-journal ring bound: entries beyond this are dropped oldest-first
/// (counted, never silent). 64Ki terminals outlive any tick cadence the
/// examples or tests run at.
const STAGE_JOURNAL_CAP: usize = 65_536;

/// Observability sizing and switches for the service.
///
/// Construct via [`ObsConfig::builder`] or from [`ObsConfig::default`];
/// `#[non_exhaustive]`, so out-of-crate literal construction no longer
/// compiles and new switches can ship without breaking callers.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ObsConfig {
    /// Master switch: `false` builds the service with no tracer and no
    /// histograms (zero overhead beyond the plain counters).
    pub enabled: bool,
    /// Trace ring shards (each independently locked).
    pub trace_shards: usize,
    /// Trace ring capacity per shard; oldest traces evicted (counted)
    /// beyond it.
    pub trace_capacity_per_shard: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            trace_shards: 16,
            trace_capacity_per_shard: 4096,
        }
    }
}

impl ObsConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> ObsConfigBuilder {
        ObsConfigBuilder(ObsConfig::default())
    }
}

/// Builder for [`ObsConfig`].
#[derive(Debug, Clone)]
pub struct ObsConfigBuilder(ObsConfig);

impl ObsConfigBuilder {
    /// Master switch: `false` builds the service with no tracer and no
    /// histograms.
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.0.enabled = enabled;
        self
    }

    /// Trace ring shards (must stay ≥ 1).
    pub fn trace_shards(mut self, shards: usize) -> Self {
        self.0.trace_shards = shards;
        self
    }

    /// Trace ring capacity per shard.
    pub fn trace_capacity_per_shard(mut self, capacity: usize) -> Self {
        self.0.trace_capacity_per_shard = capacity;
        self
    }

    /// Returns the config; `trace_shards` is clamped to at least 1 so the
    /// striped histograms always have a stripe to land on.
    pub fn build(self) -> ObsConfig {
        let mut cfg = self.0;
        cfg.trace_shards = cfg.trace_shards.max(1);
        cfg
    }
}

/// The observability bundle: one per service, shared via `Arc` through
/// the metrics handle.
pub struct ServeObs {
    tracer: Tracer,
    /// Striped by engine shard: concurrent decide threads record onto
    /// disjoint cache lines and merge only at snapshot time.
    decision_interarrival_ns: StripedHistogram,
    /// Striped by the rewarded decision's engine shard.
    join_delay_ns: StripedHistogram,
    join_queue_depth: StripedHistogram,
    segment_records: AtomicHistogram,
    segment_bytes: AtomicHistogram,
    /// Latest per-round harvest-quality gauges (from the trainer gate).
    quality: Mutex<Option<HarvestQuality>>,
    /// Latest per-round portfolio leaderboard (from the trainer's shadow
    /// evaluation): every candidate's estimate, CI, ESS, and clipped mass,
    /// ranked. Deterministic — a pure function of seed and call sequence.
    leaderboard: Mutex<Option<PortfolioReport>>,
    /// Decision-stamp/terminal pairs journaled by the writer as records
    /// reach their terminal, awaiting the next scope tick. The tick
    /// drains this and records `tick_now − decided_ns` per terminal
    /// class — stage latency measured at a *deterministic* point of the
    /// logical clock, because asynchronous writer progress is invisible
    /// in logical time. Bounded; overflow drops oldest, counted.
    stage_journal: Mutex<Vec<(u64, Terminal)>>,
    stage_journal_dropped: AtomicU64,
    /// Logical span (last − first record stamp) of each training round's
    /// harvest — the gate→promote stage of the timeline.
    gate_span_ns: AtomicHistogram,
}

impl fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeObs")
            .field("traced", &self.tracer.audit().decided)
            .field("interarrivals", &self.decision_interarrival_ns.count())
            .field("join_delays", &self.join_delay_ns.count())
            .finish()
    }
}

impl ServeObs {
    /// Builds the bundle from `cfg` (the `enabled` flag is the caller's
    /// concern — constructing implies enabled).
    pub fn new(cfg: &ObsConfig) -> Self {
        ServeObs {
            tracer: Tracer::new(TracerConfig {
                shards: cfg.trace_shards,
                capacity_per_shard: cfg.trace_capacity_per_shard,
                seq_bits: crate::engine::SEQ_BITS,
            }),
            decision_interarrival_ns: StripedHistogram::new(cfg.trace_shards),
            join_delay_ns: StripedHistogram::new(cfg.trace_shards),
            join_queue_depth: StripedHistogram::new(cfg.trace_shards),
            segment_records: AtomicHistogram::new(),
            segment_bytes: AtomicHistogram::new(),
            quality: Mutex::new(None),
            leaderboard: Mutex::new(None),
            stage_journal: Mutex::new(Vec::new()),
            stage_journal_dropped: AtomicU64::new(0),
            gate_span_ns: AtomicHistogram::new(),
        }
    }

    /// Journals one decision terminal for the stage timeline: the
    /// decision's logical stamp plus the terminal class it reached. The
    /// writer thread calls this alongside the trace terminal; the next
    /// [`drain_stage_journal`](Self::drain_stage_journal) (a scope tick)
    /// turns entries into decide→terminal latency samples.
    pub fn journal_stage_terminal(&self, decided_ns: u64, terminal: Terminal) {
        let mut journal = self.stage_journal.lock().unwrap_or_else(|e| e.into_inner());
        if journal.len() >= STAGE_JOURNAL_CAP {
            journal.remove(0);
            self.stage_journal_dropped.fetch_add(1, Ordering::Relaxed);
        }
        journal.push((decided_ns, terminal));
    }

    /// Drains every journaled terminal, in writer (global ticket) order.
    pub fn drain_stage_journal(&self) -> Vec<(u64, Terminal)> {
        std::mem::take(&mut *self.stage_journal.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Stage-journal entries dropped to the ring bound.
    pub fn stage_journal_dropped(&self) -> u64 {
        self.stage_journal_dropped.load(Ordering::Relaxed)
    }

    /// Records one training round's harvest span (last − first record
    /// stamp, logical ns) — the gate→promote stage.
    pub fn record_gate_span(&self, span_ns: u64) {
        self.gate_span_ns.record(span_ns);
    }

    /// Snapshot of the gate→promote harvest-span histogram.
    pub fn gate_span_histogram(&self) -> Histogram {
        self.gate_span_ns.snapshot()
    }

    /// The lifecycle tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records the logical-ns gap between successive same-shard decisions,
    /// on the deciding shard's stripe.
    pub fn record_interarrival(&self, shard: usize, gap_ns: u64) {
        self.decision_interarrival_ns.record(shard, gap_ns);
    }

    /// Bulk form of [`record_interarrival`](Self::record_interarrival):
    /// records the same gap `n` times in O(1). The batched decide path uses
    /// this for the `n − 1` zero gaps inside one batch, keeping the
    /// histogram identical to `n` single calls at one logical instant.
    pub fn record_interarrival_n(&self, shard: usize, gap_ns: u64, n: u64) {
        self.decision_interarrival_ns.record_n(shard, gap_ns, n);
    }

    /// Records one reward-join delay (observation − decision, logical ns),
    /// on the rewarded decision's shard stripe.
    pub fn record_join_delay(&self, shard: usize, delay_ns: u64) {
        self.join_delay_ns.record(shard, delay_ns);
    }

    /// Records the joiner's pending depth sampled at a `track`.
    pub fn record_join_queue_depth(&self, shard: usize, depth: u64) {
        self.join_queue_depth.record(shard, depth);
    }

    /// Publishes the latest training round's quality gauges.
    pub fn set_quality(&self, q: HarvestQuality) {
        *self.quality.lock().unwrap_or_else(|e| e.into_inner()) = Some(q);
    }

    /// The latest published quality gauges, if a round has run.
    pub fn quality(&self) -> Option<HarvestQuality> {
        *self.quality.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes the latest training round's ranked leaderboard.
    pub fn set_leaderboard(&self, report: PortfolioReport) {
        *self.leaderboard.lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
    }

    /// The latest published leaderboard, if a round has run.
    pub fn leaderboard(&self) -> Option<PortfolioReport> {
        self.leaderboard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The latest leaderboard as deterministic JSON, if a round has run.
    pub fn leaderboard_json(&self) -> Option<String> {
        self.leaderboard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|r| r.to_json())
    }

    /// Snapshot of the decision inter-arrival histogram.
    pub fn interarrival_histogram(&self) -> Histogram {
        self.decision_interarrival_ns.snapshot()
    }

    /// Snapshot of the join-delay histogram.
    pub fn join_delay_histogram(&self) -> Histogram {
        self.join_delay_ns.snapshot()
    }

    /// Snapshot of the join-queue-depth histogram.
    pub fn join_queue_depth_histogram(&self) -> Histogram {
        self.join_queue_depth.snapshot()
    }

    /// Snapshot of the sealed-segment record-count histogram.
    pub fn segment_records_histogram(&self) -> Histogram {
        self.segment_records.snapshot()
    }

    /// Snapshot of the sealed-segment byte-size histogram.
    pub fn segment_bytes_histogram(&self) -> Histogram {
        self.segment_bytes.snapshot()
    }
}

impl SealObserver for ServeObs {
    fn segment_sealed(&self, records: usize, bytes: usize) {
        self.segment_records.record(records as u64);
        self.segment_bytes.record(bytes as u64);
    }
}

/// Convenience: the observer handle the segment writer wants.
pub fn seal_observer(obs: &Arc<ServeObs>) -> Arc<dyn SealObserver> {
    Arc::clone(obs) as Arc<dyn SealObserver>
}

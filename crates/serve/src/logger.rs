//! The batched decision log: a bounded queue into one writer thread.
//!
//! The decision path must never do file I/O, so shards push records into a
//! bounded MPSC channel and a single writer thread drains it in batches,
//! emitting JSON lines that [`harvest_log`]'s scavenger reads back verbatim.
//! The queue bound forces an explicit [`Backpressure`] choice: block the
//! decision path until the writer catches up (lossless, adds latency) or
//! drop the newest record and count it (lossy, never stalls serving).
//!
//! Accounting invariant, checked by property tests: every record offered to
//! [`DecisionLogger::log`] is eventually either written or dropped —
//! `enqueued == written + dropped` once the writer has been joined.

use std::io::{self, Write};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use harvest_log::record::{JsonLinesWriter, LogRecord};

use crate::metrics::ServeMetrics;

/// What to do when the log queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the caller until the writer frees a slot. No record is ever
    /// lost, at the cost of decision latency under sustained overload.
    Block,
    /// Drop the record being offered and bump the drop counter. Serving
    /// never stalls; the harvested dataset thins out instead.
    DropNewest,
}

/// Log queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoggerConfig {
    /// Queue capacity in records.
    pub capacity: usize,
    /// Full-queue behavior.
    pub backpressure: Backpressure,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            capacity: 4096,
            backpressure: Backpressure::Block,
        }
    }
}

/// The producer half: cheap to clone, one per shard or caller thread.
#[derive(Debug, Clone)]
pub struct DecisionLogger {
    tx: SyncSender<LogRecord>,
    backpressure: Backpressure,
    metrics: Arc<ServeMetrics>,
}

impl DecisionLogger {
    /// Offers one record to the queue. Under [`Backpressure::Block`] this
    /// waits for space; under [`Backpressure::DropNewest`] a full queue
    /// drops the record and counts it. Records offered after the writer
    /// has shut down are counted as dropped.
    pub fn log(&self, record: LogRecord) {
        match self.backpressure {
            Backpressure::Block => match self.tx.send(record) {
                Ok(()) => self.metrics.record_enqueued(),
                Err(_) => self.metrics.record_dropped(),
            },
            Backpressure::DropNewest => match self.tx.try_send(record) {
                Ok(()) => self.metrics.record_enqueued(),
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.metrics.record_dropped()
                }
            },
        }
    }
}

/// The writer thread's handle; joins it and recovers the sink.
#[derive(Debug)]
pub struct LogWriterHandle<W> {
    handle: JoinHandle<io::Result<W>>,
}

impl<W> LogWriterHandle<W> {
    /// Waits for the writer to drain the queue and returns the sink.
    ///
    /// Every [`DecisionLogger`] clone must be dropped first, or this blocks
    /// forever — the writer runs until the channel disconnects.
    pub fn finish(self) -> io::Result<W> {
        self.handle
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    }
}

/// Spawns the writer thread over `sink` and returns the producer handle.
pub fn spawn_writer<W: Write + Send + 'static>(
    cfg: LoggerConfig,
    metrics: Arc<ServeMetrics>,
    sink: W,
) -> (DecisionLogger, LogWriterHandle<W>) {
    let (tx, rx) = sync_channel(cfg.capacity.max(1));
    let writer_metrics = Arc::clone(&metrics);
    let handle = std::thread::Builder::new()
        .name("harvest-serve-log-writer".to_string())
        .spawn(move || writer_loop(rx, writer_metrics, sink))
        .expect("spawn log writer thread");
    (
        DecisionLogger {
            tx,
            backpressure: cfg.backpressure,
            metrics,
        },
        LogWriterHandle { handle },
    )
}

/// Drains the channel in batches: one blocking receive wakes the thread,
/// then everything already queued is written before a single flush.
fn writer_loop<W: Write>(
    rx: Receiver<LogRecord>,
    metrics: Arc<ServeMetrics>,
    sink: W,
) -> io::Result<W> {
    let mut writer = JsonLinesWriter::new(sink);
    while let Ok(first) = rx.recv() {
        writer.write(&first)?;
        metrics.record_written();
        while let Ok(more) = rx.try_recv() {
            writer.write(&more)?;
            metrics.record_written();
        }
        // One flush per batch, not per record.
        let mut sink = writer.into_inner();
        sink.flush()?;
        writer = JsonLinesWriter::new(sink);
    }
    Ok(writer.into_inner())
}

/// An in-memory sink readable while the writer still owns it — the log
/// "file" for simulations and tests. Clones share the same buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.inner.lock().expect("shared buffer poisoned").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_log::record::{read_json_lines, OutcomeRecord};

    fn outcome(id: u64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id,
            reward: 1.0,
        })
    }

    #[test]
    fn blocking_logger_writes_everything_in_order() {
        let metrics = Arc::new(ServeMetrics::new());
        let cfg = LoggerConfig {
            capacity: 2,
            backpressure: Backpressure::Block,
        };
        let (logger, writer) = spawn_writer(cfg, Arc::clone(&metrics), Vec::new());
        for id in 0..100 {
            logger.log(outcome(id));
        }
        drop(logger);
        let buf = writer.finish().unwrap();
        let (records, stats) = read_json_lines(buf.as_slice()).unwrap();
        assert_eq!(stats.parsed, 100);
        assert_eq!(stats.malformed, 0);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r, &outcome(i as u64));
        }
        let s = metrics.snapshot();
        assert_eq!(s.log_enqueued, 100);
        assert_eq!(s.log_written, 100);
        assert_eq!(s.log_dropped, 0);
        assert_eq!(s.log_backlog, 0);
    }

    #[test]
    fn drop_newest_accounts_for_every_offer() {
        let metrics = Arc::new(ServeMetrics::new());
        let cfg = LoggerConfig {
            capacity: 4,
            backpressure: Backpressure::DropNewest,
        };
        let (logger, writer) = spawn_writer(cfg, Arc::clone(&metrics), Vec::new());
        let offered = 10_000u64;
        for id in 0..offered {
            logger.log(outcome(id));
        }
        drop(logger);
        let buf = writer.finish().unwrap();
        let (records, _) = read_json_lines(buf.as_slice()).unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.log_enqueued + s.log_dropped, offered);
        assert_eq!(s.log_written, s.log_enqueued);
        assert_eq!(records.len() as u64, s.log_written);
        assert_eq!(s.log_backlog, 0);
    }

    #[test]
    fn shared_buffer_is_readable_mid_stream() {
        let metrics = Arc::new(ServeMetrics::new());
        let sink = SharedBuffer::new();
        let (logger, writer) = spawn_writer(LoggerConfig::default(), metrics, sink.clone());
        logger.log(outcome(7));
        // Wait for the writer to drain the record.
        while sink.contents().is_empty() {
            std::thread::yield_now();
        }
        let (records, _) = read_json_lines(sink.contents().as_slice()).unwrap();
        assert_eq!(records, vec![outcome(7)]);
        drop(logger);
        writer.finish().unwrap();
    }
}

//! The decision-log producer: per-shard SPSC rings into the supervised
//! writer.
//!
//! The decision path must never do file I/O, so shards push records into
//! their own single-producer rings ([`crate::ring`]) and the supervised
//! writer thread (see [`supervisor`](crate::supervisor)) drains the rings
//! in global ticket order into crash-safe log segments
//! ([`harvest_log::segment`]). The record-weighted [`QueueBudget`] bound
//! forces an explicit [`Backpressure`] choice: block the decision path
//! until the writer catches up (lossless, adds latency) or drop the newest
//! record and count it (lossy, never stalls serving).
//!
//! Accounting invariant, checked by property and chaos tests: **every**
//! record offered to [`DecisionLogger::log`] is counted `enqueued`, and
//! once the pipeline drains, `enqueued == written + dropped + quarantined`.
//! No fault class — backpressure, writer crash, torn write, permanent
//! writer death — can make a record vanish from that ledger.
//!
//! [`QueueBudget`]: crate::admission::QueueBudget

use std::sync::Arc;

use harvest_log::record::LogRecord;
use harvest_log::segment::SegmentConfig;

// The queue bound lives in [`crate::admission`] (promoted to a shared
// admission primitive; the wire front-end bounds its in-flight work with
// the same type). The rings are sized in frames (frames ≤ records, so no
// ring can fill before the budget does); the budget is the real bound. The
// writer releases a frame's weight when it pops the frame — *before*
// persisting it, so an injected mid-write panic can never leak capacity
// and wedge Block-mode producers.
use crate::admission::QueueBudget;
use crate::metrics::ServeMetrics;
use crate::ring::LogRings;

/// What to do when the log queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the caller until the writer frees a slot. No record is ever
    /// refused at the door, at the cost of decision latency under sustained
    /// overload. (A permanently-failed writer still discards — and counts —
    /// what it cannot persist, so blocking callers are never wedged.)
    Block,
    /// Drop the record being offered and bump the drop counter. Serving
    /// never stalls; the harvested dataset thins out instead.
    DropNewest,
}

/// Log queue and segment configuration.
///
/// Construct via [`LoggerConfig::builder`] or from
/// [`LoggerConfig::default`]; `#[non_exhaustive]`, so out-of-crate literal
/// construction no longer compiles.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct LoggerConfig {
    /// Queue capacity in **logical records**: a batch frame counts every
    /// decision it carries ([`LogRecord::record_count`]), so the bound —
    /// and the memory it implies — is the same whether producers log
    /// singles or batches.
    pub capacity: usize,
    /// Full-queue behavior.
    pub backpressure: Backpressure,
    /// Rotation thresholds for the crash-safe segments the writer emits.
    pub segment: SegmentConfig,
    /// Index of the first segment the writer creates. Zero for a fresh
    /// service; a warm restart sets it past the segments already on disk so
    /// the new incarnation appends instead of overwriting history.
    pub first_segment: u64,
    /// How many per-shard SPSC rings to spread producers across — set this
    /// to the engine's shard count (the service does so automatically) so
    /// each shard owns a ring and pushes are uncontended by construction.
    /// Records route by deciding shard (`request_id >> SEQ_BITS`), so any
    /// value ≥ 1 is correct; fewer rings than shards just shares them.
    pub shard_rings: usize,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            capacity: 4096,
            backpressure: Backpressure::Block,
            segment: SegmentConfig::default(),
            first_segment: 0,
            shard_rings: 1,
        }
    }
}

impl LoggerConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> LoggerConfigBuilder {
        LoggerConfigBuilder(LoggerConfig::default())
    }
}

/// Builder for [`LoggerConfig`].
#[derive(Debug, Clone)]
pub struct LoggerConfigBuilder(LoggerConfig);

impl LoggerConfigBuilder {
    /// Queue capacity in records.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.0.capacity = capacity;
        self
    }

    /// Full-queue behavior.
    pub fn backpressure(mut self, backpressure: Backpressure) -> Self {
        self.0.backpressure = backpressure;
        self
    }

    /// Segment rotation thresholds.
    pub fn segment(mut self, segment: SegmentConfig) -> Self {
        self.0.segment = segment;
        self
    }

    /// First segment index the writer creates (warm restarts resume past
    /// the segments already persisted).
    pub fn first_segment(mut self, first_segment: u64) -> Self {
        self.0.first_segment = first_segment;
        self
    }

    /// Number of per-shard SPSC rings (match the engine's shard count).
    pub fn shard_rings(mut self, shard_rings: usize) -> Self {
        self.0.shard_rings = shard_rings;
        self
    }

    /// Returns the config.
    pub fn build(self) -> LoggerConfig {
        self.0
    }
}

/// Hang-up token: every [`DecisionLogger`] clone shares one; when the last
/// clone drops, the writer learns the producers are gone — the ring
/// equivalent of the old channel disconnect.
#[derive(Debug)]
struct ProducerToken {
    rings: Arc<LogRings>,
}

impl Drop for ProducerToken {
    fn drop(&mut self) {
        self.rings.producer_gone();
    }
}

/// The producer half: cheap to clone, one per shard or caller thread.
#[derive(Debug, Clone)]
pub struct DecisionLogger {
    rings: Arc<LogRings>,
    budget: Arc<QueueBudget>,
    backpressure: Backpressure,
    metrics: Arc<ServeMetrics>,
    _token: Arc<ProducerToken>,
}

impl DecisionLogger {
    /// Builds the producer half over an existing ring set. Crate-internal:
    /// producers come from
    /// [`spawn_supervised_writer`](crate::supervisor::spawn_supervised_writer).
    pub(crate) fn new(
        rings: Arc<LogRings>,
        budget: Arc<QueueBudget>,
        backpressure: Backpressure,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let token = Arc::new(ProducerToken {
            rings: Arc::clone(&rings),
        });
        DecisionLogger {
            rings,
            budget,
            backpressure,
            metrics,
            _token: token,
        }
    }

    /// Offers one record to the queue. Every offer counts as `enqueued` —
    /// scaled by [`LogRecord::record_count`], so a batch frame counts every
    /// decision it carries; offers refused by a full queue (under
    /// [`Backpressure::DropNewest`]) additionally count as `dropped` (again
    /// in logical records).
    ///
    /// Returns `true` when the record entered the queue, `false` when it
    /// was refused at the door — the caller-side signal the tracer needs
    /// to mark a shed decision terminal without waiting on the writer.
    pub fn log(&self, record: LogRecord) -> bool {
        let n = record.record_count() as u64;
        self.metrics.record_enqueued_n(n);
        match self.backpressure {
            Backpressure::Block => {
                self.budget.acquire_blocking(n);
                self.rings.push(record);
                true
            }
            Backpressure::DropNewest => {
                if !self.budget.try_acquire(n) {
                    self.metrics.record_dropped_n(n);
                    return false;
                }
                self.rings.push(record);
                true
            }
        }
    }

    /// Reserves capacity for an `n`-record frame *before* the frame is
    /// built. `true` means the frame is admitted and must be delivered via
    /// [`send_reserved`](DecisionLogger::send_reserved); `false` (only
    /// under [`Backpressure::DropNewest`]) means the frame is refused and
    /// the caller should account for it via
    /// [`refuse`](DecisionLogger::refuse) instead of building it at all.
    ///
    /// This is the batch path's admission control: a refused 256-decision
    /// frame costs one failed reservation, not 256 feature clones plus a
    /// record allocation that would be dropped at the door anyway.
    pub(crate) fn reserve(&self, n: u64) -> bool {
        match self.backpressure {
            Backpressure::Block => {
                self.budget.acquire_blocking(n);
                true
            }
            Backpressure::DropNewest => self.budget.try_acquire(n),
        }
    }

    /// Offers a frame whose capacity was reserved by
    /// [`reserve`](DecisionLogger::reserve). Counts `enqueued` exactly like
    /// [`log`](DecisionLogger::log); the reservation guarantees ring space
    /// (frames ≤ records), so the push cannot be refused — as long as any
    /// producer is alive the writer (or its post-mortem drain) pops.
    pub(crate) fn send_reserved(&self, record: LogRecord) -> bool {
        let n = record.record_count() as u64;
        self.metrics.record_enqueued_n(n);
        self.rings.push(record);
        true
    }

    /// Accounts for an `n`-record frame refused by a failed
    /// [`reserve`](DecisionLogger::reserve): the conservation ledger counts
    /// it offered (`enqueued`) and shed (`dropped`), exactly as if the
    /// built frame had been offered to [`log`](DecisionLogger::log) and
    /// turned away at the door.
    pub(crate) fn refuse(&self, n: u64) {
        self.metrics.record_enqueued_n(n);
        self.metrics.record_dropped_n(n);
    }
}

//! The decision-log producer: a bounded queue into the supervised writer.
//!
//! The decision path must never do file I/O, so shards push records into a
//! bounded MPSC channel and the supervised writer thread (see
//! [`supervisor`](crate::supervisor)) drains it in batches into crash-safe
//! log segments ([`harvest_log::segment`]). The queue bound forces an
//! explicit [`Backpressure`] choice: block the decision path until the
//! writer catches up (lossless, adds latency) or drop the newest record and
//! count it (lossy, never stalls serving).
//!
//! Accounting invariant, checked by property and chaos tests: **every**
//! record offered to [`DecisionLogger::log`] is counted `enqueued`, and
//! once the pipeline drains, `enqueued == written + dropped + quarantined`.
//! No fault class — backpressure, writer crash, torn write, permanent
//! writer death — can make a record vanish from that ledger.

use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

use harvest_log::record::LogRecord;
use harvest_log::segment::SegmentConfig;

use crate::metrics::ServeMetrics;

/// What to do when the log queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the caller until the writer frees a slot. No record is ever
    /// refused at the door, at the cost of decision latency under sustained
    /// overload. (A permanently-failed writer still discards — and counts —
    /// what it cannot persist, so blocking callers are never wedged.)
    Block,
    /// Drop the record being offered and bump the drop counter. Serving
    /// never stalls; the harvested dataset thins out instead.
    DropNewest,
}

/// Log queue and segment configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoggerConfig {
    /// Queue capacity in records.
    pub capacity: usize,
    /// Full-queue behavior.
    pub backpressure: Backpressure,
    /// Rotation thresholds for the crash-safe segments the writer emits.
    pub segment: SegmentConfig,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            capacity: 4096,
            backpressure: Backpressure::Block,
            segment: SegmentConfig::default(),
        }
    }
}

/// The producer half: cheap to clone, one per shard or caller thread.
#[derive(Debug, Clone)]
pub struct DecisionLogger {
    tx: SyncSender<LogRecord>,
    backpressure: Backpressure,
    metrics: Arc<ServeMetrics>,
}

impl DecisionLogger {
    /// Builds the producer half over an existing channel sender. Crate-
    /// internal: producers come from
    /// [`spawn_supervised_writer`](crate::supervisor::spawn_supervised_writer).
    pub(crate) fn new(
        tx: SyncSender<LogRecord>,
        backpressure: Backpressure,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        DecisionLogger {
            tx,
            backpressure,
            metrics,
        }
    }

    /// Offers one record to the queue. Every offer counts as `enqueued`;
    /// offers refused by a full queue (under [`Backpressure::DropNewest`])
    /// or by a shut-down writer additionally count as `dropped`.
    ///
    /// Returns `true` when the record entered the queue, `false` when it
    /// was refused at the door — the caller-side signal the tracer needs
    /// to mark a shed decision terminal without waiting on the writer.
    pub fn log(&self, record: LogRecord) -> bool {
        self.metrics.record_enqueued();
        match self.backpressure {
            Backpressure::Block => {
                if self.tx.send(record).is_err() {
                    self.metrics.record_dropped();
                    return false;
                }
                true
            }
            Backpressure::DropNewest => match self.tx.try_send(record) {
                Ok(()) => true,
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.metrics.record_dropped();
                    false
                }
            },
        }
    }
}

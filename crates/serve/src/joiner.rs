//! The reward joiner: matching delayed rewards to decisions under a TTL.
//!
//! A decision's consequence (request latency, machine recovery, cache hit)
//! arrives later, on a different code path, keyed only by `request_id`. The
//! joiner tracks every decision for a bounded logical-time window and admits
//! at most one reward per decision inside that window. Two invariants hold
//! unconditionally (and are property-tested):
//!
//! 1. **No join after expiry** — a reward arriving more than `ttl_ns` after
//!    its decision is refused, even if the decision was never joined.
//! 2. **No duplicate joins** — a second reward for the same decision is
//!    refused, no matter how quickly it arrives.
//!
//! Time is the caller's logical clock (the same one stamped on decisions),
//! and must be non-decreasing across calls; the joiner never reads a wall
//! clock, so replaying a trace reproduces the exact same join outcomes.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use harvest_log::record::OutcomeRecord;
use serde::{Deserialize, Serialize};

use crate::metrics::ServeMetrics;

/// What happened to one reward observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// Matched a tracked decision inside its TTL; an outcome record was
    /// produced.
    Joined,
    /// The decision was already joined; the reward is refused.
    Duplicate,
    /// The decision's TTL had lapsed; the reward is refused.
    Expired,
    /// No decision with this id was ever tracked.
    Unknown,
    /// The reward was lost in flight (chaos drop) before reaching the
    /// joiner; counted as `rewards_lost`, the decision stays pending.
    Lost,
}

/// Durable joiner state for the control-plane checkpoint: the pending map
/// and both tombstone sets, each sorted so the serialized bytes are a pure
/// function of the joiner's logical state (hash iteration order never
/// leaks into the checkpoint).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinerState {
    /// `(request_id, deadline)` pairs still awaiting a reward.
    pub pending: Vec<(u64, u64)>,
    /// Ids that joined a reward.
    pub joined: Vec<u64>,
    /// Ids whose TTL lapsed unjoined.
    pub expired: Vec<u64>,
}

/// Joins delayed rewards to tracked decisions within a logical-time TTL.
#[derive(Debug)]
pub struct RewardJoiner {
    ttl_ns: u64,
    /// request_id → expiry deadline (decision time + TTL, saturating).
    pending: HashMap<u64, u64>,
    /// (deadline, request_id), for in-order expiry sweeps.
    deadlines: BTreeSet<(u64, u64)>,
    /// Tombstones. Ids only ever move pending → joined or pending →
    /// expired, so each id is counted exactly once. Tombstones are kept
    /// forever — the price of exact duplicate/late classification; bound
    /// the id space (e.g. restart per epoch) if memory matters.
    joined: HashSet<u64>,
    expired: HashSet<u64>,
    metrics: Arc<ServeMetrics>,
}

impl RewardJoiner {
    /// Creates a joiner with the given TTL, reporting into `metrics`.
    pub fn new(ttl_ns: u64, metrics: Arc<ServeMetrics>) -> Self {
        RewardJoiner {
            ttl_ns,
            pending: HashMap::new(),
            deadlines: BTreeSet::new(),
            joined: HashSet::new(),
            expired: HashSet::new(),
            metrics,
        }
    }

    /// Starts tracking a decision made at `now_ns`. A re-tracked id keeps
    /// its original deadline.
    pub fn track(&mut self, request_id: u64, now_ns: u64) {
        self.sweep(now_ns);
        self.track_swept(request_id, now_ns);
    }

    /// Bulk form of [`track`](RewardJoiner::track) for one batch of
    /// decisions made at the same logical instant. Equivalent to calling
    /// `track` once per id in order — the expiry sweep runs once up front
    /// (repeat sweeps at the same `now_ns` are no-ops), and the depth
    /// histogram still samples after every insert, exactly as the single
    /// calls would.
    pub fn track_many(&mut self, request_ids: impl IntoIterator<Item = u64>, now_ns: u64) {
        self.sweep(now_ns);
        for request_id in request_ids {
            self.track_swept(request_id, now_ns);
        }
    }

    /// Insert + depth sample for one id, after the caller has swept.
    fn track_swept(&mut self, request_id: u64, now_ns: u64) {
        if !(self.joined.contains(&request_id)
            || self.expired.contains(&request_id)
            || self.pending.contains_key(&request_id))
        {
            let deadline = now_ns.saturating_add(self.ttl_ns);
            self.pending.insert(request_id, deadline);
            self.deadlines.insert((deadline, request_id));
        }
        // Queue depth sampled at every track: a pure function of the
        // call sequence, hence deterministic under replay.
        if let Some(obs) = self.metrics.obs() {
            let stripe = (request_id >> crate::engine::SEQ_BITS) as usize;
            obs.record_join_queue_depth(stripe, self.pending.len() as u64);
        }
    }

    /// Offers a reward observed at `now_ns`. On [`JoinOutcome::Joined`] the
    /// matching outcome record is returned for logging.
    pub fn join(
        &mut self,
        request_id: u64,
        now_ns: u64,
        reward: f64,
    ) -> (JoinOutcome, Option<OutcomeRecord>) {
        self.sweep(now_ns);
        if self.joined.contains(&request_id) {
            self.metrics.record_join_duplicate();
            return (JoinOutcome::Duplicate, None);
        }
        if self.expired.contains(&request_id) {
            self.metrics.record_join_late();
            return (JoinOutcome::Expired, None);
        }
        match self.pending.remove(&request_id) {
            Some(deadline) => {
                self.deadlines.remove(&(deadline, request_id));
                self.joined.insert(request_id);
                if let Some(obs) = self.metrics.obs() {
                    // Deadline was decision time + TTL (saturating), so the
                    // join delay in logical time is recoverable exactly.
                    let decided_ns = deadline.saturating_sub(self.ttl_ns);
                    let stripe = (request_id >> crate::engine::SEQ_BITS) as usize;
                    obs.record_join_delay(stripe, now_ns.saturating_sub(decided_ns));
                    obs.tracer().joined(request_id, now_ns);
                }
                self.metrics.record_join_hit();
                (
                    JoinOutcome::Joined,
                    Some(OutcomeRecord {
                        request_id,
                        timestamp_ns: now_ns,
                        reward,
                    }),
                )
            }
            None => {
                self.metrics.record_join_unknown();
                (JoinOutcome::Unknown, None)
            }
        }
    }

    /// Decisions still waiting for a reward.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Snapshots the joiner's durable state for a checkpoint. Sorted, so
    /// same logical state ⇒ byte-identical serialization.
    pub fn state(&self) -> JoinerState {
        let mut pending: Vec<(u64, u64)> = self.pending.iter().map(|(&id, &d)| (id, d)).collect();
        pending.sort_unstable();
        let mut joined: Vec<u64> = self.joined.iter().copied().collect();
        joined.sort_unstable();
        let mut expired: Vec<u64> = self.expired.iter().copied().collect();
        expired.sort_unstable();
        JoinerState {
            pending,
            joined,
            expired,
        }
    }

    /// Restores a checkpointed state verbatim, replacing the current one.
    /// Touches no metrics: the counters describing this state were restored
    /// separately, and a restore is bookkeeping, not new join traffic.
    pub fn restore(&mut self, state: &JoinerState) {
        self.pending = state.pending.iter().copied().collect();
        self.deadlines = state.pending.iter().map(|&(id, d)| (d, id)).collect();
        self.joined = state.joined.iter().copied().collect();
        self.expired = state.expired.iter().copied().collect();
    }

    /// Warm-restart replay of a logged outcome record. An outcome only ever
    /// reaches the log because some incarnation joined it, so the normal
    /// path is a re-join against the restored pending set (counted
    /// `join_hits`, exactly as the original join was after the checkpoint).
    /// The exception is an **orphan**: the outcome survived in the durable
    /// log but its decision did not (quarantined with a torn segment). Its
    /// reward can never be joined again — it is counted `rewards_lost`, not
    /// dropped on the floor, so the reward ledger still reconciles across
    /// incarnations.
    pub fn replay_outcome(&mut self, request_id: u64, now_ns: u64, reward: f64) -> JoinOutcome {
        let (outcome, _rec) = self.join(request_id, now_ns, reward);
        if outcome == JoinOutcome::Unknown {
            self.metrics.record_reward_lost();
            return JoinOutcome::Lost;
        }
        outcome
    }

    /// Moves every decision whose deadline has passed to the expired set.
    /// A reward at exactly the deadline still joins; one tick later it is
    /// late.
    fn sweep(&mut self, now_ns: u64) {
        while let Some(&(deadline, id)) = self.deadlines.iter().next() {
            if deadline >= now_ns {
                break;
            }
            self.deadlines.remove(&(deadline, id));
            self.pending.remove(&id);
            self.expired.insert(id);
            self.metrics.record_timed_out();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joiner(ttl: u64) -> RewardJoiner {
        RewardJoiner::new(ttl, Arc::new(ServeMetrics::new()))
    }

    #[test]
    fn joins_inside_ttl_and_emits_outcome() {
        let mut j = joiner(100);
        j.track(1, 1000);
        let (outcome, rec) = j.join(1, 1050, 0.7);
        assert_eq!(outcome, JoinOutcome::Joined);
        let rec = rec.unwrap();
        assert_eq!(rec.request_id, 1);
        assert_eq!(rec.timestamp_ns, 1050);
        assert_eq!(rec.reward, 0.7);
        assert_eq!(j.pending_len(), 0);
    }

    #[test]
    fn deadline_is_inclusive() {
        let mut j = joiner(100);
        j.track(1, 1000);
        assert_eq!(j.join(1, 1100, 1.0).0, JoinOutcome::Joined);
        let mut j = joiner(100);
        j.track(1, 1000);
        assert_eq!(j.join(1, 1101, 1.0).0, JoinOutcome::Expired);
    }

    #[test]
    fn duplicates_are_refused() {
        let mut j = joiner(100);
        j.track(1, 0);
        assert_eq!(j.join(1, 10, 1.0).0, JoinOutcome::Joined);
        assert_eq!(j.join(1, 11, 2.0).0, JoinOutcome::Duplicate);
        let s = j.metrics.snapshot();
        assert_eq!(s.join_hits, 1);
        assert_eq!(s.join_duplicates, 1);
    }

    #[test]
    fn unknown_ids_are_distinguished_from_expired() {
        let mut j = joiner(100);
        j.track(1, 0);
        assert_eq!(j.join(2, 10, 1.0).0, JoinOutcome::Unknown);
        assert_eq!(j.join(1, 500, 1.0).0, JoinOutcome::Expired);
        let s = j.metrics.snapshot();
        assert_eq!(s.join_unknown, 1);
        assert_eq!(s.join_late, 1);
        assert_eq!(s.timed_out_decisions, 1);
    }

    #[test]
    fn retracking_keeps_the_original_deadline() {
        let mut j = joiner(100);
        j.track(1, 0);
        j.track(1, 90); // would extend to 190 if re-tracked
        assert_eq!(j.join(1, 150, 1.0).0, JoinOutcome::Expired);
    }

    #[test]
    fn saturating_deadline_never_expires() {
        let mut j = joiner(u64::MAX);
        j.track(1, 5);
        assert_eq!(j.join(1, u64::MAX - 1, 1.0).0, JoinOutcome::Joined);
    }

    #[test]
    fn state_round_trips_and_is_sorted() {
        let mut j = joiner(100);
        for id in [9u64, 3, 7, 1] {
            j.track(id, 0);
        }
        assert_eq!(j.join(3, 10, 1.0).0, JoinOutcome::Joined);
        assert_eq!(j.join(7, 500, 1.0).0, JoinOutcome::Expired); // sweeps 1, 7, 9
        let state = j.state();
        assert!(state.pending.is_empty());
        assert_eq!(state.joined, vec![3]);
        assert_eq!(state.expired, vec![1, 7, 9]);
        let mut restored = joiner(100);
        restored.restore(&state);
        assert_eq!(restored.state(), state);
        // Restored tombstones classify rewards exactly as the original.
        assert_eq!(restored.join(3, 600, 1.0).0, JoinOutcome::Duplicate);
        assert_eq!(restored.join(9, 600, 1.0).0, JoinOutcome::Expired);
    }

    #[test]
    fn restored_pending_decisions_still_join() {
        let mut j = joiner(100);
        j.track(5, 1000);
        let state = j.state();
        assert_eq!(state.pending, vec![(5, 1100)]);
        let mut restored = joiner(100);
        restored.restore(&state);
        let (outcome, rec) = restored.join(5, 1050, 0.4);
        assert_eq!(outcome, JoinOutcome::Joined);
        assert_eq!(rec.unwrap().reward, 0.4);
        // The original deadline survives the restart: one tick past it and
        // the reward is late, exactly as in an uninterrupted run.
        let mut late = joiner(100);
        late.restore(&state);
        assert_eq!(late.join(5, 1101, 0.4).0, JoinOutcome::Expired);
    }

    #[test]
    fn replayed_orphan_outcome_is_counted_lost() {
        let mut j = joiner(100);
        j.track(1, 0);
        // Id 1 replays as a normal join; id 99's decision never survived.
        assert_eq!(j.replay_outcome(1, 10, 1.0), JoinOutcome::Joined);
        assert_eq!(j.replay_outcome(99, 10, 1.0), JoinOutcome::Lost);
        let s = j.metrics.snapshot();
        assert_eq!(s.join_hits, 1);
        assert_eq!(s.rewards_lost, 1);
    }
}

//! The assembled decision service.
//!
//! [`DecisionService`] wires the subsystems together — registry, sharded
//! engine, supervised crash-safe log writer, reward joiner, trainer/gate,
//! circuit breaker — behind a three-call surface:
//!
//! * [`decide`](DecisionService::decide) — serve one request (hot path);
//! * [`reward`](DecisionService::reward) — report a delayed reward;
//! * [`train_and_maybe_promote`](DecisionService::train_and_maybe_promote)
//!   — run one harvest → train → gate round and hot-swap on success.
//!
//! All three take `&self`: training can run on a background thread while
//! shards keep serving, and a promotion reaches the shards through one
//! atomic flip. The only wall-clock anywhere is the caller's own `now_ns`
//! stamp, so a same-seed replay of the same call sequence reproduces the
//! decision log byte for byte.
//!
//! # Failure behavior
//!
//! The service is built to keep serving through the fault classes a
//! [`ChaosPlan`] can inject (and their real-world counterparts):
//!
//! * **Writer crashes** are absorbed by the supervisor
//!   ([`spawn_supervised_writer`]): the thread is restarted with capped
//!   exponential backoff, torn tails are sealed into their segment, and a
//!   writer past its restart budget keeps draining the queue — counting
//!   every record dropped — so `Block`-mode callers never wedge.
//! * **Wedged shards** (the chaos fault that replaced lock poisoning on
//!   the lock-free decide path) are recovered and counted at the shard's
//!   next acquisition, never propagated; poisoned mutexes elsewhere
//!   (joiner, breaker, writer) are likewise recovered and counted.
//! * **Degraded mode**: the [`CircuitBreaker`] watches the fault signal,
//!   the writer's liveness, and the promotion gate's confidence radius.
//!   While open, decisions are served by the configured *safe policy*
//!   (paper §3's safe arm), stamped [`Decision::degraded`], and still log
//!   exact propensities — degraded traffic remains harvestable.
//! * **Trainer crashes** surface as [`ServeError::TrainerCrashed`], trip
//!   the breaker, and leave the incumbent untouched.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use harvest_core::SimpleContext;
use harvest_log::record::LogRecord;
use harvest_log::segment::SegmentSink;
use harvest_sim_net::fault::{ChaosPlan, RewardFault};
use serde::Serialize;

use crate::batch::DecisionBatch;
use crate::breaker::{BreakerConfig, CircuitBreaker, TripReason};
use crate::engine::{Decision, DecisionEngine, EngineConfig};
use crate::error::{lock_recovering, ServeError};
use crate::export::{obs_snapshot, prometheus_page, ObsSnapshot};
use crate::joiner::{JoinOutcome, RewardJoiner};
use crate::logger::{DecisionLogger, LoggerConfig};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::obs::{ObsConfig, ServeObs};
use crate::registry::{PolicyRegistry, ServePolicy};
use crate::scope::{HarvestScope, ScopeConfig};
use crate::supervisor::{spawn_supervised_writer, SupervisorConfig, WriterSupervisorHandle};
use crate::trainer::{GateReport, Trainer, TrainerConfig};

/// Everything configurable about the service.
///
/// Construct via [`ServeConfig::builder`] (validating, with flattened
/// conveniences for the common engine knobs) or start from
/// [`ServeConfig::default`] and set fields. The struct is
/// `#[non_exhaustive]`: literal construction outside this crate no longer
/// compiles, so new knobs can ship without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Decision engine: shards, ε floor, master seed.
    pub engine: EngineConfig,
    /// Log queue, backpressure, and segment rotation.
    pub logger: LoggerConfig,
    /// Writer supervision: restart budget and backoff.
    pub supervisor: SupervisorConfig,
    /// Degraded-mode circuit breaker thresholds.
    pub breaker: BreakerConfig,
    /// The safe arm served while the breaker is open. Uniform by default:
    /// its per-action propensity is exactly `1/K`, so even degraded traffic
    /// yields unbiased harvestable data.
    pub safe_policy: ServePolicy,
    /// Reward-join TTL in logical nanoseconds.
    pub join_ttl_ns: u64,
    /// Trainer and promotion gate.
    pub trainer: TrainerConfig,
    /// Observability: decision tracer and telemetry histograms.
    pub obs: ObsConfig,
    /// The ops plane: windowed time series, stage-latency timeline, and
    /// deterministic watchdogs. Requires [`ObsConfig::enabled`].
    pub scope: ScopeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let engine = EngineConfig::default();
        ServeConfig {
            trainer: TrainerConfig {
                epsilon: engine.epsilon,
                ..TrainerConfig::default()
            },
            engine,
            logger: LoggerConfig::default(),
            supervisor: SupervisorConfig::default(),
            breaker: BreakerConfig::default(),
            safe_policy: ServePolicy::Uniform,
            join_ttl_ns: 10_000_000_000, // 10 logical seconds
            obs: ObsConfig::default(),
            scope: ScopeConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder(ServeConfig::default())
    }
}

/// Builder for [`ServeConfig`].
///
/// The engine's everyday knobs — [`shards`](ServeConfigBuilder::shards),
/// [`epsilon`](ServeConfigBuilder::epsilon),
/// [`master_seed`](ServeConfigBuilder::master_seed),
/// [`component`](ServeConfigBuilder::component) — are flattened onto the
/// builder; whole sub-configs can still be swapped in via
/// [`engine`](ServeConfigBuilder::engine) and friends.
/// [`build`](ServeConfigBuilder::build) validates everything the service
/// would otherwise panic on at construction.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder(ServeConfig);

impl ServeConfigBuilder {
    /// Number of decision shards (must stay ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.0.engine.shards = shards;
        self
    }

    /// The exploration floor ε, applied to serving *and* to the trainer's
    /// as-served gate evaluation (must stay in `(0, 1]`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.0.engine.epsilon = epsilon;
        self.0.trainer.epsilon = epsilon;
        self
    }

    /// Master seed for the per-shard RNG streams.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.0.engine.master_seed = seed;
        self
    }

    /// Component name stamped into decision records.
    pub fn component(mut self, component: impl Into<String>) -> Self {
        self.0.engine.component = component.into();
        self
    }

    /// Replaces the whole engine config.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.0.engine = engine;
        self
    }

    /// Replaces the log queue / segment config.
    pub fn logger(mut self, logger: LoggerConfig) -> Self {
        self.0.logger = logger;
        self
    }

    /// Replaces the writer supervision config.
    pub fn supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.0.supervisor = supervisor;
        self
    }

    /// Replaces the circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.0.breaker = breaker;
        self
    }

    /// The safe arm served while the breaker is open.
    pub fn safe_policy(mut self, policy: ServePolicy) -> Self {
        self.0.safe_policy = policy;
        self
    }

    /// Reward-join TTL in logical nanoseconds.
    pub fn join_ttl_ns(mut self, ttl_ns: u64) -> Self {
        self.0.join_ttl_ns = ttl_ns;
        self
    }

    /// Replaces the trainer / promotion-gate config.
    pub fn trainer(mut self, trainer: TrainerConfig) -> Self {
        self.0.trainer = trainer;
        self
    }

    /// Replaces the observability config.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.0.obs = obs;
        self
    }

    /// Replaces the ops-plane (scope) config.
    pub fn scope(mut self, scope: ScopeConfig) -> Self {
        self.0.scope = scope;
        self
    }

    /// Validates and returns the config: the engine needs ≥ 1 shard and ε
    /// in `(0, 1]`, and the breaker's window, trip, and re-arm thresholds
    /// must be nonzero.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        if self.0.engine.shards == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "engine needs at least one shard".to_string(),
            });
        }
        if !(self.0.engine.epsilon > 0.0 && self.0.engine.epsilon <= 1.0) {
            return Err(ServeError::InvalidConfig {
                reason: format!("epsilon must be in (0, 1], got {}", self.0.engine.epsilon),
            });
        }
        for (name, v) in [
            ("window", self.0.breaker.window),
            ("trip_faults", self.0.breaker.trip_faults),
            ("rearm_healthy", self.0.breaker.rearm_healthy),
        ] {
            if v == 0 {
                return Err(ServeError::InvalidConfig {
                    reason: format!("breaker {name} must be nonzero"),
                });
            }
        }
        Ok(self.0)
    }
}

/// One promotion round's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PromotionReport {
    /// The gate's verdict and its evidence.
    pub gate: GateReport,
    /// The generation now serving (new on promotion, unchanged otherwise).
    pub serving_generation: u64,
    /// Name of the version now serving.
    pub serving_name: String,
}

/// The online decision service. `S` is the segment sink the supervised
/// writer persists into (files in production, [`MemorySegments`] in
/// simulations and chaos tests).
///
/// [`MemorySegments`]: harvest_log::segment::MemorySegments
pub struct DecisionService<S: SegmentSink + Send + 'static> {
    // Fields are crate-visible so the warm-restart path
    // ([`crate::recovery`]) can capture and restore them without widening
    // the public surface.
    pub(crate) registry: Arc<PolicyRegistry>,
    pub(crate) engine: DecisionEngine,
    pub(crate) joiner: Mutex<RewardJoiner>,
    logger: DecisionLogger,
    writer: Option<WriterSupervisorHandle<S>>,
    pub(crate) metrics: Arc<ServeMetrics>,
    trainer: Trainer,
    /// Promotion naming counter (`cb-round-N`); advances only on promotion.
    pub(crate) rounds: Mutex<u64>,
    /// Training-round index for chaos crash scheduling; advances per call.
    pub(crate) train_rounds: AtomicU64,
    pub(crate) breaker: CircuitBreaker,
    safe_policy: ServePolicy,
    pub(crate) chaos: Option<Arc<ChaosPlan>>,
    /// Global decision index for chaos scheduling (poison faults).
    pub(crate) decision_seq: AtomicU64,
    /// Global reward-call index for chaos scheduling (drop/delay faults).
    pub(crate) reward_seq: AtomicU64,
    /// The ops plane, when both obs and scope are enabled. Ticked behind a
    /// mutex — ticks are control-plane cadence, never the hot path.
    scope: Option<Mutex<HarvestScope>>,
}

impl<S: SegmentSink + Send + 'static> DecisionService<S> {
    /// Boots the service with a uniform (explore-only) generation-0
    /// incumbent, logging segments into `sink`.
    pub fn new(cfg: ServeConfig, sink: S) -> Self {
        Self::build(cfg, sink, None)
    }

    /// Like [`DecisionService::new`], with a deterministic fault schedule.
    /// The same `(config, plan, call sequence)` triple reproduces the same
    /// faults, the same decisions, and byte-identical log segments.
    pub fn with_chaos(cfg: ServeConfig, sink: S, plan: ChaosPlan) -> Self {
        Self::build(cfg, sink, Some(Arc::new(plan)))
    }

    pub(crate) fn build(cfg: ServeConfig, sink: S, chaos: Option<Arc<ChaosPlan>>) -> Self {
        let metrics = if cfg.obs.enabled {
            Arc::new(ServeMetrics::with_obs(Arc::new(ServeObs::new(&cfg.obs))))
        } else {
            Arc::new(ServeMetrics::new())
        };
        let registry = Arc::new(PolicyRegistry::with_metrics(
            ServePolicy::Uniform,
            "bootstrap-uniform",
            Arc::clone(&metrics),
        ));
        // One SPSC ring per engine shard: each shard pushes to its own ring
        // and the writer merges in ticket order, so log hand-off never
        // contends across shards.
        let mut logger_cfg = cfg.logger;
        logger_cfg.shard_rings = cfg.engine.shards.max(1);
        let (logger, writer) = spawn_supervised_writer(
            logger_cfg,
            cfg.supervisor,
            Arc::clone(&metrics),
            chaos.clone(),
            sink,
        );
        let engine = DecisionEngine::new(
            &cfg.engine,
            Arc::clone(&registry),
            Arc::clone(&metrics),
            logger.clone(),
        );
        let joiner = Mutex::new(RewardJoiner::new(cfg.join_ttl_ns, Arc::clone(&metrics)));
        let scope = (cfg.obs.enabled && cfg.scope.enabled)
            .then(|| Mutex::new(HarvestScope::new(&cfg.scope)));
        DecisionService {
            registry,
            engine,
            joiner,
            logger,
            writer: Some(writer),
            metrics,
            trainer: Trainer::new(cfg.trainer),
            rounds: Mutex::new(0),
            train_rounds: AtomicU64::new(0),
            breaker: CircuitBreaker::new(cfg.breaker),
            safe_policy: cfg.safe_policy,
            chaos,
            decision_seq: AtomicU64::new(0),
            reward_seq: AtomicU64::new(0),
            scope,
        }
    }

    /// Serves one decision on `shard` at logical time `now_ns`. The
    /// decision record is queued for the log and tracked for reward joining
    /// before this returns.
    ///
    /// When the breaker is open the decision is served by the safe policy
    /// and stamped [`Decision::degraded`]; it still logs its exact
    /// propensity. An out-of-range shard is an error, never a panic.
    pub fn decide(
        &self,
        shard: usize,
        now_ns: u64,
        ctx: &SimpleContext,
    ) -> Result<Decision, ServeError> {
        let index = self.decision_seq.fetch_add(1, Ordering::SeqCst);
        if let Some(chaos) = &self.chaos {
            if chaos.poison_at(index) {
                self.engine.poison_shard(shard);
            }
        }
        let writer_alive = self.writer.as_ref().map(|w| w.alive()).unwrap_or(false);
        let degraded = self.breaker.on_decision(writer_alive, &self.metrics);
        let fallback = if degraded {
            Some(&self.safe_policy)
        } else {
            None
        };
        let decision = self.engine.decide_with(shard, now_ns, ctx, fallback)?;
        lock_recovering(&self.joiner, Some(&self.metrics)).track(decision.request_id, now_ns);
        Ok(decision)
    }

    /// Serves a batch of decisions on `shard`, all stamped at logical time
    /// `now_ns`, into the caller-owned `out` buffer (cleared first; reuse
    /// one buffer across calls to keep the hot path allocation-amortized).
    ///
    /// Semantically this is [`decide`](DecisionService::decide) called once
    /// per context, and a same-seed batch run reproduces the single-call
    /// run's decision stream byte for byte: the circuit breaker is
    /// consulted *per decision* (it can open or re-arm mid-batch), chaos
    /// poison faults scheduled anywhere in the batch's decision-index range
    /// fire before the batch is served, and segment recovery flattens the
    /// batch's single log frame back into the individual decision records.
    /// What is amortized: one shard-lock acquisition, one id-range
    /// reservation, one log-queue hand-off, and bulk joiner tracking per
    /// batch instead of per decision.
    pub fn decide_batch(
        &self,
        shard: usize,
        now_ns: u64,
        contexts: &[SimpleContext],
        out: &mut DecisionBatch,
    ) -> Result<(), ServeError> {
        out.reset();
        let n = contexts.len() as u64;
        let first_index = self.decision_seq.fetch_add(n, Ordering::SeqCst);
        if let Some(chaos) = &self.chaos {
            // Any poison scheduled inside this batch's index range fires up
            // front; the engine recovers the shard once at its single lock
            // acquisition. (Several poisons in one batch therefore collapse
            // into one recovery — schedule at most one per batch when
            // counting recoveries.)
            if (first_index..first_index + n).any(|i| chaos.poison_at(i)) {
                self.engine.poison_shard(shard);
            }
        }
        for _ in contexts {
            let writer_alive = self.writer.as_ref().map(|w| w.alive()).unwrap_or(false);
            out.degraded
                .push(self.breaker.on_decision(writer_alive, &self.metrics));
        }
        self.engine
            .decide_batch_with(shard, now_ns, contexts, Some(&self.safe_policy), out)?;
        lock_recovering(&self.joiner, Some(&self.metrics))
            .track_many(out.decisions.iter().map(|d| d.request_id), now_ns);
        Ok(())
    }

    /// Reports the delayed reward for `request_id`. Joins within the TTL
    /// produce an outcome record in the log; duplicates and late arrivals
    /// are refused and counted. Under chaos, a scheduled drop loses the
    /// reward in flight ([`JoinOutcome::Lost`]) and a scheduled delay
    /// shifts its observed delivery time forward.
    pub fn reward(&self, request_id: u64, now_ns: u64, reward: f64) -> JoinOutcome {
        let index = self.reward_seq.fetch_add(1, Ordering::SeqCst);
        let mut observed_ns = now_ns;
        if let Some(chaos) = &self.chaos {
            match chaos.reward_fault_at(index) {
                Some(RewardFault::Drop) => {
                    self.metrics.record_reward_lost();
                    return JoinOutcome::Lost;
                }
                Some(RewardFault::Delay { by_ns }) => {
                    observed_ns = observed_ns.saturating_add(by_ns);
                }
                None => {}
            }
        }
        let (outcome, record) = lock_recovering(&self.joiner, Some(&self.metrics)).join(
            request_id,
            observed_ns,
            reward,
        );
        if let Some(rec) = record {
            self.logger.log(LogRecord::Outcome(rec));
        }
        outcome
    }

    /// One harvest → train → gate round over `records` (typically the
    /// service's own segments read back via recovery). On a passing gate
    /// the candidate is promoted — an atomic hot-swap the shards pick up on
    /// their next decision. Safe to call from a background thread while
    /// serving continues.
    ///
    /// A trainer panic (chaos-injected or real) is caught: the incumbent
    /// stays, the breaker trips, and [`ServeError::TrainerCrashed`] is
    /// returned. A gate whose confidence radius has collapsed also trips
    /// the breaker, even when the round itself succeeds.
    pub fn train_and_maybe_promote(
        &self,
        records: &[LogRecord],
    ) -> Result<PromotionReport, ServeError> {
        let round_index = self.train_rounds.fetch_add(1, Ordering::SeqCst);
        let crash = self
            .chaos
            .as_ref()
            .is_some_and(|c| c.trainer_crash_at(round_index));
        let incumbent = self.registry.current();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if crash {
                // Model a crash mid-fit: the harvest pass runs (and spends
                // real work), then the process of fitting dies.
                let _ = self.trainer.harvest(records);
                panic!("chaos: trainer crashed mid-fit (round {round_index})");
            }
            self.trainer.run_round(records, &incumbent.policy)
        }));
        let round = match outcome {
            Err(_) => {
                self.metrics.record_trainer_crash();
                self.breaker.note_trainer_crash(&self.metrics);
                return Err(ServeError::TrainerCrashed { round: round_index });
            }
            Ok(result) => result?,
        };
        self.breaker
            .note_gate(round.gate.n, round.gate.candidate_radius, &self.metrics);
        if let Some(obs) = self.metrics.obs() {
            obs.set_quality(round.gate.quality);
            obs.set_leaderboard(round.leaderboard.clone());
            // The round's harvest span — last minus first record stamp,
            // logical ns — is the gate→promote stage of the timeline.
            if let Some(first) = records.iter().map(|r| r.timestamp_ns()).min() {
                let last = records
                    .iter()
                    .map(|r| r.timestamp_ns())
                    .max()
                    .unwrap_or(first);
                obs.record_gate_span(last.saturating_sub(first));
            }
            // Stamp `trained` on every decision trace whose record actually
            // contributed a (decision, outcome) pair to this round — the
            // same join rule the harvest pipeline applies.
            let outcome_ids: std::collections::HashSet<u64> = records
                .iter()
                .filter(|r| !r.is_decision())
                .map(|r| r.request_id())
                .collect();
            for r in records {
                if r.is_decision() && outcome_ids.contains(&r.request_id()) {
                    obs.tracer().trained(r.request_id(), round_index);
                }
            }
        }
        if round.gate.promoted {
            let round_no = {
                let mut r = lock_recovering(&self.rounds, Some(&self.metrics));
                *r += 1;
                *r
            };
            self.registry
                .promote(round.winner_policy, format!("cb-round-{round_no}"));
            self.metrics.record_swap();
        }
        let serving = self.registry.current();
        Ok(PromotionReport {
            gate: round.gate,
            serving_generation: serving.generation,
            serving_name: serving.name.clone(),
        })
    }

    /// The policy registry (for inspection and manual promotion).
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// Number of decision shards.
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Whether the supervised writer is still accepting records (alive or
    /// restarting — `false` only once the restart budget is exhausted or
    /// the service is shutting down).
    pub fn writer_alive(&self) -> bool {
        self.writer.as_ref().map(|w| w.alive()).unwrap_or(false)
    }

    /// Whether the circuit breaker is open (serving the safe policy).
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live counter handle, for admission layers that sit in front of
    /// the service (e.g. the wire front-end) and must ledger the work they
    /// shed into the same conservation accounting.
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The observability bundle, when the service was built with
    /// [`ObsConfig::enabled`] (the default).
    pub fn obs(&self) -> Option<&Arc<ServeObs>> {
        self.metrics.obs()
    }

    /// Why the breaker last tripped, if it ever did.
    pub fn breaker_last_trip(&self) -> Option<TripReason> {
        self.breaker.last_trip()
    }

    /// The tracer's lifecycle-conservation audit, when tracing is enabled.
    pub fn trace_audit(&self) -> Option<harvest_obs::TraceAudit> {
        self.metrics.obs().map(|o| o.tracer().audit())
    }

    /// Every decision trace as replayable JSON lines (sorted by id), when
    /// tracing is enabled.
    pub fn export_trace_jsonl(&self) -> Option<String> {
        self.metrics.obs().map(|o| o.tracer().export_jsonl())
    }

    /// The latest training round's ranked portfolio leaderboard as
    /// deterministic JSON — every candidate's estimate, confidence
    /// interval, effective sample size, and clipped mass. `None` until a
    /// round has run (or when observability is disabled).
    pub fn export_leaderboard_json(&self) -> Option<String> {
        self.metrics.obs().and_then(|o| o.leaderboard_json())
    }

    /// The full JSON-serializable observability snapshot.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        obs_snapshot(
            &self.metrics,
            self.breaker.is_open(),
            self.breaker.last_trip(),
        )
    }

    /// One ops-plane tick at logical time `now_ns`: the scope drains the
    /// stage journal, advances the window series, and evaluates the
    /// watchdogs, returning any alert events raised. A no-op (empty)
    /// when the service was built without a scope.
    ///
    /// For byte-identical stage histograms across same-seed runs, tick
    /// after the log pipeline has drained (`log_backlog == 0`).
    pub fn scope_tick(&self, now_ns: u64) -> Vec<harvest_obs::AlertEvent> {
        match &self.scope {
            Some(scope) => lock_recovering(scope, Some(&self.metrics)).tick(
                now_ns,
                &self.metrics,
                self.breaker.is_open(),
            ),
            None => Vec::new(),
        }
    }

    /// The window-series ring as deterministic JSON, when the scope is
    /// enabled.
    pub fn export_series_json(&self) -> Option<String> {
        self.scope
            .as_ref()
            .map(|s| lock_recovering(s, Some(&self.metrics)).series_export_json())
    }

    /// Current watchdog alert states as deterministic JSON, when the
    /// scope is enabled.
    pub fn export_alerts_json(&self) -> Option<String> {
        self.scope
            .as_ref()
            .map(|s| lock_recovering(s, Some(&self.metrics)).alerts_json())
    }

    /// Every alert fire/clear event so far as JSON lines, when the scope
    /// is enabled.
    pub fn export_alert_events_jsonl(&self) -> Option<String> {
        self.scope
            .as_ref()
            .map(|s| lock_recovering(s, Some(&self.metrics)).events_jsonl())
    }

    /// The Prometheus text exposition page. A scope-carrying service
    /// appends its alert and stage-latency families, so this page — and
    /// the wire OPS scrape, which renders through this same method — is
    /// the full ops-plane view.
    pub fn export_prometheus(&self) -> String {
        let mut p = prometheus_page(
            &self.metrics,
            self.breaker.is_open(),
            self.breaker.last_trip(),
        );
        if let Some(scope) = &self.scope {
            lock_recovering(scope, Some(&self.metrics)).append_prometheus(&mut p);
        }
        p.finish()
    }

    /// Shuts down: disconnects the log queue, waits for the writer to drain
    /// and seal it, and returns the sink holding the complete segments.
    pub fn shutdown(mut self) -> io::Result<S> {
        // `writer` is only ever taken here, and `shutdown` consumes the
        // service — but return an error rather than panic if that ever
        // changes.
        let Some(writer) = self.writer.take() else {
            return Err(io::Error::other("service writer already shut down"));
        };
        // Drop both producer handles so the rings signal hang-up.
        drop(self.engine);
        drop(self.logger);
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_log::segment::MemorySegments;

    fn config(seed: u64) -> ServeConfig {
        ServeConfig {
            engine: EngineConfig {
                shards: 2,
                epsilon: 0.2,
                master_seed: seed,
                component: "svc-test".to_string(),
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn decide_reward_shutdown_round_trip() {
        let svc = DecisionService::new(config(9), MemorySegments::new());
        let ctx = SimpleContext::new(vec![0.3], 3);
        let mut ids = Vec::new();
        for i in 0..50u64 {
            let d = svc.decide((i % 2) as usize, i * 10, &ctx).unwrap();
            assert!(!d.degraded);
            ids.push(d.request_id);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(svc.reward(*id, i as u64 * 10 + 5, 1.0), JoinOutcome::Joined);
        }
        assert_eq!(svc.reward(ids[0], 1_000, 1.0), JoinOutcome::Duplicate);
        let snap = svc.metrics();
        assert_eq!(snap.decisions, 50);
        assert_eq!(snap.join_hits, 50);
        assert_eq!(snap.join_duplicates, 1);
        let store = svc.shutdown().unwrap();
        let (records, stats) = store.recover();
        assert_eq!(stats.quarantined_records, 0);
        // 50 decisions + 50 outcomes, in submission order.
        assert_eq!(records.len(), 100);
        assert_eq!(stats.recovered, 100);
    }

    #[test]
    fn training_round_promotes_and_decisions_follow() {
        let store = MemorySegments::new();
        let svc = DecisionService::new(
            ServeConfig {
                trainer: TrainerConfig {
                    lambda: 1e-3,
                    epsilon: 0.2,
                    ..TrainerConfig::default()
                },
                ..config(11)
            },
            store.clone(),
        );
        let mut rng = harvest_sim_net::rng::fork_rng(11, "svc-train-test");
        use rand::Rng;
        // Crossing rewards: action 0 pays x, action 1 pays 1 − x.
        for i in 0..3000u64 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let d = svc.decide((i % 2) as usize, i * 100, &ctx).unwrap();
            let r = if d.action == 0 { x } else { 1.0 - x };
            svc.reward(d.request_id, i * 100 + 50, r);
        }
        // Read the service's own log back and train on it.
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
        let (records, _) = store.recover();
        let report = svc.train_and_maybe_promote(&records).unwrap();
        assert!(report.gate.promoted, "{report:?}");
        assert_eq!(report.serving_generation, 1);
        assert_eq!(svc.registry().swap_count(), 1);
        assert_eq!(svc.metrics().swaps, 1);
        // Post-swap, decisions exploit the learned crossing policy.
        let d = svc
            .decide(0, 1_000_000, &SimpleContext::new(vec![0.95], 2))
            .unwrap();
        assert_eq!(d.generation, 1);
        svc.shutdown().unwrap();
    }

    #[test]
    fn dead_writer_opens_the_breaker_and_decisions_degrade() {
        let cfg = ServeConfig {
            supervisor: SupervisorConfig {
                max_restarts: 0,
                ..SupervisorConfig::default()
            },
            ..config(13)
        };
        // Kill the writer on its very first record; zero restart budget
        // makes the death permanent.
        let svc = DecisionService::with_chaos(
            cfg,
            MemorySegments::new(),
            ChaosPlan::none().kill_writer_at(0),
        );
        let ctx = SimpleContext::new(vec![0.5], 4);
        // The kill fires as the writer thread starts (pre-pop, index 0);
        // wait for the supervisor to observe the crash and give up.
        while svc.writer_alive() {
            std::thread::yield_now();
        }
        let d = svc.decide(0, 10, &ctx).unwrap();
        assert!(d.degraded, "dead writer must trip the breaker");
        assert!(svc.breaker_open());
        // Safe arm is uniform: exact propensity 1/K.
        assert!((d.propensity - 0.25).abs() < 1e-12);
        let snap = svc.metrics();
        assert!(snap.breaker_trips >= 1);
        assert!(snap.degraded_decisions >= 1);
        // No record vanished from the ledger: everything offered is either
        // written or counted dropped once the pipeline drains.
        svc.shutdown().unwrap();
    }

    #[test]
    fn trainer_crash_is_caught_trips_the_breaker_and_keeps_the_incumbent() {
        let svc = DecisionService::with_chaos(
            config(17),
            MemorySegments::new(),
            ChaosPlan::none().crash_trainer_at(0),
        );
        let err = svc.train_and_maybe_promote(&[]).unwrap_err();
        match err {
            ServeError::TrainerCrashed { round: 0 } => {}
            other => panic!("expected TrainerCrashed, got {other:?}"),
        }
        assert!(svc.breaker_open());
        assert_eq!(svc.registry().generation(), 0, "incumbent untouched");
        let snap = svc.metrics();
        assert_eq!(snap.trainer_crashes, 1);
        assert_eq!(snap.breaker_trips, 1);
        svc.shutdown().unwrap();
    }

    #[test]
    fn dropped_rewards_are_lost_not_joined() {
        let svc = DecisionService::with_chaos(
            config(19),
            MemorySegments::new(),
            ChaosPlan::none().drop_reward_at(0),
        );
        let ctx = SimpleContext::new(vec![0.5], 2);
        let d = svc.decide(0, 0, &ctx).unwrap();
        assert_eq!(svc.reward(d.request_id, 5, 1.0), JoinOutcome::Lost);
        // The decision is still pending: a retry (next reward index, no
        // fault scheduled) joins normally.
        assert_eq!(svc.reward(d.request_id, 6, 1.0), JoinOutcome::Joined);
        let snap = svc.metrics();
        assert_eq!(snap.rewards_lost, 1);
        assert_eq!(snap.join_hits, 1);
        svc.shutdown().unwrap();
    }
}

//! The assembled decision service.
//!
//! [`DecisionService`] wires the five subsystems together — registry,
//! sharded engine, bounded log writer, reward joiner, trainer/gate — behind
//! a three-call surface:
//!
//! * [`decide`](DecisionService::decide) — serve one request (hot path);
//! * [`reward`](DecisionService::reward) — report a delayed reward;
//! * [`train_and_maybe_promote`](DecisionService::train_and_maybe_promote)
//!   — run one harvest → train → gate round and hot-swap on success.
//!
//! All three take `&self`: training can run on a background thread while
//! shards keep serving, and a promotion reaches the shards through one
//! atomic flip. The only wall-clock anywhere is the caller's own `now_ns`
//! stamp, so a same-seed replay of the same call sequence reproduces the
//! decision log byte for byte.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use harvest_core::SimpleContext;
use harvest_log::record::LogRecord;
use serde::Serialize;

use crate::engine::{Decision, DecisionEngine, EngineConfig};
use crate::joiner::{JoinOutcome, RewardJoiner};
use crate::logger::{spawn_writer, DecisionLogger, LogWriterHandle, LoggerConfig};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{PolicyRegistry, ServePolicy};
use crate::trainer::{GateReport, Trainer, TrainerConfig};

/// Everything configurable about the service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Decision engine: shards, ε floor, master seed.
    pub engine: EngineConfig,
    /// Log queue: capacity and backpressure.
    pub logger: LoggerConfig,
    /// Reward-join TTL in logical nanoseconds.
    pub join_ttl_ns: u64,
    /// Trainer and promotion gate.
    pub trainer: TrainerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let engine = EngineConfig::default();
        ServiceConfig {
            trainer: TrainerConfig {
                epsilon: engine.epsilon,
                ..TrainerConfig::default()
            },
            engine,
            logger: LoggerConfig::default(),
            join_ttl_ns: 10_000_000_000, // 10 logical seconds
        }
    }
}

/// One promotion round's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PromotionReport {
    /// The gate's verdict and its evidence.
    pub gate: GateReport,
    /// The generation now serving (new on promotion, unchanged otherwise).
    pub serving_generation: u64,
    /// Name of the version now serving.
    pub serving_name: String,
}

/// The online decision service. `W` is the log sink (a file in production,
/// a [`SharedBuffer`](crate::logger::SharedBuffer) in simulations).
pub struct DecisionService<W: Write + Send + 'static> {
    registry: Arc<PolicyRegistry>,
    engine: DecisionEngine,
    joiner: Mutex<RewardJoiner>,
    logger: DecisionLogger,
    writer: Option<LogWriterHandle<W>>,
    metrics: Arc<ServeMetrics>,
    trainer: Trainer,
    rounds: Mutex<u64>,
}

impl<W: Write + Send + 'static> DecisionService<W> {
    /// Boots the service with a uniform (explore-only) generation-0
    /// incumbent, logging to `sink`.
    pub fn new(cfg: ServiceConfig, sink: W) -> Self {
        let metrics = Arc::new(ServeMetrics::new());
        let registry = Arc::new(PolicyRegistry::new(
            ServePolicy::Uniform,
            "bootstrap-uniform",
        ));
        let (logger, writer) = spawn_writer(cfg.logger, Arc::clone(&metrics), sink);
        let engine = DecisionEngine::new(
            &cfg.engine,
            Arc::clone(&registry),
            Arc::clone(&metrics),
            logger.clone(),
        );
        let joiner = Mutex::new(RewardJoiner::new(cfg.join_ttl_ns, Arc::clone(&metrics)));
        DecisionService {
            registry,
            engine,
            joiner,
            logger,
            writer: Some(writer),
            metrics,
            trainer: Trainer::new(cfg.trainer),
            rounds: Mutex::new(0),
        }
    }

    /// Serves one decision on `shard` at logical time `now_ns`. The
    /// decision record is queued for the log and tracked for reward joining
    /// before this returns.
    pub fn decide(&self, shard: usize, now_ns: u64, ctx: &SimpleContext) -> Decision {
        let decision = self.engine.decide(shard, now_ns, ctx);
        self.joiner
            .lock()
            .expect("joiner poisoned")
            .track(decision.request_id, now_ns);
        decision
    }

    /// Reports the delayed reward for `request_id`. Joins within the TTL
    /// produce an outcome record in the log; duplicates and late arrivals
    /// are refused and counted.
    pub fn reward(&self, request_id: u64, now_ns: u64, reward: f64) -> JoinOutcome {
        let (outcome, record) = self
            .joiner
            .lock()
            .expect("joiner poisoned")
            .join(request_id, now_ns, reward);
        if let Some(rec) = record {
            self.logger.log(LogRecord::Outcome(rec));
        }
        outcome
    }

    /// One harvest → train → gate round over `records` (typically the
    /// service's own log read back; see [`SharedBuffer`]). On a passing
    /// gate the candidate is promoted — an atomic hot-swap the shards pick
    /// up on their next decision. Safe to call from a background thread
    /// while serving continues.
    ///
    /// [`SharedBuffer`]: crate::logger::SharedBuffer
    pub fn train_and_maybe_promote(
        &self,
        records: &[LogRecord],
    ) -> Result<PromotionReport, harvest_core::HarvestError> {
        let incumbent = self.registry.current();
        let round = self.trainer.run_round(records, &incumbent.policy)?;
        if round.gate.promoted {
            let round_no = {
                let mut r = self.rounds.lock().expect("rounds poisoned");
                *r += 1;
                *r
            };
            self.registry.promote(
                ServePolicy::Greedy(round.scorer),
                format!("cb-round-{round_no}"),
            );
            self.metrics.record_swap();
        }
        let serving = self.registry.current();
        Ok(PromotionReport {
            gate: round.gate,
            serving_generation: serving.generation,
            serving_name: serving.name.clone(),
        })
    }

    /// The policy registry (for inspection and manual promotion).
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// Number of decision shards.
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Shuts down: disconnects the log queue, waits for the writer to drain
    /// it, and returns the sink with the complete log.
    pub fn shutdown(mut self) -> io::Result<W> {
        let writer = self.writer.take().expect("shutdown called once");
        // Drop both producer handles so the channel disconnects.
        drop(self.engine);
        drop(self.logger);
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::SharedBuffer;
    use harvest_log::record::read_json_lines;

    fn config(seed: u64) -> ServiceConfig {
        ServiceConfig {
            engine: EngineConfig {
                shards: 2,
                epsilon: 0.2,
                master_seed: seed,
                component: "svc-test".to_string(),
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn decide_reward_shutdown_round_trip() {
        let svc = DecisionService::new(config(9), Vec::new());
        let ctx = SimpleContext::new(vec![0.3], 3);
        let mut ids = Vec::new();
        for i in 0..50u64 {
            let d = svc.decide((i % 2) as usize, i * 10, &ctx);
            ids.push(d.request_id);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(svc.reward(*id, i as u64 * 10 + 5, 1.0), JoinOutcome::Joined);
        }
        assert_eq!(svc.reward(ids[0], 1_000, 1.0), JoinOutcome::Duplicate);
        let snap = svc.metrics();
        assert_eq!(snap.decisions, 50);
        assert_eq!(snap.join_hits, 50);
        assert_eq!(snap.join_duplicates, 1);
        let buf = svc.shutdown().unwrap();
        let (records, stats) = read_json_lines(buf.as_slice()).unwrap();
        assert_eq!(stats.malformed, 0);
        // 50 decisions + 50 outcomes, in submission order.
        assert_eq!(records.len(), 100);
    }

    #[test]
    fn training_round_promotes_and_decisions_follow() {
        let sink = SharedBuffer::new();
        let svc = DecisionService::new(
            ServiceConfig {
                trainer: TrainerConfig {
                    lambda: 1e-3,
                    epsilon: 0.2,
                    ..TrainerConfig::default()
                },
                ..config(11)
            },
            sink.clone(),
        );
        let mut rng = harvest_sim_net::rng::fork_rng(11, "svc-train-test");
        use rand::Rng;
        // Crossing rewards: action 0 pays x, action 1 pays 1 − x.
        for i in 0..3000u64 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let d = svc.decide((i % 2) as usize, i * 100, &ctx);
            let r = if d.action == 0 { x } else { 1.0 - x };
            svc.reward(d.request_id, i * 100 + 50, r);
        }
        // Read the service's own log back and train on it.
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
        let contents = sink.contents();
        let (records, _) = read_json_lines(contents.as_slice()).unwrap();
        let report = svc.train_and_maybe_promote(&records).unwrap();
        assert!(report.gate.promoted, "{report:?}");
        assert_eq!(report.serving_generation, 1);
        assert_eq!(svc.registry().swap_count(), 1);
        assert_eq!(svc.metrics().swaps, 1);
        // Post-swap, decisions exploit the learned crossing policy.
        let d = svc.decide(0, 1_000_000, &SimpleContext::new(vec![0.95], 2));
        assert_eq!(d.generation, 1);
        svc.shutdown().unwrap();
    }
}

//! The versioned policy registry: which policy is serving right now.
//!
//! The registry owns two slots. Exactly one is *active* at any moment; a
//! promotion writes the candidate into the inactive slot and then flips one
//! atomic index. Readers keep a per-shard [`CachedPolicy`]: on the hot path
//! a read is a single atomic generation check, and only in the instant after
//! a swap does a reader briefly lock the (new) active slot to refresh its
//! `Arc`. Writers never touch the slot active readers are using, so serving
//! never stalls behind training.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use harvest_core::scorer::{LinearScorer, Scorer};
use harvest_core::{Context, SimpleContext};
use serde::{Deserialize, Serialize};

use crate::error::lock_recovering;
use crate::metrics::ServeMetrics;

/// A servable policy: either the explore-only bootstrap or a learned scorer
/// exploited greedily. The engine wraps either in an ε exploration floor.
/// Serializable because the incumbent is part of the durable control-plane
/// checkpoint (see [`crate::recovery`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServePolicy {
    /// Uniform over the action set — the bootstrap incumbent before any
    /// model has been trained. Every action has propensity `1/K`.
    Uniform,
    /// Greedy over a learned reward model.
    Greedy(LinearScorer),
}

impl ServePolicy {
    /// The greedy (exploitation) action, or `None` for the uniform
    /// bootstrap, which has no preferred action.
    ///
    /// Ties break toward the lowest action index — the same rule as
    /// [`GreedyPolicy`](harvest_core::policy::GreedyPolicy), inlined here
    /// so the per-decision hot path scores through a borrow instead of
    /// cloning the scorer's weight matrix.
    pub fn greedy_action(&self, ctx: &SimpleContext) -> Option<usize> {
        match self {
            ServePolicy::Uniform => None,
            ServePolicy::Greedy(scorer) => {
                let mut best = 0;
                let mut best_score = f64::NEG_INFINITY;
                for a in 0..ctx.num_actions() {
                    let s = scorer.score(ctx, a);
                    if s > best_score {
                        best_score = s;
                        best = a;
                    }
                }
                Some(best)
            }
        }
    }

    /// The distribution this policy serves under an ε exploration floor:
    /// uniform stays uniform; greedy gives its choice `1 − ε + ε/K` and
    /// every other action `ε/K`.
    pub fn served_probabilities(&self, ctx: &SimpleContext, epsilon: f64) -> Vec<f64> {
        let k = ctx.num_actions();
        match self.greedy_action(ctx) {
            None => vec![1.0 / k as f64; k],
            Some(a) => {
                let floor = epsilon / k as f64;
                let mut probs = vec![floor; k];
                probs[a] += 1.0 - epsilon;
                probs
            }
        }
    }
}

/// One immutable registered policy version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyVersion {
    /// Monotone version number; the bootstrap incumbent is generation 0.
    pub generation: u64,
    /// Human-readable provenance (e.g. `"bootstrap-uniform"`, `"cb-round-3"`).
    pub name: String,
    /// The decision rule itself.
    pub policy: ServePolicy,
}

/// The hot-swappable incumbent store.
#[derive(Debug)]
pub struct PolicyRegistry {
    slots: [Mutex<Arc<PolicyVersion>>; 2],
    active: AtomicUsize,
    generation: AtomicU64,
    swaps: AtomicU64,
    /// Counts poison recoveries when present. A slot only ever holds a
    /// complete `Arc`, so a panic while a slot lock is held cannot leave a
    /// torn version — recovery is always sound.
    metrics: Option<Arc<ServeMetrics>>,
}

impl PolicyRegistry {
    /// Creates a registry serving `initial` as generation 0.
    pub fn new(initial: ServePolicy, name: impl Into<String>) -> Self {
        Self::build(initial, name, None)
    }

    /// Like [`PolicyRegistry::new`], reporting lock recoveries to `metrics`.
    pub fn with_metrics(
        initial: ServePolicy,
        name: impl Into<String>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        Self::build(initial, name, Some(metrics))
    }

    fn build(
        initial: ServePolicy,
        name: impl Into<String>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> Self {
        let v0 = Arc::new(PolicyVersion {
            generation: 0,
            name: name.into(),
            policy: initial,
        });
        PolicyRegistry {
            slots: [Mutex::new(Arc::clone(&v0)), Mutex::new(v0)],
            active: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            metrics,
        }
    }

    /// The current incumbent. Locks the active slot briefly; shards use
    /// [`CachedPolicy`] to avoid even that in steady state. A poisoned slot
    /// is recovered and counted, never propagated into the decision path.
    pub fn current(&self) -> Arc<PolicyVersion> {
        let idx = self.active.load(Ordering::SeqCst);
        Arc::clone(&lock_recovering(&self.slots[idx], self.metrics.as_deref()))
    }

    /// The incumbent's generation number.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// How many promotions have happened.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Atomically promotes `policy` to incumbent; returns its generation.
    ///
    /// The new version is written into the inactive slot, then the active
    /// index flips, then the generation counter advances — all `SeqCst`, so
    /// a reader that observes the new generation also observes the new
    /// index. In-flight readers finish on the old version; nobody blocks.
    pub fn promote(&self, policy: ServePolicy, name: impl Into<String>) -> u64 {
        let gen = self.generation.load(Ordering::SeqCst) + 1;
        let next = Arc::new(PolicyVersion {
            generation: gen,
            name: name.into(),
            policy,
        });
        let inactive = 1 - self.active.load(Ordering::SeqCst);
        *lock_recovering(&self.slots[inactive], self.metrics.as_deref()) = next;
        self.active.store(inactive, Ordering::SeqCst);
        self.generation.store(gen, Ordering::SeqCst);
        self.swaps.fetch_add(1, Ordering::SeqCst);
        gen
    }

    /// Restores a checkpointed incumbent verbatim: generation, name, policy,
    /// and the lifetime swap count. Unlike [`promote`](Self::promote) this
    /// neither advances the generation nor counts a swap — a warm restart
    /// resumes the old incarnation's history, it does not rewrite it.
    pub fn restore(&self, version: PolicyVersion, swaps: u64) {
        let gen = version.generation;
        let next = Arc::new(version);
        let inactive = 1 - self.active.load(Ordering::SeqCst);
        *lock_recovering(&self.slots[inactive], self.metrics.as_deref()) = next;
        self.active.store(inactive, Ordering::SeqCst);
        self.generation.store(gen, Ordering::SeqCst);
        self.swaps.store(swaps, Ordering::SeqCst);
    }
}

/// A shard-local cache of the incumbent `Arc`. The common case — no swap
/// since the last decision — is one atomic load and no locking.
#[derive(Debug)]
pub struct CachedPolicy {
    version: Arc<PolicyVersion>,
}

impl CachedPolicy {
    /// Seeds the cache from the registry's current incumbent.
    pub fn new(registry: &PolicyRegistry) -> Self {
        CachedPolicy {
            version: registry.current(),
        }
    }

    /// The incumbent as of now: refreshes from `registry` only if a swap
    /// happened since the cached version.
    pub fn get(&mut self, registry: &PolicyRegistry) -> &Arc<PolicyVersion> {
        if registry.generation() != self.version.generation {
            self.version = registry.current();
        }
        &self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer_pref(best: usize, k: usize) -> LinearScorer {
        // Per-action constant scores: action `best` wins.
        let weights = (0..k)
            .map(|a| vec![if a == best { 1.0 } else { 0.0 }])
            .collect();
        LinearScorer::PerAction { weights }
    }

    #[test]
    fn promote_flips_generation_and_policy() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "bootstrap");
        assert_eq!(reg.generation(), 0);
        assert_eq!(reg.current().name, "bootstrap");
        let gen = reg.promote(ServePolicy::Greedy(scorer_pref(2, 4)), "round-1");
        assert_eq!(gen, 1);
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.swap_count(), 1);
        let cur = reg.current();
        assert_eq!(cur.name, "round-1");
        let ctx = SimpleContext::contextless(4);
        assert_eq!(cur.policy.greedy_action(&ctx), Some(2));
    }

    #[test]
    fn cache_refreshes_only_on_swap() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "v0");
        let mut cache = CachedPolicy::new(&reg);
        assert_eq!(cache.get(&reg).generation, 0);
        let first = Arc::as_ptr(cache.get(&reg));
        // No swap: same Arc back.
        assert_eq!(Arc::as_ptr(cache.get(&reg)), first);
        reg.promote(ServePolicy::Uniform, "v1");
        assert_eq!(cache.get(&reg).generation, 1);
        assert_eq!(cache.get(&reg).name, "v1");
    }

    #[test]
    fn served_probabilities_are_epsilon_floored() {
        let ctx = SimpleContext::contextless(4);
        let uni = ServePolicy::Uniform.served_probabilities(&ctx, 0.1);
        assert_eq!(uni, vec![0.25; 4]);
        let greedy = ServePolicy::Greedy(scorer_pref(1, 4));
        let probs = greedy.served_probabilities(&ctx, 0.2);
        assert!((probs[1] - (0.8 + 0.05)).abs() < 1e-12);
        for a in [0, 2, 3] {
            assert!((probs[a] - 0.05).abs() < 1e-12);
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_slot_is_recovered_and_counted() {
        let metrics = Arc::new(ServeMetrics::new());
        let reg = Arc::new(PolicyRegistry::with_metrics(
            ServePolicy::Uniform,
            "v0",
            Arc::clone(&metrics),
        ));
        let reg2 = Arc::clone(&reg);
        // Poison the active slot: a thread panics while holding its lock.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = reg2.slots[reg2.active.load(Ordering::SeqCst)]
                .lock()
                .unwrap();
            panic!("poison the active slot");
        }));
        // Reads and promotions keep working; the recovery is counted.
        assert_eq!(reg.current().generation, 0);
        assert_eq!(reg.promote(ServePolicy::Uniform, "v1"), 1);
        assert_eq!(reg.current().generation, 1);
        assert!(metrics.snapshot().lock_recoveries >= 1);
    }

    #[test]
    fn in_flight_readers_keep_the_old_version_across_a_swap() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "v0");
        let held = reg.current();
        reg.promote(ServePolicy::Uniform, "v1");
        reg.promote(ServePolicy::Uniform, "v2");
        // The Arc held across two swaps is still the version it was.
        assert_eq!(held.generation, 0);
        assert_eq!(reg.current().generation, 2);
    }
}

//! The versioned policy registry: which policy is serving right now.
//!
//! The registry owns an epoch/RCU double-buffer ([`crate::rcu::RcuCell`]).
//! Exactly one slot is *active* at any moment; a promotion writes the
//! candidate into the inactive slot — after waiting out any reader still
//! pinned to it — and then flips one atomic index. Readers keep a per-shard
//! [`CachedPolicy`]: on the hot path a read is a single atomic generation
//! check, and only in the instant after a swap does a reader do the full
//! lock-free pinned read to refresh its `Arc`. No mutex sits anywhere on
//! the decision path, so serving never stalls behind training — and a
//! hot-swap never stalls behind serving for more than one `Arc` clone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use harvest_core::scorer::{LinearScorer, Scorer};
use harvest_core::{Context, SimpleContext};
use serde::{Deserialize, Serialize};

use crate::metrics::ServeMetrics;
use crate::rcu::{RcuCell, RcuReader};

/// How many registered lock-free readers the registry supports (one per
/// shard). Shards beyond this fall back to the mutex-sharing cold read on
/// swap — correct, just slower in the post-swap instant.
const MAX_RCU_READERS: usize = 64;

/// A servable policy: either the explore-only bootstrap or a learned scorer
/// exploited greedily. The engine wraps either in an ε exploration floor.
/// Serializable because the incumbent is part of the durable control-plane
/// checkpoint (see [`crate::recovery`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServePolicy {
    /// Uniform over the action set — the bootstrap incumbent before any
    /// model has been trained. Every action has propensity `1/K`.
    Uniform,
    /// Greedy over a learned reward model.
    Greedy(LinearScorer),
}

impl ServePolicy {
    /// The greedy (exploitation) action, or `None` for the uniform
    /// bootstrap, which has no preferred action.
    ///
    /// Ties break toward the lowest action index — the same rule as
    /// [`GreedyPolicy`](harvest_core::policy::GreedyPolicy), inlined here
    /// so the per-decision hot path scores through a borrow instead of
    /// cloning the scorer's weight matrix.
    pub fn greedy_action(&self, ctx: &SimpleContext) -> Option<usize> {
        match self {
            ServePolicy::Uniform => None,
            ServePolicy::Greedy(scorer) => {
                let mut best = 0;
                let mut best_score = f64::NEG_INFINITY;
                for a in 0..ctx.num_actions() {
                    let s = scorer.score(ctx, a);
                    if s > best_score {
                        best_score = s;
                        best = a;
                    }
                }
                Some(best)
            }
        }
    }

    /// The distribution this policy serves under an ε exploration floor:
    /// uniform stays uniform; greedy gives its choice `1 − ε + ε/K` and
    /// every other action `ε/K`.
    pub fn served_probabilities(&self, ctx: &SimpleContext, epsilon: f64) -> Vec<f64> {
        let k = ctx.num_actions();
        match self.greedy_action(ctx) {
            None => vec![1.0 / k as f64; k],
            Some(a) => {
                let floor = epsilon / k as f64;
                let mut probs = vec![floor; k];
                probs[a] += 1.0 - epsilon;
                probs
            }
        }
    }
}

/// One immutable registered policy version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyVersion {
    /// Monotone version number; the bootstrap incumbent is generation 0.
    pub generation: u64,
    /// Human-readable provenance (e.g. `"bootstrap-uniform"`, `"cb-round-3"`).
    pub name: String,
    /// The decision rule itself.
    pub policy: ServePolicy,
}

/// The hot-swappable incumbent store.
#[derive(Debug)]
pub struct PolicyRegistry {
    cell: RcuCell<Arc<PolicyVersion>>,
    generation: AtomicU64,
    swaps: AtomicU64,
}

impl PolicyRegistry {
    /// Creates a registry serving `initial` as generation 0.
    pub fn new(initial: ServePolicy, name: impl Into<String>) -> Self {
        let v0 = Arc::new(PolicyVersion {
            generation: 0,
            name: name.into(),
            policy: initial,
        });
        PolicyRegistry {
            cell: RcuCell::new(v0, MAX_RCU_READERS),
            generation: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// Like [`PolicyRegistry::new`]. The metrics handle is accepted for
    /// construction-site compatibility but no longer consulted: the RCU
    /// registry has no slot locks left to poison or recover.
    pub fn with_metrics(
        initial: ServePolicy,
        name: impl Into<String>,
        _metrics: Arc<ServeMetrics>,
    ) -> Self {
        Self::new(initial, name)
    }

    /// The current incumbent. A cold (mutex-sharing) read — control-plane
    /// callers only; shards use [`CachedPolicy`], which reads lock-free.
    pub fn current(&self) -> Arc<PolicyVersion> {
        self.cell.read_cold()
    }

    /// The incumbent's generation number.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// How many promotions have happened.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Claims a lock-free reader pin for a shard's [`CachedPolicy`], or
    /// `None` when the pool (64) is exhausted.
    pub(crate) fn reader(&self) -> Option<RcuReader> {
        self.cell.reader()
    }

    /// The incumbent via a pinned lock-free read.
    pub(crate) fn read(&self, reader: RcuReader) -> Arc<PolicyVersion> {
        self.cell.read(reader)
    }

    /// Atomically promotes `policy` to incumbent; returns its generation.
    ///
    /// The new version is written into the inactive slot — after the RCU
    /// quiescence wait for readers still pinned there — then the active
    /// index flips, then the generation counter advances, all `SeqCst`: a
    /// reader that observes the new generation also observes the new index.
    /// In-flight readers finish on the old version; nobody blocks.
    pub fn promote(&self, policy: ServePolicy, name: impl Into<String>) -> u64 {
        let gen = self.generation.load(Ordering::SeqCst) + 1;
        let next = Arc::new(PolicyVersion {
            generation: gen,
            name: name.into(),
            policy,
        });
        self.cell.write(next);
        self.generation.store(gen, Ordering::SeqCst);
        self.swaps.fetch_add(1, Ordering::SeqCst);
        gen
    }

    /// Restores a checkpointed incumbent verbatim: generation, name, policy,
    /// and the lifetime swap count. Unlike [`promote`](Self::promote) this
    /// neither advances the generation nor counts a swap — a warm restart
    /// resumes the old incarnation's history, it does not rewrite it.
    pub fn restore(&self, version: PolicyVersion, swaps: u64) {
        let gen = version.generation;
        self.cell.write(Arc::new(version));
        self.generation.store(gen, Ordering::SeqCst);
        self.swaps.store(swaps, Ordering::SeqCst);
    }
}

/// A shard-local cache of the incumbent `Arc`. The common case — no swap
/// since the last decision — is one atomic load and nothing else; a swap
/// triggers one epoch-pinned lock-free refresh.
#[derive(Debug)]
pub struct CachedPolicy {
    version: Arc<PolicyVersion>,
    reader: Option<RcuReader>,
}

impl CachedPolicy {
    /// Seeds the cache from the registry's current incumbent and claims a
    /// lock-free reader pin (falling back to cold reads past 64 shards).
    pub fn new(registry: &PolicyRegistry) -> Self {
        CachedPolicy {
            version: registry.current(),
            reader: registry.reader(),
        }
    }

    /// The incumbent as of now: refreshes from `registry` only if a swap
    /// happened since the cached version.
    pub fn get(&mut self, registry: &PolicyRegistry) -> &Arc<PolicyVersion> {
        if registry.generation() != self.version.generation {
            self.version = match self.reader {
                Some(r) => registry.read(r),
                None => registry.current(),
            };
        }
        &self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer_pref(best: usize, k: usize) -> LinearScorer {
        // Per-action constant scores: action `best` wins.
        let weights = (0..k)
            .map(|a| vec![if a == best { 1.0 } else { 0.0 }])
            .collect();
        LinearScorer::PerAction { weights }
    }

    #[test]
    fn promote_flips_generation_and_policy() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "bootstrap");
        assert_eq!(reg.generation(), 0);
        assert_eq!(reg.current().name, "bootstrap");
        let gen = reg.promote(ServePolicy::Greedy(scorer_pref(2, 4)), "round-1");
        assert_eq!(gen, 1);
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.swap_count(), 1);
        let cur = reg.current();
        assert_eq!(cur.name, "round-1");
        let ctx = SimpleContext::contextless(4);
        assert_eq!(cur.policy.greedy_action(&ctx), Some(2));
    }

    #[test]
    fn cache_refreshes_only_on_swap() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "v0");
        let mut cache = CachedPolicy::new(&reg);
        assert_eq!(cache.get(&reg).generation, 0);
        let first = Arc::as_ptr(cache.get(&reg));
        // No swap: same Arc back.
        assert_eq!(Arc::as_ptr(cache.get(&reg)), first);
        reg.promote(ServePolicy::Uniform, "v1");
        assert_eq!(cache.get(&reg).generation, 1);
        assert_eq!(cache.get(&reg).name, "v1");
    }

    #[test]
    fn served_probabilities_are_epsilon_floored() {
        let ctx = SimpleContext::contextless(4);
        let uni = ServePolicy::Uniform.served_probabilities(&ctx, 0.1);
        assert_eq!(uni, vec![0.25; 4]);
        let greedy = ServePolicy::Greedy(scorer_pref(1, 4));
        let probs = greedy.served_probabilities(&ctx, 0.2);
        assert!((probs[1] - (0.8 + 0.05)).abs() < 1e-12);
        for a in [0, 2, 3] {
            assert!((probs[a] - 0.05).abs() < 1e-12);
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_cached_readers_survive_a_promotion_storm() {
        // The RCU replacement for the old poisoned-slot test: shards read
        // through their pins while promotions rotate both slots; every read
        // must return a complete version whose generation never regresses.
        let reg = Arc::new(PolicyRegistry::new(ServePolicy::Uniform, "v0"));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut cache = CachedPolicy::new(&reg);
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cache.get(&reg);
                        assert!(v.generation >= last, "generation regressed");
                        assert_eq!(v.name, format!("v{}", v.generation));
                        last = v.generation;
                    }
                })
            })
            .collect();
        for gen in 1..=200u64 {
            assert_eq!(reg.promote(ServePolicy::Uniform, format!("v{gen}")), gen);
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(reg.current().generation, 200);
        assert_eq!(reg.swap_count(), 200);
    }

    #[test]
    fn in_flight_readers_keep_the_old_version_across_a_swap() {
        let reg = PolicyRegistry::new(ServePolicy::Uniform, "v0");
        let held = reg.current();
        reg.promote(ServePolicy::Uniform, "v1");
        reg.promote(ServePolicy::Uniform, "v2");
        // The Arc held across two swaps is still the version it was.
        assert_eq!(held.generation, 0);
        assert_eq!(reg.current().generation, 2);
    }
}

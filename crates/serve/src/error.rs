//! Recoverable service errors and poison-tolerant locking.
//!
//! The chaos-hardening rule for locks: a poisoned mutex in this crate means
//! a thread panicked while holding it, and every structure we guard is
//! valid at every instant it is held (counters, append-only buffers, the
//! joiner's maps are updated atomically from the caller's view). So poison
//! is *recovered*, counted in [`ServeMetrics::record_lock_recovery`], and
//! serving continues. The only place a panic is re-raised is
//! [`WriterSupervisorHandle::finish`](crate::supervisor::WriterSupervisorHandle::finish)
//! at shutdown — after the supervisor itself has given up.
//!
//! [`ServeMetrics::record_lock_recovery`]: crate::metrics::ServeMetrics::record_lock_recovery

use std::fmt;
use std::sync::{Mutex, MutexGuard};

use harvest_core::HarvestError;

use crate::metrics::ServeMetrics;

/// What can go wrong on the service surface without taking the service
/// down. Callers get an error value, never a panic, for every fault class
/// the chaos harness injects.
#[derive(Debug)]
pub enum ServeError {
    /// A decision was requested on a shard the engine does not have.
    ShardOutOfRange {
        /// The shard asked for.
        shard: usize,
        /// How many shards exist.
        shards: usize,
    },
    /// The log writer exhausted its restart budget and is permanently down.
    WriterDown,
    /// The trainer panicked mid-fit; the incumbent keeps serving.
    TrainerCrashed {
        /// Which training round (0-based attempt index) crashed.
        round: u64,
    },
    /// The training pipeline returned a structured error.
    Train(HarvestError),
    /// A config builder was given values the service cannot run with
    /// (zero shards, an ε outside `(0, 1]`, a zero breaker window, …).
    InvalidConfig {
        /// What was wrong, in words.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range (engine has {shards})")
            }
            ServeError::WriterDown => {
                write!(f, "log writer permanently down (restart budget exhausted)")
            }
            ServeError::TrainerCrashed { round } => {
                write!(f, "trainer crashed mid-fit in round {round}")
            }
            ServeError::Train(e) => write!(f, "training round failed: {e}"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HarvestError> for ServeError {
    fn from(e: HarvestError) -> Self {
        ServeError::Train(e)
    }
}

/// Locks `mutex`, recovering from poison instead of panicking.
///
/// A recovery is counted in `metrics` when given; the data behind every
/// mutex this is used on is consistent at all times (see module docs), so
/// continuing with the inner value is sound. The poison flag is cleared on
/// recovery — poison is sticky by default, and without clearing it a single
/// panic would count a "fault" on every later lock of the same mutex,
/// keeping the circuit breaker's fault signal rising forever.
pub(crate) fn lock_recovering<'a, T>(
    mutex: &'a Mutex<T>,
    metrics: Option<&ServeMetrics>,
) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            if let Some(m) = metrics {
                m.record_lock_recovery();
            }
            mutex.clear_poison();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn poisoned_lock_is_recovered_and_counted() {
        let metrics = Arc::new(ServeMetrics::new());
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        let guard = lock_recovering(&m, Some(&metrics));
        assert_eq!(*guard, 7);
        assert_eq!(metrics.snapshot().lock_recoveries, 1);
        drop(guard);
        // Recovery clears the poison flag: one panic is one fault, not a
        // fault on every later lock of the same mutex.
        assert!(!m.is_poisoned());
        let _again = lock_recovering(&m, Some(&metrics));
        assert_eq!(metrics.snapshot().lock_recoveries, 1);
    }

    #[test]
    fn display_formats_every_variant() {
        let variants: Vec<ServeError> = vec![
            ServeError::ShardOutOfRange {
                shard: 9,
                shards: 4,
            },
            ServeError::WriterDown,
            ServeError::TrainerCrashed { round: 3 },
            ServeError::InvalidConfig {
                reason: "zero shards".to_string(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}

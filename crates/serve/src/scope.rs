//! harvest-scope: the windowed time-series ops plane.
//!
//! A [`HarvestScope`] sits beside the service and is *ticked* at
//! deterministic points of the logical clock. Each tick:
//!
//! 1. drains the writer's stage journal (decision stamp + terminal
//!    class) and folds `tick_now − decided_ns` into per-stage
//!    cumulative latency histograms — decide→write, decide→drop,
//!    decide→quarantine. Asynchronous writer progress is invisible in
//!    logical time, so measuring at the tick is the deterministic
//!    substitute for wall-clock stage spans;
//! 2. snapshots the service counters, quality gauges, and stage
//!    histograms into one cumulative [`SeriesSample`] and feeds the
//!    [`WindowSeries`], sealing any windows the clock has passed;
//! 3. evaluates the watchdogs over each sealed window — an **SLO
//!    burn-rate** over the shed/dropped/quarantined share of offered
//!    work, and a **harvest-quality** floor over `min(ess_fraction,
//!    1 − floor_hit_rate)` — with hysteresis on both edges, raising
//!    typed [`AlertEvent`]s and (optionally) feeding the breaker's
//!    fault signal via
//!    [`ServeMetrics::record_watchdog_fault`](crate::metrics::ServeMetrics::record_watchdog_fault).
//!
//! Everything here is a pure function of the `(tick, sample)` sequence,
//! which is a pure function of the seed: same-seed runs export
//! byte-identical window series, alert states, and event logs — and the
//! wire OPS endpoint serves exactly these bytes.

use harvest_obs::{
    AlertEvent, BreachDirection, Histogram, ObsAlert, PromText, SeriesConfig, SeriesExport,
    SeriesSample, Terminal, Watchdog, WatchdogConfig, WindowSeries,
};

use crate::metrics::ServeMetrics;

/// Sizing, cadence, and watchdog thresholds for the scope.
///
/// Construct via [`ScopeConfig::builder`] or [`ScopeConfig::default`];
/// `#[non_exhaustive]` so new knobs can ship without breaking callers.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ScopeConfig {
    /// Master switch: `false` builds the service without a scope (the
    /// obs master switch being off also disables it, since the scope
    /// reads the stage journal and quality gauges the bundle owns).
    pub enabled: bool,
    /// Window width in logical nanoseconds.
    pub window_ns: u64,
    /// Window frames retained in the ring.
    pub windows: usize,
    /// SLO burn-rate threshold: the watchdog breaches when
    /// `(dropped + quarantined + shed) / (decisions + shed)` over a
    /// window reaches this fraction.
    pub slo_threshold: f64,
    /// Consecutive breaching windows before the SLO alert fires.
    pub slo_fire_after: u32,
    /// Consecutive healthy windows before the SLO alert clears.
    pub slo_clear_after: u32,
    /// Harvest-quality floor: the watchdog breaches when
    /// `min(ess_fraction, 1 − floor_hit_rate)` drops to this value or
    /// below. Windows with no trained round yet are skipped (streaks
    /// hold), so the alert never fires on absence of evidence.
    pub quality_threshold: f64,
    /// Consecutive breaching windows before the quality alert fires.
    pub quality_fire_after: u32,
    /// Consecutive healthy windows before the quality alert clears.
    pub quality_clear_after: u32,
    /// When `true`, each watchdog *firing* bumps the metrics'
    /// `watchdog_faults` counter, which the circuit breaker's fault
    /// signal includes — a sustained SLO burn can then trip the breaker
    /// even when the raw fault counters alone would not.
    pub feed_breaker: bool,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            enabled: true,
            window_ns: 1_000_000_000,
            windows: 64,
            slo_threshold: 0.2,
            slo_fire_after: 2,
            slo_clear_after: 2,
            quality_threshold: 0.2,
            quality_fire_after: 2,
            quality_clear_after: 2,
            feed_breaker: false,
        }
    }
}

impl ScopeConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> ScopeConfigBuilder {
        ScopeConfigBuilder(ScopeConfig::default())
    }
}

/// Builder for [`ScopeConfig`].
#[derive(Debug, Clone)]
pub struct ScopeConfigBuilder(ScopeConfig);

impl ScopeConfigBuilder {
    /// Master switch.
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.0.enabled = enabled;
        self
    }

    /// Window width in logical nanoseconds (clamped to ≥ 1 at build).
    pub fn window_ns(mut self, window_ns: u64) -> Self {
        self.0.window_ns = window_ns;
        self
    }

    /// Window frames retained in the ring (clamped to ≥ 1 at build).
    pub fn windows(mut self, windows: usize) -> Self {
        self.0.windows = windows;
        self
    }

    /// SLO burn-rate threshold in [0, 1].
    pub fn slo_threshold(mut self, threshold: f64) -> Self {
        self.0.slo_threshold = threshold;
        self
    }

    /// SLO hysteresis: windows to fire, windows to clear.
    pub fn slo_hysteresis(mut self, fire_after: u32, clear_after: u32) -> Self {
        self.0.slo_fire_after = fire_after;
        self.0.slo_clear_after = clear_after;
        self
    }

    /// Harvest-quality floor in [0, 1].
    pub fn quality_threshold(mut self, threshold: f64) -> Self {
        self.0.quality_threshold = threshold;
        self
    }

    /// Quality hysteresis: windows to fire, windows to clear.
    pub fn quality_hysteresis(mut self, fire_after: u32, clear_after: u32) -> Self {
        self.0.quality_fire_after = fire_after;
        self.0.quality_clear_after = clear_after;
        self
    }

    /// Wire watchdog firings into the breaker's fault signal.
    pub fn feed_breaker(mut self, feed: bool) -> Self {
        self.0.feed_breaker = feed;
        self
    }

    /// Returns the config with sizes clamped to sane floors.
    pub fn build(self) -> ScopeConfig {
        let mut cfg = self.0;
        cfg.window_ns = cfg.window_ns.max(1);
        cfg.windows = cfg.windows.max(1);
        cfg
    }
}

/// The ops plane: window series + stage timeline + watchdogs. One per
/// service, ticked behind a mutex (ticks are control-plane cadence, not
/// hot path).
pub struct HarvestScope {
    feed_breaker: bool,
    series: WindowSeries,
    /// Cumulative decide→terminal latency histograms, fed from the
    /// stage journal at each tick. Cumulative so the series engine can
    /// slice exact per-window deltas.
    stage_write_ns: Histogram,
    stage_drop_ns: Histogram,
    stage_quarantine_ns: Histogram,
    slo: Watchdog,
    quality: Watchdog,
    /// Every fire/clear event since construction, in tick order.
    events: Vec<AlertEvent>,
}

impl HarvestScope {
    /// A fresh scope under `cfg`.
    pub fn new(cfg: &ScopeConfig) -> Self {
        HarvestScope {
            feed_breaker: cfg.feed_breaker,
            series: WindowSeries::new(SeriesConfig {
                window_ns: cfg.window_ns.max(1),
                capacity: cfg.windows.max(1),
            }),
            stage_write_ns: Histogram::new(),
            stage_drop_ns: Histogram::new(),
            stage_quarantine_ns: Histogram::new(),
            slo: Watchdog::new(
                "slo_burn_rate",
                WatchdogConfig {
                    threshold: cfg.slo_threshold,
                    direction: BreachDirection::Above,
                    fire_after: cfg.slo_fire_after,
                    clear_after: cfg.slo_clear_after,
                },
            ),
            quality: Watchdog::new(
                "harvest_quality",
                WatchdogConfig {
                    threshold: cfg.quality_threshold,
                    direction: BreachDirection::Below,
                    fire_after: cfg.quality_fire_after,
                    clear_after: cfg.quality_clear_after,
                },
            ),
            events: Vec::new(),
        }
    }

    /// One ops-plane tick at logical time `now_ns`: drain the stage
    /// journal, observe the window series, evaluate watchdogs over any
    /// sealed windows, and return the alert events raised (in order).
    ///
    /// For byte-identical stage histograms across same-seed runs, tick
    /// after the pipeline has drained (`log_backlog == 0`) — the
    /// journal's content is then a pure function of the call sequence.
    pub fn tick(
        &mut self,
        now_ns: u64,
        metrics: &ServeMetrics,
        breaker_open: bool,
    ) -> Vec<AlertEvent> {
        // Stage timeline: journaled terminals become decide→terminal
        // latencies, measured at this deterministic tick point.
        if let Some(obs) = metrics.obs() {
            for (decided_ns, terminal) in obs.drain_stage_journal() {
                let span = now_ns.saturating_sub(decided_ns);
                match terminal {
                    Terminal::Written => self.stage_write_ns.record(span),
                    Terminal::Dropped => self.stage_drop_ns.record(span),
                    Terminal::Quarantined => self.stage_quarantine_ns.record(span),
                }
            }
        }

        let snap = metrics.snapshot();
        let mut sample = SeriesSample::new();
        sample
            .counter("decisions", snap.decisions)
            .counter("explorations", snap.explorations)
            .counter("degraded_decisions", snap.degraded_decisions)
            .counter("log_written", snap.log_written)
            .counter("log_dropped", snap.log_dropped)
            .counter("log_quarantined", snap.log_quarantined)
            .counter("admission_shed", snap.admission_shed)
            .counter("join_hits", snap.join_hits)
            .counter("join_late", snap.join_late)
            .counter("join_unknown", snap.join_unknown)
            .counter("timed_out_decisions", snap.timed_out_decisions)
            .counter("swaps", snap.swaps)
            .gauge("breaker_open", if breaker_open { 1.0 } else { 0.0 });
        let quality = metrics.obs().and_then(|o| o.quality());
        match quality {
            Some(q) => {
                sample
                    .gauge("quality_present", 1.0)
                    .gauge("ess_fraction", q.ess_fraction)
                    .gauge("floor_hit_rate", q.floor_hit_rate);
            }
            None => {
                sample.gauge("quality_present", 0.0);
            }
        }
        sample
            .hist("stage_write_ns", self.stage_write_ns.clone())
            .hist("stage_drop_ns", self.stage_drop_ns.clone())
            .hist("stage_quarantine_ns", self.stage_quarantine_ns.clone());
        if let Some(obs) = metrics.obs() {
            sample
                .hist("join_delay_ns", obs.join_delay_histogram())
                .hist("gate_span_ns", obs.gate_span_histogram());
        }

        let sealed = self.series.observe(now_ns, sample);
        let mut raised = Vec::new();
        for frame in &sealed {
            // SLO burn: the shed-or-lost share of offered work. An
            // empty window is healthy (a rate over nothing burns
            // nothing).
            let lost = frame.counter("log_dropped")
                + frame.counter("log_quarantined")
                + frame.counter("admission_shed");
            let offered = frame.counter("decisions") + frame.counter("admission_shed");
            let burn = if offered == 0 {
                0.0
            } else {
                lost as f64 / offered as f64
            };
            if let Some(ev) = self.slo.observe(frame.window, burn) {
                raised.push(ev);
            }
            // Harvest quality: evaluated only once a round has
            // published gauges — no evidence, no verdict.
            if frame.gauge("quality_present") == Some(1.0) {
                let ess = frame.gauge("ess_fraction").unwrap_or(0.0);
                let floor = frame.gauge("floor_hit_rate").unwrap_or(0.0);
                let q = ess.min(1.0 - floor);
                if let Some(ev) = self.quality.observe(frame.window, q) {
                    raised.push(ev);
                }
            }
        }
        for ev in &raised {
            if self.feed_breaker && ev.phase == harvest_obs::AlertPhase::Fired {
                metrics.record_watchdog_fault();
            }
            self.events.push(ev.clone());
        }
        raised
    }

    /// The window series ring as a serializable export.
    pub fn series_export(&self) -> SeriesExport {
        self.series.export()
    }

    /// The window series as deterministic JSON.
    pub fn series_export_json(&self) -> String {
        self.series.export_json()
    }

    /// Current state of every watchdog, in declaration order.
    pub fn alerts(&self) -> Vec<ObsAlert> {
        vec![self.slo.state(), self.quality.state()]
    }

    /// Watchdog states as deterministic JSON.
    pub fn alerts_json(&self) -> String {
        serde_json::to_string(&self.alerts()).expect("alert states serialize")
    }

    /// Every fire/clear event so far, one JSON object per line.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_string(ev).expect("alert event serializes"));
            out.push('\n');
        }
        out
    }

    /// Alert fire/clear events recorded so far.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Appends the scope's Prometheus families to a page under
    /// construction: alert gauges and lifecycle counters, the stage
    /// latency histograms, and the series-ring eviction counter.
    pub fn append_prometheus(&self, p: &mut PromText) {
        let alerts = self.alerts();
        let firing: Vec<(&str, f64)> = alerts
            .iter()
            .map(|a| (a.alert.as_str(), if a.firing { 1.0 } else { 0.0 }))
            .collect();
        let firing_rows: Vec<([(&str, &str); 1], f64)> = firing
            .iter()
            .map(|&(name, v)| ([("alert", name)], v))
            .collect();
        let firing_refs: Vec<(&[(&str, &str)], f64)> =
            firing_rows.iter().map(|(l, v)| (&l[..], *v)).collect();
        p.gauge_family(
            "harvest_alert_firing",
            "1 while the named watchdog alert is firing.",
            &firing_refs,
        );
        let fired_rows: Vec<([(&str, &str); 1], u64)> = alerts
            .iter()
            .map(|a| ([("alert", a.alert.as_str())], a.fired_total))
            .collect();
        let fired_refs: Vec<(&[(&str, &str)], u64)> =
            fired_rows.iter().map(|(l, v)| (&l[..], *v)).collect();
        p.counter_family(
            "harvest_alert_fired_total",
            "Times the named watchdog alert fired.",
            &fired_refs,
        );
        let cleared_rows: Vec<([(&str, &str); 1], u64)> = alerts
            .iter()
            .map(|a| ([("alert", a.alert.as_str())], a.cleared_total))
            .collect();
        let cleared_refs: Vec<(&[(&str, &str)], u64)> =
            cleared_rows.iter().map(|(l, v)| (&l[..], *v)).collect();
        p.counter_family(
            "harvest_alert_cleared_total",
            "Times the named watchdog alert cleared.",
            &cleared_refs,
        );
        p.histogram(
            "harvest_stage_write_latency_ns",
            "Decide-to-written stage latency, logical ns, measured at scope ticks.",
            &self.stage_write_ns,
        );
        p.histogram(
            "harvest_stage_drop_latency_ns",
            "Decide-to-dropped stage latency, logical ns, measured at scope ticks.",
            &self.stage_drop_ns,
        );
        p.histogram(
            "harvest_stage_quarantine_latency_ns",
            "Decide-to-quarantined stage latency, logical ns, measured at scope ticks.",
            &self.stage_quarantine_ns,
        );
        p.counter(
            "harvest_scope_frames_evicted_total",
            "Window frames evicted from the series ring.",
            self.series.evicted(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, ServeObs};
    use harvest_obs::AlertPhase;
    use std::sync::Arc;

    fn scoped_metrics() -> ServeMetrics {
        ServeMetrics::with_obs(Arc::new(ServeObs::new(&ObsConfig::default())))
    }

    #[test]
    fn stage_journal_becomes_latency_histograms() {
        let m = scoped_metrics();
        let obs = Arc::clone(m.obs().unwrap());
        obs.journal_stage_terminal(100, Terminal::Written);
        obs.journal_stage_terminal(300, Terminal::Written);
        obs.journal_stage_terminal(200, Terminal::Dropped);
        let cfg = ScopeConfig::builder().window_ns(1_000).build();
        let mut scope = HarvestScope::new(&cfg);
        scope.tick(1_000, &m, false);
        assert_eq!(scope.stage_write_ns.count(), 2);
        assert_eq!(scope.stage_write_ns.sum(), 900 + 700);
        assert_eq!(scope.stage_drop_ns.count(), 1);
        // Journal drained: the next tick adds nothing.
        scope.tick(2_000, &m, false);
        assert_eq!(scope.stage_write_ns.count(), 2);
    }

    #[test]
    fn slo_watchdog_fires_and_clears_with_hysteresis() {
        let m = scoped_metrics();
        let cfg = ScopeConfig::builder()
            .window_ns(100)
            .slo_threshold(0.5)
            .slo_hysteresis(2, 2)
            .build();
        let mut scope = HarvestScope::new(&cfg);
        // Two burning windows (every offered record dropped), then
        // healthy ones.
        let mut events = Vec::new();
        for w in 1..=6u64 {
            if w <= 2 {
                m.record_decision(w * 100 - 50, false);
                m.record_enqueued();
                m.record_dropped();
            } else {
                m.record_decision(w * 100 - 50, false);
                m.record_enqueued();
                m.record_written();
            }
            events.extend(scope.tick(w * 100, &m, false));
        }
        let phases: Vec<AlertPhase> = events.iter().map(|e| e.phase).collect();
        assert_eq!(phases, vec![AlertPhase::Fired, AlertPhase::Cleared]);
        assert_eq!(events[0].alert, "slo_burn_rate");
        // Fired after window 2 (second breach), cleared after two
        // healthy windows.
        assert!(events[1].window >= events[0].window + 2);
        let alerts = scope.alerts();
        assert!(!alerts[0].firing);
        assert_eq!(alerts[0].fired_total, 1);
        assert_eq!(alerts[0].cleared_total, 1);
    }

    #[test]
    fn quality_watchdog_skips_windows_without_a_round() {
        let m = scoped_metrics();
        let cfg = ScopeConfig::builder()
            .window_ns(100)
            .quality_threshold(0.5)
            .quality_hysteresis(1, 1)
            .build();
        let mut scope = HarvestScope::new(&cfg);
        // No quality published: windows seal, watchdog stays silent.
        for w in 1..=3u64 {
            assert!(scope.tick(w * 100, &m, false).is_empty());
        }
        assert!(!scope.alerts()[1].firing);
        // Publish a collapsed-quality round: fires on the next sealed
        // window.
        let mut q = harvest_estimators::HarvestQuality::empty();
        q.ess_fraction = 0.1;
        q.floor_hit_rate = 0.0;
        m.obs().unwrap().set_quality(q);
        // The t=400 observation carries the gauges into window 4; the
        // next tick seals that window and the watchdog fires.
        assert!(scope.tick(400, &m, false).is_empty());
        let events = scope.tick(500, &m, false);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].alert, "harvest_quality");
        assert_eq!(events[0].phase, AlertPhase::Fired);
    }

    #[test]
    fn feed_breaker_bumps_the_fault_signal_on_fire_only() {
        let m = scoped_metrics();
        let cfg = ScopeConfig::builder()
            .window_ns(100)
            .slo_threshold(0.5)
            .slo_hysteresis(1, 1)
            .feed_breaker(true)
            .build();
        let mut scope = HarvestScope::new(&cfg);
        m.record_decision(50, false);
        m.record_enqueued();
        m.record_dropped();
        scope.tick(100, &m, false); // opens window 1, seals nothing yet
        m.record_decision(150, false);
        m.record_enqueued();
        m.record_written();
        scope.tick(200, &m, false); // seals the burning window 1: fires
                                    // One drop + one watchdog firing.
        assert_eq!(m.fault_signal(), 2);
        // The clear (healthy window 2) does not bump it.
        scope.tick(300, &m, false);
        assert!(!scope.alerts()[0].firing);
        assert_eq!(m.fault_signal(), 2);
    }

    #[test]
    fn exports_are_deterministic_and_prometheus_validates() {
        let run = || {
            let m = scoped_metrics();
            let cfg = ScopeConfig::builder()
                .window_ns(100)
                .slo_hysteresis(1, 1)
                .build();
            let mut scope = HarvestScope::new(&cfg);
            for w in 1..=4u64 {
                m.record_decision(w * 100 - 10, w % 2 == 0);
                m.record_enqueued();
                if w == 2 {
                    m.record_dropped();
                } else {
                    m.record_written();
                }
                m.obs()
                    .unwrap()
                    .journal_stage_terminal(w * 100 - 10, Terminal::Written);
                scope.tick(w * 100, &m, false);
            }
            let mut p = PromText::new();
            scope.append_prometheus(&mut p);
            (
                scope.series_export_json(),
                scope.alerts_json(),
                scope.events_jsonl(),
                p.finish(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        harvest_obs::validate_exposition(&a.3).expect("scope prometheus page validates");
        assert!(a
            .3
            .contains("harvest_alert_firing{alert=\"slo_burn_rate\"}"));
        assert!(a.0.contains("\"window\":1"));
    }
}

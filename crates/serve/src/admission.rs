//! Reusable admission primitives.
//!
//! [`QueueBudget`] began life as the decision logger's private queue bound
//! and is promoted here because the same shape — a weighted semaphore whose
//! units are *logical records*, with a blocking and a refusing acquire —
//! is exactly what a network front-end needs for load shedding: the wire
//! layer (`harvest-wire`) bounds its in-flight decision work with one of
//! these, refusing excess at the door instead of queueing unboundedly.
//!
//! Refusals shed by out-of-crate admission layers are surfaced in the
//! conservation ledger via [`ServeMetrics::record_admission_shed_n`], so a
//! drained system still accounts for every request it turned away.
//!
//! [`ServeMetrics::record_admission_shed_n`]: crate::metrics::ServeMetrics::record_admission_shed_n

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A capacity budget counted in **logical records**: a frame weighs
/// [`record_count`](harvest_log::record::LogRecord::record_count), so a
/// 256-decision batch frame consumes 256 units of capacity, not one channel
/// slot. Without this, batched work would queue `capacity × batch_size`
/// decisions where single calls queue `capacity` — an unbounded memory
/// multiplier and a silent change to what "full" means.
///
/// Two acquire flavors serve the two admission stances:
/// [`acquire_blocking`](QueueBudget::acquire_blocking) (lossless, adds
/// latency — the logger's `Block` backpressure) and
/// [`try_acquire`](QueueBudget::try_acquire) (refusing — `DropNewest`
/// backpressure and wire-level load shedding). Callers release a
/// reservation when the work it covered leaves the queue — *before* the
/// work is completed, so a mid-completion panic can never leak capacity
/// and wedge blocked producers.
///
/// The count itself is a lone atomic: `try_acquire` and `release` — the
/// lock-free hot path — are a CAS loop each, with no mutex and no futex.
/// The mutex/condvar pair exists only for `acquire_blocking` waiters, and
/// `release` touches it only when the waiter counter says someone is
/// actually parked.
///
/// One edge: a single acquisition heavier than the whole capacity can
/// never fit, so it is admitted when the budget is idle rather than
/// deadlocking — the bound degrades to "one oversized acquisition at a
/// time".
#[derive(Debug)]
pub struct QueueBudget {
    capacity: u64,
    queued: AtomicU64,
    /// Parked `acquire_blocking` callers; `release` skips the mutex when 0.
    waiters: AtomicUsize,
    lock: Mutex<()>,
    freed: Condvar,
}

impl QueueBudget {
    /// A fresh budget admitting up to `capacity` logical records.
    pub fn new(capacity: u64) -> Self {
        QueueBudget {
            capacity,
            queued: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            freed: Condvar::new(),
        }
    }

    /// The configured capacity in logical records.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records currently reserved.
    pub fn in_use(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
    }

    /// Blocks until `n` records fit (or the queue is empty, for frames
    /// heavier than the whole capacity), then reserves them.
    pub fn acquire_blocking(&self, n: u64) {
        if self.try_acquire(n) {
            return;
        }
        // Slow path: register as a waiter, then re-check *inside* the
        // mutex before every wait — `release` only notifies under the same
        // mutex (and only when `waiters > 0`), so a release between our
        // failed try and the wait cannot be missed.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !self.try_acquire(n) {
            // Bounded wait: the notify-under-mutex protocol makes a lost
            // wakeup unreachable in practice, and the timeout makes even a
            // theoretical one cost a stall instead of a deadlock.
            guard = self
                .freed
                .wait_timeout(guard, std::time::Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Reserves `n` records if they fit right now; `false` refuses.
    pub fn try_acquire(&self, n: u64) -> bool {
        let mut queued = self.queued.load(Ordering::Relaxed);
        loop {
            if queued.saturating_add(n) > self.capacity && queued > 0 {
                return false;
            }
            match self.queued.compare_exchange_weak(
                queued,
                queued.saturating_add(n),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => queued = actual,
            }
        }
    }

    /// Returns `n` records to the budget and wakes blocked producers.
    pub fn release(&self, n: u64) {
        let mut queued = self.queued.load(Ordering::Relaxed);
        loop {
            match self.queued.compare_exchange_weak(
                queued,
                queued.saturating_sub(n),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => queued = actual,
            }
        }
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Take the mutex before notifying: a waiter is either still
            // inside it (it will re-try and see our decrement) or already
            // parked (the notify reaches it).
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.freed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_acquire_refuses_past_capacity_and_release_restores() {
        let b = QueueBudget::new(4);
        assert_eq!(b.capacity(), 4);
        assert!(b.try_acquire(3));
        assert_eq!(b.in_use(), 3);
        assert!(!b.try_acquire(2), "3 + 2 > 4 must refuse");
        assert!(b.try_acquire(1));
        b.release(4);
        assert_eq!(b.in_use(), 0);
        assert!(b.try_acquire(4));
    }

    #[test]
    fn oversized_acquisition_is_admitted_when_idle() {
        let b = QueueBudget::new(2);
        // Heavier than the whole budget: admitted alone rather than
        // deadlocking, refused while anything else is queued.
        assert!(b.try_acquire(10));
        assert!(!b.try_acquire(1));
        b.release(10);
        assert!(b.try_acquire(1));
    }

    #[test]
    fn acquire_blocking_waits_for_release() {
        let b = Arc::new(QueueBudget::new(1));
        b.acquire_blocking(1);
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            b2.acquire_blocking(1); // blocks until the release below
            b2.release(1);
        });
        b.release(1);
        t.join().unwrap();
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn contended_acquire_release_conserves_capacity() {
        let b = Arc::new(QueueBudget::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        b.acquire_blocking(2);
                        b.release(2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.in_use(), 0);
        assert!(b.try_acquire(8));
    }
}

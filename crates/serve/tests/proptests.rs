//! Property tests for the service's two stateful invariant-carriers: the
//! reward joiner's TTL discipline and the bounded log queue's accounting.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use harvest_log::record::{LogRecord, OutcomeRecord};
use harvest_log::segment::{MemorySegments, SegmentConfig};
use harvest_serve::logger::{Backpressure, LoggerConfig};
use harvest_serve::supervisor::{spawn_supervised_writer, SupervisorConfig};
use harvest_serve::{ChaosPlan, JoinOutcome, RewardJoiner, ServeMetrics};

const TTL_NS: u64 = 1_000;

/// One step of joiner traffic: advance the clock by `gap`, then either
/// track or join `id`. Small id space forces duplicates and re-tracks.
fn arb_ops() -> impl Strategy<Value = Vec<(bool, u64, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..12, 0u64..(TTL_NS / 2)), 0..80)
}

proptest! {
    // The joiner's TTL law, against an independent model: a reward joins
    // iff its id was tracked, has not joined before, and arrives at or
    // before `track_time + TTL` — regardless of interleaving, duplicate
    // tracks, or sweep timing. No join after expiry, no duplicate joins,
    // and the metrics partition the tracked ids exactly.
    #[test]
    fn joiner_ttl_invariants(ops in arb_ops()) {
        let metrics = Arc::new(ServeMetrics::new());
        let mut joiner = RewardJoiner::new(TTL_NS, Arc::clone(&metrics));

        // The model: first-track deadlines (re-tracks never extend) and
        // the set of ids that have already joined.
        let mut deadline: HashMap<u64, u64> = HashMap::new();
        let mut joined: HashSet<u64> = HashSet::new();

        let mut now = 0u64;
        for (is_track, id, gap) in ops {
            now += gap;
            if is_track {
                joiner.track(id, now);
                deadline.entry(id).or_insert(now + TTL_NS);
            } else {
                let (outcome, record) = joiner.join(id, now, 1.0);
                let expected = match deadline.get(&id) {
                    _ if joined.contains(&id) => JoinOutcome::Duplicate,
                    Some(&d) if now <= d => JoinOutcome::Joined,
                    Some(_) => JoinOutcome::Expired,
                    None => JoinOutcome::Unknown,
                };
                prop_assert_eq!(outcome, expected, "id {} at {}", id, now);
                prop_assert_eq!(record.is_some(), outcome == JoinOutcome::Joined);
                if outcome == JoinOutcome::Joined {
                    // No duplicate joins: this must be the first.
                    prop_assert!(joined.insert(id));
                }
            }
        }

        // Every tracked id is in exactly one bucket: joined, swept as
        // expired, or still pending.
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.join_hits as usize, joined.len());
        prop_assert_eq!(
            snap.join_hits + snap.timed_out_decisions + joiner.pending_len() as u64,
            deadline.len() as u64
        );
        // Sweeping never invents expiries: only ids whose deadline truly
        // passed can be counted as timed out.
        let truly_expired = deadline
            .iter()
            .filter(|(id, &d)| d < now && !joined.contains(id))
            .count() as u64;
        prop_assert!(snap.timed_out_decisions <= truly_expired);
    }

    // The log pipeline's conservation law, under arbitrary kill and tear
    // schedules: every record offered counts `enqueued`, and once drained
    // `enqueued == written + dropped + quarantined` — with recovery
    // agreeing exactly on the written and quarantined counts. A generous
    // restart budget plus blocking backpressure means kills never drop.
    #[test]
    fn log_pipeline_conserves_records_under_chaos(
        capacity in 1usize..8,
        n in 0usize..200,
        block in any::<bool>(),
        kills in proptest::collection::btree_set(0u64..220, 0..3),
        tears in proptest::collection::vec((0u64..220, 0.0f64..1.0), 0..3),
    ) {
        let metrics = Arc::new(ServeMetrics::new());
        let cfg = LoggerConfig::builder()
            .capacity(capacity)
            .backpressure(if block { Backpressure::Block } else { Backpressure::DropNewest })
            .segment(SegmentConfig { max_records: 16, max_bytes: usize::MAX, max_span_ns: u64::MAX })
            .build();
        let mut plan = ChaosPlan::none();
        for k in &kills {
            plan = plan.kill_writer_at(*k);
        }
        for (idx, keep) in &tears {
            plan = plan.tear_writer_at(*idx, *keep);
        }
        let (logger, writer) = spawn_supervised_writer(
            cfg,
            SupervisorConfig::builder()
                .max_restarts(16)
                .backoff_base_ms(1)
                .backoff_cap_ms(2)
                .build(),
            Arc::clone(&metrics),
            Some(Arc::new(plan)),
            MemorySegments::new(),
        );
        for id in 0..n as u64 {
            logger.log(LogRecord::Outcome(OutcomeRecord {
                request_id: id,
                timestamp_ns: id,
                reward: 0.0,
            }));
        }
        drop(logger);
        let store = writer.finish().unwrap();

        let snap = metrics.snapshot();
        prop_assert_eq!(snap.log_enqueued, n as u64);
        prop_assert_eq!(
            snap.log_enqueued,
            snap.log_written + snap.log_dropped + snap.log_quarantined
        );
        prop_assert_eq!(snap.log_backlog, 0);
        if block {
            // The restart budget (16) exceeds any schedule here (≤ 6
            // crashes), so a blocking queue never drops.
            prop_assert_eq!(snap.log_dropped, 0);
        }
        // Recovery agrees with the runtime ledger record for record.
        let (records, stats) = store.recover();
        prop_assert_eq!(records.len() as u64, snap.log_written);
        prop_assert_eq!(stats.recovered as u64, snap.log_written);
        prop_assert_eq!(stats.quarantined_records as u64, snap.log_quarantined);
    }
}

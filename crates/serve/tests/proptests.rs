//! Property tests for the service's two stateful invariant-carriers: the
//! reward joiner's TTL discipline and the bounded log queue's accounting.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use harvest_log::record::{read_json_lines, LogRecord, OutcomeRecord};
use harvest_serve::logger::{spawn_writer, Backpressure, LoggerConfig};
use harvest_serve::{JoinOutcome, RewardJoiner, ServeMetrics};

const TTL_NS: u64 = 1_000;

/// One step of joiner traffic: advance the clock by `gap`, then either
/// track or join `id`. Small id space forces duplicates and re-tracks.
fn arb_ops() -> impl Strategy<Value = Vec<(bool, u64, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..12, 0u64..(TTL_NS / 2)), 0..80)
}

proptest! {
    // The joiner's TTL law, against an independent model: a reward joins
    // iff its id was tracked, has not joined before, and arrives at or
    // before `track_time + TTL` — regardless of interleaving, duplicate
    // tracks, or sweep timing. No join after expiry, no duplicate joins,
    // and the metrics partition the tracked ids exactly.
    #[test]
    fn joiner_ttl_invariants(ops in arb_ops()) {
        let metrics = Arc::new(ServeMetrics::new());
        let mut joiner = RewardJoiner::new(TTL_NS, Arc::clone(&metrics));

        // The model: first-track deadlines (re-tracks never extend) and
        // the set of ids that have already joined.
        let mut deadline: HashMap<u64, u64> = HashMap::new();
        let mut joined: HashSet<u64> = HashSet::new();

        let mut now = 0u64;
        for (is_track, id, gap) in ops {
            now += gap;
            if is_track {
                joiner.track(id, now);
                deadline.entry(id).or_insert(now + TTL_NS);
            } else {
                let (outcome, record) = joiner.join(id, now, 1.0);
                let expected = match deadline.get(&id) {
                    _ if joined.contains(&id) => JoinOutcome::Duplicate,
                    Some(&d) if now <= d => JoinOutcome::Joined,
                    Some(_) => JoinOutcome::Expired,
                    None => JoinOutcome::Unknown,
                };
                prop_assert_eq!(outcome, expected, "id {} at {}", id, now);
                prop_assert_eq!(record.is_some(), outcome == JoinOutcome::Joined);
                if outcome == JoinOutcome::Joined {
                    // No duplicate joins: this must be the first.
                    prop_assert!(joined.insert(id));
                }
            }
        }

        // Every tracked id is in exactly one bucket: joined, swept as
        // expired, or still pending.
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.join_hits as usize, joined.len());
        prop_assert_eq!(
            snap.join_hits + snap.timed_out_decisions + joiner.pending_len() as u64,
            deadline.len() as u64
        );
        // Sweeping never invents expiries: only ids whose deadline truly
        // passed can be counted as timed out.
        let truly_expired = deadline
            .iter()
            .filter(|(id, &d)| d < now && !joined.contains(id))
            .count() as u64;
        prop_assert!(snap.timed_out_decisions <= truly_expired);
    }

    // The bounded queue's conservation law: every record offered to the
    // logger is either enqueued or counted as dropped, every enqueued
    // record is eventually written, and blocking mode never drops.
    #[test]
    fn log_queue_accounting_balances(
        capacity in 1usize..8,
        n in 0usize..200,
        block in any::<bool>(),
    ) {
        let metrics = Arc::new(ServeMetrics::new());
        let cfg = LoggerConfig {
            capacity,
            backpressure: if block { Backpressure::Block } else { Backpressure::DropNewest },
        };
        let (logger, writer) = spawn_writer(cfg, Arc::clone(&metrics), Vec::new());
        for id in 0..n as u64 {
            logger.log(LogRecord::Outcome(OutcomeRecord {
                request_id: id,
                timestamp_ns: id,
                reward: 0.0,
            }));
        }
        drop(logger);
        let buf = writer.finish().unwrap();

        let snap = metrics.snapshot();
        prop_assert_eq!(snap.log_enqueued + snap.log_dropped, n as u64);
        prop_assert_eq!(snap.log_written, snap.log_enqueued);
        prop_assert_eq!(snap.log_backlog, 0);
        if block {
            prop_assert_eq!(snap.log_dropped, 0);
        }
        // The sink holds exactly the written records, in order.
        let (records, stats) = read_json_lines(buf.as_slice()).unwrap();
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(records.len() as u64, snap.log_written);
    }
}

//! Deterministic watchdogs with hysteresis.
//!
//! A [`Watchdog`] evaluates one scalar signal once per sealed window and
//! drives a two-state machine: it **fires** only after `fire_after`
//! consecutive breaching windows and **clears** only after `clear_after`
//! consecutive healthy ones. The hysteresis is the point — a single
//! noisy window neither pages nor silences, and because the machine's
//! only input is the (deterministic) window frame sequence, the full
//! alert event log is byte-identical across same-seed runs.
//!
//! Transitions are reported as typed [`AlertEvent`]s and the live state
//! as [`ObsAlert`]s; both carry the observed value and the threshold so
//! the export is self-describing. Fired/cleared totals are monotone
//! counters suitable for Prometheus export.

use serde::Serialize;

/// Which side of the threshold is a breach.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum BreachDirection {
    /// Breach when `value >= threshold` (error ratios, burn rates).
    Above,
    /// Breach when `value <= threshold` (quality floors, ESS fraction).
    Below,
}

/// Thresholds and hysteresis widths for one watchdog.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// The breach boundary.
    pub threshold: f64,
    /// Which side of the boundary breaches.
    pub direction: BreachDirection,
    /// Consecutive breaching windows before firing (clamped to ≥ 1).
    pub fire_after: u32,
    /// Consecutive healthy windows before clearing (clamped to ≥ 1).
    pub clear_after: u32,
}

/// A state transition: the watchdog fired or cleared at `window`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum AlertPhase {
    /// Entered the firing state.
    Fired,
    /// Left the firing state.
    Cleared,
}

/// One alert lifecycle event, as exported (JSON-lines friendly).
#[derive(Clone, Debug, Serialize)]
pub struct AlertEvent {
    /// Watchdog name.
    pub alert: String,
    /// Window index the transition happened at.
    pub window: u64,
    /// Fired or cleared.
    pub phase: AlertPhase,
    /// The value that completed the streak.
    pub value: f64,
    /// The configured breach boundary.
    pub threshold: f64,
}

/// The live state of one watchdog, as exported.
#[derive(Clone, Debug, Serialize)]
pub struct ObsAlert {
    /// Watchdog name.
    pub alert: String,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// Window the current firing episode started at (meaningful only
    /// while `firing`).
    pub since_window: u64,
    /// Most recently observed value.
    pub last_value: f64,
    /// The configured breach boundary.
    pub threshold: f64,
    /// Lifetime count of fire transitions.
    pub fired_total: u64,
    /// Lifetime count of clear transitions.
    pub cleared_total: u64,
}

/// One named hysteresis watchdog. Feed it one value per sealed window
/// via [`observe`](Self::observe).
pub struct Watchdog {
    name: String,
    cfg: WatchdogConfig,
    firing: bool,
    breach_streak: u32,
    healthy_streak: u32,
    since_window: u64,
    last_value: f64,
    fired_total: u64,
    cleared_total: u64,
}

impl Watchdog {
    /// A healthy watchdog named `name` under `cfg`.
    pub fn new(name: &str, cfg: WatchdogConfig) -> Self {
        Self {
            name: name.to_string(),
            cfg: WatchdogConfig {
                fire_after: cfg.fire_after.max(1),
                clear_after: cfg.clear_after.max(1),
                ..cfg
            },
            firing: false,
            breach_streak: 0,
            healthy_streak: 0,
            since_window: 0,
            last_value: 0.0,
            fired_total: 0,
            cleared_total: 0,
        }
    }

    /// Watchdog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Lifetime `(fired, cleared)` transition counts.
    pub fn totals(&self) -> (u64, u64) {
        (self.fired_total, self.cleared_total)
    }

    /// Evaluate the signal for one sealed window. Returns the
    /// transition event if this window completed a fire or clear
    /// streak, `None` otherwise. Non-finite values are treated as
    /// breaching — a signal that can't be computed is not healthy.
    pub fn observe(&mut self, window: u64, value: f64) -> Option<AlertEvent> {
        self.last_value = value;
        let breach = !value.is_finite()
            || match self.cfg.direction {
                BreachDirection::Above => value >= self.cfg.threshold,
                BreachDirection::Below => value <= self.cfg.threshold,
            };
        if breach {
            self.breach_streak = self.breach_streak.saturating_add(1);
            self.healthy_streak = 0;
        } else {
            self.healthy_streak = self.healthy_streak.saturating_add(1);
            self.breach_streak = 0;
        }
        if !self.firing && self.breach_streak >= self.cfg.fire_after {
            self.firing = true;
            self.since_window = window;
            self.fired_total += 1;
            return Some(self.event(window, AlertPhase::Fired, value));
        }
        if self.firing && self.healthy_streak >= self.cfg.clear_after {
            self.firing = false;
            self.cleared_total += 1;
            return Some(self.event(window, AlertPhase::Cleared, value));
        }
        None
    }

    fn event(&self, window: u64, phase: AlertPhase, value: f64) -> AlertEvent {
        AlertEvent {
            alert: self.name.clone(),
            window,
            phase,
            value,
            threshold: self.cfg.threshold,
        }
    }

    /// The live state, for the active-alerts export.
    pub fn state(&self) -> ObsAlert {
        ObsAlert {
            alert: self.name.clone(),
            firing: self.firing,
            since_window: self.since_window,
            last_value: self.last_value,
            threshold: self.cfg.threshold,
            fired_total: self.fired_total,
            cleared_total: self.cleared_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog(fire_after: u32, clear_after: u32) -> Watchdog {
        Watchdog::new(
            "slo_burn",
            WatchdogConfig {
                threshold: 0.5,
                direction: BreachDirection::Above,
                fire_after,
                clear_after,
            },
        )
    }

    #[test]
    fn fires_only_after_consecutive_breaches() {
        let mut d = dog(3, 2);
        assert!(d.observe(0, 0.9).is_none());
        assert!(d.observe(1, 0.9).is_none());
        // A healthy window resets the streak.
        assert!(d.observe(2, 0.1).is_none());
        assert!(d.observe(3, 0.9).is_none());
        assert!(d.observe(4, 0.9).is_none());
        let e = d.observe(5, 0.9).expect("fires on the third consecutive");
        assert_eq!(e.phase, AlertPhase::Fired);
        assert_eq!(e.window, 5);
        assert!(d.firing());
    }

    #[test]
    fn clears_only_after_consecutive_healthy() {
        let mut d = dog(1, 2);
        assert!(d.observe(0, 0.9).is_some());
        assert!(d.observe(1, 0.1).is_none()); // one healthy: still firing
        assert!(d.observe(2, 0.9).is_none()); // breach resets clear streak
        assert!(d.observe(3, 0.1).is_none());
        let e = d.observe(4, 0.1).expect("clears on the second consecutive");
        assert_eq!(e.phase, AlertPhase::Cleared);
        assert!(!d.firing());
        assert_eq!(d.totals(), (1, 1));
    }

    #[test]
    fn below_direction_guards_quality_floors() {
        let mut d = Watchdog::new(
            "quality",
            WatchdogConfig {
                threshold: 0.2,
                direction: BreachDirection::Below,
                fire_after: 2,
                clear_after: 1,
            },
        );
        assert!(d.observe(0, 0.8).is_none());
        assert!(d.observe(1, 0.1).is_none());
        assert!(d.observe(2, 0.15).is_some());
        assert!(d.observe(3, 0.9).is_some());
    }

    #[test]
    fn non_finite_signals_breach() {
        let mut d = dog(1, 1);
        let e = d.observe(0, f64::NAN).expect("NaN breaches");
        assert_eq!(e.phase, AlertPhase::Fired);
    }
}

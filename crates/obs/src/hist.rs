//! Log-scaled (HDR-style) histograms with deterministic percentiles.
//!
//! Values are `u64` samples on a *logical* scale (logical nanoseconds,
//! queue depths, batch sizes). Buckets are log-linear: exact below 32,
//! then 32 sub-buckets per octave, which bounds relative error at ~3%
//! for any magnitude while keeping the layout a fixed 1920 slots. All
//! state is integer (counts and a saturating integer sum), so recording
//! order never changes the result and merging shards is exact — the
//! properties the byte-identical-export guarantee rests on.

use core::sync::atomic::{AtomicU64, Ordering};
use serde::Serialize;

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count: one linear octave-0 region plus 59 octaves.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Map a value to its bucket index.
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let octave = (shift + 1) as usize;
    let sub = ((v >> shift) as usize) & (SUB_COUNT - 1);
    (octave << SUB_BITS) + sub
}

/// Smallest value that lands in bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    if i < SUB_COUNT {
        return i as u64;
    }
    ((SUB_COUNT + (i & (SUB_COUNT - 1))) as u64) << ((i >> SUB_BITS) - 1)
}

/// Largest value that lands in bucket `i` (the Prometheus `le` bound).
fn bucket_ceiling(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_floor(i + 1) - 1
}

/// A mergeable log-linear histogram. Single-threaded; for concurrent
/// recording use [`AtomicHistogram`] and [`AtomicHistogram::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Exact: merging shard
    /// histograms equals recording the combined stream.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Deterministic percentile: the floor of the bucket holding the
    /// sample of rank `ceil(q · count)`. Returns 0 on an empty
    /// histogram. The result is a lower bound on the true quantile with
    /// relative error bounded by the bucket width (~3%).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// The window delta `self − prev`: per-bucket saturating
    /// subtraction, for carving one window's worth of samples out of a
    /// cumulative histogram. When `prev` is an earlier snapshot of the
    /// same monotone stream the delta is exact — it equals the histogram
    /// of just the samples recorded between the two snapshots. `min` and
    /// `max` are reconstructed from the surviving buckets (bucket
    /// floors), which is the same resolution [`percentile`] reports at.
    ///
    /// [`percentile`]: Self::percentile
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        let mut first: Option<usize> = None;
        let mut last = 0usize;
        for i in 0..NUM_BUCKETS {
            let c = self.counts[i].saturating_sub(prev.counts[i]);
            if c > 0 {
                d.counts[i] = c;
                d.count += c;
                if first.is_none() {
                    first = Some(i);
                }
                last = i;
            }
        }
        d.sum = self.sum.saturating_sub(prev.sum);
        if let Some(f) = first {
            d.min = bucket_floor(f);
            d.max = bucket_floor(last);
        }
        d
    }

    /// Non-empty buckets as `(le_bound, bucket_count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_ceiling(i), c))
    }

    /// A compact serializable summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// Serializable digest of a [`Histogram`]: counts, bounds, and the
/// standard percentile trio, all integers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket floor).
    pub p50: u64,
    /// 90th percentile (bucket floor).
    pub p90: u64,
    /// 99th percentile (bucket floor).
    pub p99: u64,
}

/// Lock-free histogram for concurrent recording. All updates are
/// relaxed atomics; [`snapshot`](Self::snapshot) materializes a plain
/// [`Histogram`]. A snapshot taken while writers are active is a
/// consistent *per-field* view, not a cross-field atomic cut — export
/// paths snapshot after the workload quiesces, which is also what the
/// byte-identical guarantee requires.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples with one pass over the atomics — the
    /// batched hot path records a run of equal samples (e.g. zero
    /// inter-arrival gaps within one batch) at the cost of a single
    /// sample. Equivalent to calling [`record`](Self::record) `n` times.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materialize a plain mergeable [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

/// Cache-line isolation for one stripe's scalar atomics, so recording
/// threads on different stripes never invalidate each other's lines.
#[repr(align(64))]
struct PaddedHistogram(AtomicHistogram);

/// A bank of per-stripe [`AtomicHistogram`]s that merge into one view at
/// snapshot time. Callers route each sample by a stripe index — in the
/// serve loop, the engine shard — so concurrent recorders touch disjoint
/// cache lines instead of all contending on one histogram's `count`,
/// `sum`, and hot-bucket atomics. Merging is deterministic: stripes fold
/// in index order and every [`Histogram`] field commutes under merge.
pub struct StripedHistogram {
    stripes: Box<[PaddedHistogram]>,
}

impl StripedHistogram {
    /// A bank of `stripes` empty histograms (clamped to ≥ 1).
    pub fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| PaddedHistogram(AtomicHistogram::new()))
                .collect(),
        }
    }

    /// Record one sample on the caller's stripe (wrapped into range).
    pub fn record(&self, stripe: usize, v: u64) {
        self.stripes[stripe % self.stripes.len()].0.record(v);
    }

    /// Record `n` identical samples on the caller's stripe in one pass.
    pub fn record_n(&self, stripe: usize, v: u64, n: u64) {
        self.stripes[stripe % self.stripes.len()].0.record_n(v, n);
    }

    /// Total samples across all stripes.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.count()).sum()
    }

    /// Merge every stripe into one plain mergeable [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in self.stripes.iter() {
            h.merge(&s.0.snapshot());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // Floors are strictly increasing and each value maps into the
        // bucket whose [floor, ceiling] range contains it.
        for i in 1..NUM_BUCKETS {
            assert!(bucket_floor(i) > bucket_floor(i - 1), "bucket {i}");
        }
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1000, 1 << 40, u64::MAX] {
            let i = bucket_of(v);
            assert!(bucket_floor(i) <= v && v <= bucket_ceiling(i), "value {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            // Rank v+1 of 32 → quantile (v+1)/32 lands exactly on v.
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.percentile(q), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let p = h.percentile(0.5);
        assert!(p <= 1_000_000);
        assert!((1_000_000 - p) as f64 / 1_000_000.0 < 0.04);
    }

    #[test]
    fn empty_histogram_is_finite_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.summary().p50, 0);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 5, 31, 32, 100, 1 << 20] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
    }

    #[test]
    fn bulk_recording_equals_repeated_recording() {
        let bulk = AtomicHistogram::new();
        let one_by_one = AtomicHistogram::new();
        bulk.record_n(7, 5);
        bulk.record_n(1 << 20, 3);
        bulk.record_n(0, 0); // no-op
        for _ in 0..5 {
            one_by_one.record(7);
        }
        for _ in 0..3 {
            one_by_one.record(1 << 20);
        }
        assert_eq!(bulk.snapshot(), one_by_one.snapshot());

        let striped = StripedHistogram::new(4);
        striped.record_n(2, 7, 5);
        striped.record_n(2, 1 << 20, 3);
        assert_eq!(striped.snapshot(), bulk.snapshot());
    }

    #[test]
    fn delta_since_recovers_the_window_slice() {
        let mut early = Histogram::new();
        for v in [3u64, 40, 40, 1000] {
            early.record(v);
        }
        let mut late = early.clone();
        for v in [7u64, 40, 5000] {
            late.record(v);
        }
        let mut expected = Histogram::new();
        for v in [7u64, 40, 5000] {
            expected.record(v);
        }
        let delta = late.delta_since(&early);
        assert_eq!(delta.count(), expected.count());
        assert_eq!(delta.sum(), expected.sum());
        assert_eq!(
            delta.nonzero_buckets().collect::<Vec<_>>(),
            expected.nonzero_buckets().collect::<Vec<_>>()
        );
        // Empty delta: subtracting a snapshot from itself.
        let none = late.delta_since(&late);
        assert_eq!(none.count(), 0);
        assert_eq!(none.min(), None);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }
}

//! Windowed time series over the logical clock.
//!
//! Snapshots show *levels*; operators debug with *rates*. This module
//! turns the crate's cumulative counters, gauges, and histograms into a
//! fixed-width ring of **window frames** — each frame holding the exact
//! integer counter deltas, the histogram of just that window's samples
//! (per-bucket subtraction of cumulative snapshots, see
//! [`Histogram::delta_since`]), and the last gauge values observed in
//! the window.
//!
//! Time is the caller's logical clock: window `w` covers
//! `[w·width, (w+1)·width)` nanoseconds, and the engine is fed by
//! explicit [`WindowSeries::observe`] calls carrying `now_ns` plus the
//! current cumulative [`SeriesSample`]. Crossing a window boundary seals
//! the open window against the **last sample observed inside it** —
//! asynchronous progress between ticks is invisible, so the sealed
//! frames are a pure function of the `(now_ns, sample)` tick sequence,
//! which is itself a pure function of the seed. Same seed, same bytes.
//!
//! Frames merge associatively across shards or replicas
//! ([`SeriesFrame::merge`]): counter deltas add, histogram deltas merge
//! exactly, gauges are right-biased (the merged-in observer wins). The
//! ring holds the most recent `capacity` frames; evictions are counted,
//! never silent.

use crate::hist::{Histogram, HistogramSummary};
use serde::Serialize;
use std::collections::VecDeque;

/// Sizing and cadence of a [`WindowSeries`].
#[derive(Clone, Copy, Debug)]
pub struct SeriesConfig {
    /// Window width in logical nanoseconds (clamped to ≥ 1).
    pub window_ns: u64,
    /// Frames retained in the ring (clamped to ≥ 1); older frames are
    /// evicted and counted.
    pub capacity: usize,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        Self {
            window_ns: 1_000_000_000,
            capacity: 64,
        }
    }
}

/// One cumulative observation of every tracked series, in schema order.
/// Counters and histograms must be monotone between observations (they
/// are cumulative snapshots); gauges are instantaneous.
#[derive(Clone, Debug, Default)]
pub struct SeriesSample {
    /// Cumulative counters as `(name, total)`.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges as `(name, value)`.
    pub gauges: Vec<(String, f64)>,
    /// Cumulative histograms as `(name, snapshot)`.
    pub hists: Vec<(String, Histogram)>,
}

impl SeriesSample {
    /// An empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a cumulative counter.
    pub fn counter(&mut self, name: &str, total: u64) -> &mut Self {
        self.counters.push((name.to_string(), total));
        self
    }

    /// Append an instantaneous gauge.
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.gauges.push((name.to_string(), value));
        self
    }

    /// Append a cumulative histogram snapshot.
    pub fn hist(&mut self, name: &str, snapshot: Histogram) -> &mut Self {
        self.hists.push((name.to_string(), snapshot));
        self
    }

    fn counter_named(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn hist_named(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// One sealed window: deltas for counters and histograms, last values
/// for gauges.
#[derive(Clone, Debug)]
pub struct SeriesFrame {
    /// Window index (`start_ns / window_ns`).
    pub window: u64,
    /// Counter deltas over the window, in schema order.
    pub counters: Vec<(String, u64)>,
    /// Last gauge values observed in (or carried into) the window.
    pub gauges: Vec<(String, f64)>,
    /// Histograms of just this window's samples.
    pub hists: Vec<(String, Histogram)>,
}

impl SeriesFrame {
    /// Counter delta by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge last-value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Window histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Fold another observer's frame for the **same window** into this
    /// one: counter deltas add, histogram deltas merge exactly, gauges
    /// are right-biased (`other` wins; its unknown names are appended).
    /// Addition and exact histogram merge commute and associate, and
    /// right-bias is associative, so multi-way merges are order-robust
    /// left-to-right.
    pub fn merge(&mut self, other: &SeriesFrame) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.hists.push((name.clone(), h.clone())),
            }
        }
    }
}

/// Serialized form of one frame (histograms as summaries).
#[derive(Clone, Debug, Serialize)]
pub struct FrameExport {
    /// Window index.
    pub window: u64,
    /// Window start, logical ns.
    pub start_ns: u64,
    /// Window end (exclusive), logical ns.
    pub end_ns: u64,
    /// Counter deltas.
    pub counters: Vec<(String, u64)>,
    /// Gauge last-values.
    pub gauges: Vec<(String, f64)>,
    /// Window histogram summaries.
    pub hists: Vec<(String, HistogramSummary)>,
}

/// Serialized form of a whole series ring.
#[derive(Clone, Debug, Serialize)]
pub struct SeriesExport {
    /// Window width, logical ns.
    pub window_ns: u64,
    /// Frames sealed and evicted from the ring, oldest-first.
    pub evicted: u64,
    /// Retained frames, oldest-first.
    pub frames: Vec<FrameExport>,
}

/// The windowed time-series engine: feed it cumulative samples stamped
/// with logical time, read back sealed per-window frames. See the
/// module docs for the model.
pub struct WindowSeries {
    window_ns: u64,
    capacity: usize,
    /// Index of the window currently accumulating, with the last
    /// cumulative sample observed inside it.
    open: Option<(u64, SeriesSample)>,
    /// Cumulative state at the last seal — the subtrahend for the next
    /// window's deltas.
    sealed_cum: Option<SeriesSample>,
    frames: VecDeque<SeriesFrame>,
    evicted: u64,
}

impl WindowSeries {
    /// An empty series under `cfg`.
    pub fn new(cfg: SeriesConfig) -> Self {
        Self {
            window_ns: cfg.window_ns.max(1),
            capacity: cfg.capacity.max(1),
            open: None,
            sealed_cum: None,
            frames: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Window width in logical ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Frames evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained frames, oldest-first.
    pub fn frames(&self) -> impl Iterator<Item = &SeriesFrame> {
        self.frames.iter()
    }

    /// The most recently sealed frame, if any.
    pub fn last_frame(&self) -> Option<&SeriesFrame> {
        self.frames.back()
    }

    /// Observe the cumulative state `sample` at logical time `now_ns`.
    /// Seals every window that ended at or before `now_ns` and returns
    /// the newly sealed frames (oldest-first); an observation inside the
    /// still-open window seals nothing and returns empty.
    ///
    /// Windows with no observation of their own seal as **gap frames**:
    /// zero counter deltas, empty histograms, gauges carried forward.
    /// Activity between the last in-window observation and the next one
    /// lands in the window that observation falls in — sample-point
    /// attribution, deterministic for a deterministic tick sequence.
    pub fn observe(&mut self, now_ns: u64, sample: SeriesSample) -> Vec<SeriesFrame> {
        let w = now_ns / self.window_ns;
        let (open_idx, open_last) = match self.open.take() {
            None => {
                self.open = Some((w, sample));
                return Vec::new();
            }
            Some(o) => o,
        };
        if w <= open_idx {
            // Still inside (or logically behind) the open window: the
            // newest cumulative view wins.
            self.open = Some((open_idx, sample));
            return Vec::new();
        }
        let mut sealed = Vec::new();
        // Seal the open window against its last in-window observation.
        let frame = Self::delta_frame(open_idx, &open_last, self.sealed_cum.as_ref());
        sealed.push(frame);
        // Gap windows between the open window and the new one observed
        // nothing: their deltas are zero by construction.
        for gap in (open_idx + 1)..w {
            sealed.push(Self::delta_frame(gap, &open_last, Some(&open_last)));
        }
        self.sealed_cum = Some(open_last);
        self.open = Some((w, sample));
        for frame in &sealed {
            self.frames.push_back(frame.clone());
            while self.frames.len() > self.capacity {
                self.frames.pop_front();
                self.evicted += 1;
            }
        }
        sealed
    }

    /// The frame for window `idx`: `cum − prev` deltas, gauge
    /// last-values from `cum`.
    fn delta_frame(idx: u64, cum: &SeriesSample, prev: Option<&SeriesSample>) -> SeriesFrame {
        let counters = cum
            .counters
            .iter()
            .map(|(name, total)| {
                let before = prev.and_then(|p| p.counter_named(name)).unwrap_or(0);
                (name.clone(), total.saturating_sub(before))
            })
            .collect();
        let hists = cum
            .hists
            .iter()
            .map(|(name, h)| {
                let delta = match prev.and_then(|p| p.hist_named(name)) {
                    Some(before) => h.delta_since(before),
                    None => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        SeriesFrame {
            window: idx,
            counters,
            gauges: cum.gauges.clone(),
            hists,
        }
    }

    /// The retained ring as a serializable export (histograms as
    /// summaries), oldest-first. Byte-identical across same-seed runs
    /// once serialized with the crate's deterministic JSON.
    pub fn export(&self) -> SeriesExport {
        SeriesExport {
            window_ns: self.window_ns,
            evicted: self.evicted,
            frames: self
                .frames
                .iter()
                .map(|f| FrameExport {
                    window: f.window,
                    start_ns: f.window * self.window_ns,
                    end_ns: (f.window + 1) * self.window_ns,
                    counters: f.counters.clone(),
                    gauges: f.gauges.clone(),
                    hists: f
                        .hists
                        .iter()
                        .map(|(n, h)| (n.clone(), h.summary()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// The export serialized as deterministic JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string(&self.export()).expect("series export serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(decisions: u64, ess: f64, lat: &[u64]) -> SeriesSample {
        let mut s = SeriesSample::new();
        s.counter("decisions", decisions);
        s.gauge("ess", ess);
        let mut h = Histogram::new();
        for &v in lat {
            h.record(v);
        }
        s.hist("latency", h);
        s
    }

    #[test]
    fn windows_seal_exact_deltas() {
        let mut series = WindowSeries::new(SeriesConfig {
            window_ns: 100,
            capacity: 8,
        });
        assert!(series.observe(10, sample(5, 0.9, &[3])).is_empty());
        assert!(series.observe(90, sample(12, 0.8, &[3, 7])).is_empty());
        let sealed = series.observe(150, sample(20, 0.7, &[3, 7, 40]));
        assert_eq!(sealed.len(), 1);
        let f = &sealed[0];
        assert_eq!(f.window, 0);
        assert_eq!(f.counter("decisions"), 12);
        assert_eq!(f.gauge("ess"), Some(0.8));
        assert_eq!(f.hist("latency").unwrap().count(), 2);
        // Next seal subtracts the previous cumulative state.
        let sealed = series.observe(250, sample(21, 0.6, &[3, 7, 40]));
        assert_eq!(sealed[0].counter("decisions"), 8);
        assert_eq!(sealed[0].hist("latency").unwrap().count(), 1);
    }

    #[test]
    fn gap_windows_seal_empty_with_carried_gauges() {
        let mut series = WindowSeries::new(SeriesConfig {
            window_ns: 100,
            capacity: 8,
        });
        series.observe(50, sample(5, 0.9, &[3]));
        let sealed = series.observe(450, sample(9, 0.5, &[3, 8]));
        assert_eq!(sealed.len(), 4); // windows 0..=3 sealed
        assert_eq!(sealed[0].counter("decisions"), 5);
        for gap in &sealed[1..] {
            assert_eq!(gap.counter("decisions"), 0);
            assert_eq!(gap.hist("latency").unwrap().count(), 0);
            assert_eq!(gap.gauge("ess"), Some(0.9));
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut series = WindowSeries::new(SeriesConfig {
            window_ns: 10,
            capacity: 2,
        });
        for t in 0..5u64 {
            series.observe(t * 10, sample(t, 0.0, &[]));
        }
        assert_eq!(series.frames().count(), 2);
        assert_eq!(series.evicted(), 2);
        assert_eq!(series.last_frame().unwrap().window, 3);
    }

    #[test]
    fn merge_is_associative_and_adds_deltas() {
        let mk = |d: u64, lat: u64| SeriesFrame {
            window: 7,
            counters: vec![("decisions".into(), d)],
            gauges: vec![("ess".into(), d as f64)],
            hists: vec![("latency".into(), {
                let mut h = Histogram::new();
                h.record(lat);
                h
            })],
        };
        let (a, b, c) = (mk(1, 10), mk(2, 20), mk(4, 30));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.counter("decisions"), 7);
        assert_eq!(left.counter("decisions"), right.counter("decisions"));
        assert_eq!(left.gauge("ess"), right.gauge("ess"));
        assert_eq!(
            left.hist("latency").unwrap().summary(),
            right.hist("latency").unwrap().summary()
        );
    }

    #[test]
    fn export_json_is_deterministic() {
        let run = || {
            let mut series = WindowSeries::new(SeriesConfig {
                window_ns: 100,
                capacity: 4,
            });
            for t in 1..6u64 {
                series.observe(t * 70, sample(t * 3, 1.0 / t as f64, &[t, t * 100]));
            }
            series.export_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"window_ns\":100"));
    }
}

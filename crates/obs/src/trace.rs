//! A lock-light sharded ring tracer for decision lifecycles.
//!
//! Every decision the engine emits is a logged `⟨x, a, r, p⟩` tuple in
//! the making; this tracer records the causal chain each one travels —
//! decided (with its enqueue outcome) → written / dropped / quarantined,
//! plus reward-joined and trained-on annotations — keyed by the decision
//! id. The invariant mirrored from the conservation ledger: once the
//! pipeline drains, every traced decision is accounted to *exactly one*
//! terminal state. [`Tracer::audit`] checks that identity; the
//! JSON-lines export replays it record by record.
//!
//! Concurrency and cost: decision ids are structured —
//! `engine_shard << seq_bits | seq` with a monotone per-shard sequence —
//! and the tracer exploits that instead of hashing. The id's high bits
//! pick the trace shard (one mutex each, so engine shards never contend
//! with each other), and the sequence's low bits pick a slot in that
//! shard's preallocated ring: consecutive decisions from a shard land in
//! *adjacent* slots, so the hot path is one mostly uncontended lock and
//! one cache-friendly sequential slot write — no hashing, no probing, no
//! allocation. When the sequence wraps the ring, the slot's previous
//! resident (exactly `capacity` decisions older) is evicted — counted,
//! never silent. Events for ids no longer (or never) resident bump
//! `late_events` instead of failing.

use crate::hist::{AtomicHistogram, Histogram};
use serde::Serialize;
use std::sync::Mutex;

/// Terminal state of a decision record in the log pipeline. Exactly one
/// of these per decision once the pipeline drains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Terminal {
    /// Durably appended to a log segment.
    Written,
    /// Shed at enqueue (backpressure) or drained after writer death.
    Dropped,
    /// Entered the log but was corrupted/torn; excluded from harvest.
    Quarantined,
}

/// The facts known at decision time, recorded as one event so the hot
/// path pays a single tracer lock per decision.
#[derive(Clone, Copy, Debug)]
pub struct Decided {
    /// Logical nanosecond timestamp supplied by the caller.
    pub ns: u64,
    /// Engine shard that produced the decision.
    pub shard: u32,
    /// Chosen action.
    pub action: usize,
    /// Exact logged propensity.
    pub propensity: f64,
    /// Whether the ε-floor exploration branch fired.
    pub explored: bool,
    /// Whether the safe policy served this decision (breaker open).
    pub degraded: bool,
    /// Policy generation that served it.
    pub generation: u64,
    /// Whether the decision record made it into the log queue.
    pub enqueued: bool,
}

/// The full lifecycle of one decision, as exported.
#[derive(Clone, Debug, Serialize)]
pub struct DecisionTrace {
    /// Decision id (`shard << SEQ_BITS | seq`).
    pub id: u64,
    /// Logical time of the decision.
    pub decided_ns: u64,
    /// Engine shard.
    pub shard: u32,
    /// Chosen action.
    pub action: usize,
    /// Exact logged propensity.
    pub propensity: f64,
    /// Exploration branch fired.
    pub explored: bool,
    /// Served by the safe policy.
    pub degraded: bool,
    /// Policy generation.
    pub generation: u64,
    /// Decision record entered the log queue.
    pub enqueued: bool,
    /// Terminal state, once known.
    pub terminal: Option<Terminal>,
    /// Logical time the reward was joined, if one arrived in time.
    pub joined_ns: Option<u64>,
    /// Training round that consumed this decision, if any.
    pub trained_round: Option<u64>,
}

/// Tracer sizing. Capacity is per shard; total resident traces are
/// `shards · capacity_per_shard`.
#[derive(Clone, Copy, Debug)]
pub struct TracerConfig {
    /// Number of independently locked trace shards. Engine shard `s`
    /// maps to trace shard `s % shards`.
    pub shards: usize,
    /// Ring capacity of each shard, rounded up to a power of two. A
    /// decision evicts the resident exactly `capacity` sequence steps
    /// older once its shard's ring wraps.
    pub capacity_per_shard: usize,
    /// Bit width of the sequence field inside a decision id
    /// (`id = engine_shard << seq_bits | seq`). Must match the id
    /// scheme of whatever mints the ids.
    pub seq_bits: u32,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            capacity_per_shard: 4096,
            seq_bits: 40,
        }
    }
}

struct TraceShard {
    /// Ring storage: `seq & slot_mask` picks the slot, so consecutive
    /// decisions from an engine shard fill adjacent slots and a wrap
    /// evicts the resident exactly `capacity` decisions older.
    slots: Box<[Option<DecisionTrace>]>,
    /// Counters live under the shard lock (which every mutation already
    /// holds) rather than as shared atomics: the hot path pays zero
    /// contended read-modify-writes beyond the lock itself.
    evictions: u64,
    late_events: u64,
    terminal_conflicts: u64,
}

/// Cache-line isolation per shard: the mutex state and the counters of
/// neighbouring shards must not share a line, or engine shards would
/// false-share on every trace event.
#[repr(align(64))]
struct PaddedShard(Mutex<TraceShard>);

/// Deferred terminals accumulate up to this many before a batched apply.
/// Small enough that the inbox stays cache-resident; large enough that
/// the writer thread takes each shard lock ~1/64th as often as it would
/// applying terminals one by one.
const TERMINAL_BATCH: usize = 64;

/// Sharded ring tracer over structured decision ids. See the module docs
/// for the model.
pub struct Tracer {
    shards: Vec<PaddedShard>,
    /// Power of two, so the slot index is a mask of the sequence field.
    slot_mask: u64,
    /// Bit position splitting `id` into `(engine_shard, seq)`.
    seq_bits: u32,
    /// Terminal events parked by [`terminal_deferred`](Self::terminal_deferred)
    /// awaiting a batched apply. Touched only by the log-writer thread
    /// and the export paths — never by the deciding hot path — so the
    /// writer stops ping-ponging the per-shard locks against deciders.
    inbox: Mutex<Vec<(u64, Terminal)>>,
    /// Depth of the inbox at each batched apply — full batches record
    /// [`TERMINAL_BATCH`], export-time drains record the remainder. The
    /// health signal for trace-terminal latency: a distribution skewed
    /// toward small drain depths means exports are doing the writer's
    /// flushing. Deterministic once the pipeline drains, because the
    /// deferred-terminal sequence and the export call sites both are.
    flush_depths: AtomicHistogram,
}

impl Tracer {
    /// Build a tracer from `cfg` (shard count is clamped to ≥ 1, slot
    /// count rounded up to a power of two).
    pub fn new(cfg: TracerConfig) -> Self {
        let n = cfg.shards.max(1);
        let capacity = cfg.capacity_per_shard.max(1).next_power_of_two();
        Self {
            shards: (0..n)
                .map(|_| {
                    PaddedShard(Mutex::new(TraceShard {
                        slots: (0..capacity).map(|_| None).collect(),
                        evictions: 0,
                        late_events: 0,
                        terminal_conflicts: 0,
                    }))
                })
                .collect(),
            slot_mask: (capacity - 1) as u64,
            seq_bits: cfg.seq_bits,
            inbox: Mutex::new(Vec::new()),
            flush_depths: AtomicHistogram::new(),
        }
    }

    /// Histogram of inbox depths at each batched terminal apply. See
    /// the field docs on `flush_depths` for what the shape means.
    pub fn flush_depth_histogram(&self) -> Histogram {
        self.flush_depths.snapshot()
    }

    /// Split an id into its shard's lock and the ring slot of its seq.
    fn locate(&self, id: u64) -> (std::sync::MutexGuard<'_, TraceShard>, usize) {
        let shard = (id >> self.seq_bits) as usize % self.shards.len();
        let slot = (id & self.slot_mask) as usize;
        // A writer incarnation can be killed by chaos injection while
        // holding this lock; recover the data rather than cascade.
        let guard = match self.shards[shard].0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        (guard, slot)
    }

    /// Record a freshly made decision (the one hot-path event): one lock,
    /// one sequential slot write, no allocation.
    pub fn decided(&self, id: u64, d: Decided) {
        let (mut guard, slot) = self.locate(id);
        let shard = &mut *guard;
        match &shard.slots[slot] {
            Some(t) if t.id == id => {
                // The same decision announced twice.
                shard.terminal_conflicts += 1;
                return;
            }
            // Ring wrap: the resident is `capacity` decisions older.
            Some(_) => shard.evictions += 1,
            None => {}
        }
        shard.slots[slot] = Some(DecisionTrace {
            id,
            decided_ns: d.ns,
            shard: d.shard,
            action: d.action,
            propensity: d.propensity,
            explored: d.explored,
            degraded: d.degraded,
            generation: d.generation,
            enqueued: d.enqueued,
            terminal: if d.enqueued {
                None
            } else {
                // Shed at enqueue: terminal is already known.
                Some(Terminal::Dropped)
            },
            joined_ns: None,
            trained_round: None,
        });
    }

    fn with_trace(&self, id: u64, f: impl FnOnce(&mut DecisionTrace)) {
        let (mut guard, slot) = self.locate(id);
        let shard = &mut *guard;
        match &mut shard.slots[slot] {
            Some(t) if t.id == id => f(t),
            _ => shard.late_events += 1,
        }
    }

    /// Record the terminal state of a decision. Set-once: a second,
    /// different terminal is counted as a conflict and ignored.
    pub fn terminal(&self, id: u64, t: Terminal) {
        let (mut guard, slot) = self.locate(id);
        Self::set_terminal(&mut guard, slot, id, t);
    }

    /// Park a terminal for a later batched apply instead of taking the
    /// trace-shard lock now. This is the log-writer's path: applying one
    /// terminal per written record would contend the shard locks against
    /// the deciding threads on every single record, and the futex churn
    /// dominates the whole tracing overhead. Parked events are applied
    /// every [`TERMINAL_BATCH`] events (one lock per shard per batch) and
    /// flushed by every audit/export, so a drained pipeline still audits
    /// complete.
    pub fn terminal_deferred(&self, id: u64, t: Terminal) {
        let mut inbox = match self.inbox.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inbox.push((id, t));
        if inbox.len() >= TERMINAL_BATCH {
            let events = std::mem::take(&mut *inbox);
            drop(inbox);
            self.flush_depths.record(events.len() as u64);
            self.apply_terminals(&events);
        }
    }

    /// Apply every parked terminal. Called by the export paths, so any
    /// observer that reads after the pipeline drains sees every event.
    fn flush_inbox(&self) {
        let events = {
            let mut inbox = match self.inbox.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *inbox)
        };
        if !events.is_empty() {
            self.flush_depths.record(events.len() as u64);
            self.apply_terminals(&events);
        }
    }

    /// Apply a batch, taking each shard's lock at most once. Within a
    /// shard, events apply in arrival order, so set-once semantics match
    /// the immediate path.
    fn apply_terminals(&self, events: &[(u64, Terminal)]) {
        let n = self.shards.len();
        for (idx, padded) in self.shards.iter().enumerate() {
            let mut guard: Option<std::sync::MutexGuard<'_, TraceShard>> = None;
            for &(id, t) in events {
                if (id >> self.seq_bits) as usize % n != idx {
                    continue;
                }
                let g = guard.get_or_insert_with(|| match padded.0.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                });
                let slot = (id & self.slot_mask) as usize;
                Self::set_terminal(g, slot, id, t);
            }
        }
    }

    /// Set-once terminal transition on one slot.
    fn set_terminal(shard: &mut TraceShard, slot: usize, id: u64, t: Terminal) {
        match &mut shard.slots[slot] {
            Some(trace) if trace.id == id => match trace.terminal {
                None => trace.terminal = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => shard.terminal_conflicts += 1,
            },
            _ => shard.late_events += 1,
        }
    }

    /// Mark a decision as shed at the log-queue door: the record never
    /// entered the queue, so the writer will never terminate it. Sets
    /// `enqueued = false` and the `Dropped` terminal (if none yet).
    /// Callers emit [`decided`](Self::decided) *before* offering the
    /// record — so the writer can never race ahead of the trace — and
    /// call this only on a refused offer.
    pub fn shed(&self, id: u64) {
        self.with_trace(id, |trace| {
            trace.enqueued = false;
            if trace.terminal.is_none() {
                trace.terminal = Some(Terminal::Dropped);
            }
        });
    }

    /// Record that a reward joined this decision at logical `ns`.
    pub fn joined(&self, id: u64, ns: u64) {
        self.with_trace(id, |trace| {
            if trace.joined_ns.is_none() {
                trace.joined_ns = Some(ns);
            }
        });
    }

    /// Record that training round `round` consumed this decision.
    pub fn trained(&self, id: u64, round: u64) {
        self.with_trace(id, |trace| {
            if trace.trained_round.is_none() {
                trace.trained_round = Some(round);
            }
        });
    }

    /// All resident traces, sorted by decision id — the deterministic
    /// export order.
    pub fn export_sorted(&self) -> Vec<DecisionTrace> {
        self.flush_inbox();
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = match shard.0.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            all.extend(guard.slots.iter().flatten().cloned());
        }
        all.sort_by_key(|t| t.id);
        all
    }

    /// Replayable JSON-lines export: one `DecisionTrace` object per
    /// line, ascending id order, trailing newline.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for trace in self.export_sorted() {
            out.push_str(&serde_json::to_string(&trace).expect("trace serializes"));
            out.push('\n');
        }
        out
    }

    /// Account every resident trace; the conservation identity holds
    /// when `unterminated == 0` and
    /// `decided == written + dropped + quarantined + evictions`.
    pub fn audit(&self) -> TraceAudit {
        self.flush_inbox();
        let mut audit = TraceAudit::default();
        for shard in &self.shards {
            let guard = match shard.0.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            audit.evictions += guard.evictions;
            audit.late_events += guard.late_events;
            audit.terminal_conflicts += guard.terminal_conflicts;
            for trace in guard.slots.iter().flatten() {
                audit.decided += 1;
                if trace.enqueued {
                    audit.enqueued += 1;
                }
                match trace.terminal {
                    Some(Terminal::Written) => audit.written += 1,
                    Some(Terminal::Dropped) => audit.dropped += 1,
                    Some(Terminal::Quarantined) => audit.quarantined += 1,
                    None => audit.unterminated += 1,
                }
                if trace.joined_ns.is_some() {
                    audit.joined += 1;
                }
                if trace.trained_round.is_some() {
                    audit.trained += 1;
                }
            }
        }
        audit
    }
}

/// The tracer's accounting of every resident decision trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct TraceAudit {
    /// Traces recorded (and still resident).
    pub decided: u64,
    /// Of those, how many entered the log queue.
    pub enqueued: u64,
    /// Terminal: durably written.
    pub written: u64,
    /// Terminal: shed or drained.
    pub dropped: u64,
    /// Terminal: corrupted/torn, excluded from harvest.
    pub quarantined: u64,
    /// No terminal yet (pipeline not drained, or a lost record).
    pub unterminated: u64,
    /// Traces with a joined reward.
    pub joined: u64,
    /// Traces consumed by a training round.
    pub trained: u64,
    /// Traces evicted by a newer decision hashing to their slot.
    pub evictions: u64,
    /// Events that arrived for a non-resident id.
    pub late_events: u64,
    /// Conflicting terminal assignments (ignored, counted).
    pub terminal_conflicts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decided(ns: u64) -> Decided {
        Decided {
            ns,
            shard: 0,
            action: 1,
            propensity: 0.9,
            explored: false,
            degraded: false,
            generation: 0,
            enqueued: true,
        }
    }

    #[test]
    fn lifecycle_accounts_to_one_terminal() {
        let t = Tracer::new(TracerConfig::default());
        t.decided(1, decided(10));
        t.decided(2, decided(20));
        t.decided(
            3,
            Decided {
                enqueued: false,
                ..decided(30)
            },
        );
        t.terminal(1, Terminal::Written);
        t.terminal(2, Terminal::Quarantined);
        t.joined(1, 15);
        t.trained(1, 0);
        let audit = t.audit();
        assert_eq!(audit.decided, 3);
        assert_eq!(audit.enqueued, 2);
        assert_eq!(audit.written, 1);
        assert_eq!(audit.quarantined, 1);
        assert_eq!(audit.dropped, 1); // the shed decision
        assert_eq!(audit.unterminated, 0);
        assert_eq!(audit.joined, 1);
        assert_eq!(audit.trained, 1);
        assert_eq!(
            audit.decided,
            audit.written + audit.dropped + audit.quarantined + audit.evictions
        );
    }

    #[test]
    fn terminal_is_set_once() {
        let t = Tracer::new(TracerConfig::default());
        t.decided(7, decided(1));
        t.terminal(7, Terminal::Written);
        t.terminal(7, Terminal::Dropped);
        let audit = t.audit();
        assert_eq!(audit.written, 1);
        assert_eq!(audit.dropped, 0);
        assert_eq!(audit.terminal_conflicts, 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        // One shard, two slots: seqs 0..4 fill slots 0,1,0,1 — each
        // wrap displaces the resident exactly `capacity` seqs older.
        let t = Tracer::new(TracerConfig {
            shards: 1,
            capacity_per_shard: 2,
            ..TracerConfig::default()
        });
        for id in 0..4u64 {
            t.decided(id, decided(id));
        }
        let audit = t.audit();
        assert_eq!(audit.decided, 2);
        assert_eq!(audit.evictions, 2);
        assert_eq!(
            audit.decided + audit.evictions,
            4,
            "every decision is resident or counted as evicted"
        );
        // A terminal for an evicted id is late, not an error.
        t.terminal(0, Terminal::Written);
        assert_eq!(t.audit().late_events, 1);
        t.terminal(3, Terminal::Written);
        assert_eq!(t.audit().written, 1);
    }

    #[test]
    fn engine_shards_never_collide_on_slots() {
        // Same seq from different engine shards: distinct trace shards,
        // so the shared low bits never displace each other.
        let t = Tracer::new(TracerConfig {
            shards: 4,
            capacity_per_shard: 8,
            ..TracerConfig::default()
        });
        for engine_shard in 0..4u64 {
            for seq in 0..8u64 {
                t.decided(engine_shard << 40 | seq, decided(seq));
            }
        }
        let audit = t.audit();
        assert_eq!(audit.decided, 32);
        assert_eq!(audit.evictions, 0);
    }

    #[test]
    fn flush_depths_record_batches_and_drains() {
        let t = Tracer::new(TracerConfig::default());
        for id in 0..100u64 {
            t.decided(id, decided(id));
        }
        for id in 0..100u64 {
            t.terminal_deferred(id, Terminal::Written);
        }
        // 100 deferred terminals: one full batch of 64 applies inline,
        // the audit drains the remaining 36.
        let audit = t.audit();
        assert_eq!(audit.written, 100);
        let h = t.flush_depth_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(64));
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn export_is_sorted_jsonl() {
        let t = Tracer::new(TracerConfig::default());
        for id in [5u64, 1, 3] {
            t.decided(id, decided(id * 10));
        }
        let out = t.export_jsonl();
        let ids: Vec<u64> = out
            .lines()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).unwrap();
                v.get("id").unwrap().as_u64().unwrap()
            })
            .collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}

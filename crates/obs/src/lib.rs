//! # harvest-obs — deterministic observability for the harvest loop
//!
//! The paper's premise is that production logs of `⟨x, a, r, p⟩` are
//! trustworthy enough to drive off-policy evaluation. That only holds if
//! the system can *see* when they are not: dropped rewards, clipped
//! propensities, drifting contexts, a collapsing effective sample size.
//! This crate is the seeing apparatus, built under the same determinism
//! rules as the decision path itself (DESIGN.md §4): no wall clock, no
//! ambient RNG, and every export byte-identical across same-seed runs.
//!
//! Three pieces:
//!
//! - [`hist`] — log-scaled (HDR-style) histograms over *logical* time.
//!   Integer-exact counts, saturating integer sums, deterministic
//!   percentiles, mergeable across shards. A lock-free
//!   [`hist::AtomicHistogram`] variant records from concurrent threads
//!   and snapshots into the plain mergeable form.
//! - [`trace`] — a lock-light sharded ring-buffer tracer that records
//!   the causal lifecycle of each decision (decided → enqueued →
//!   written / dropped / quarantined, reward-joined, trained-on) keyed
//!   by decision id, with a replayable JSON-lines export and an audit
//!   that accounts every decision to exactly one terminal state.
//! - [`prom`] — a deterministic Prometheus text-exposition builder
//!   (counters, gauges, labeled families, cumulative histogram series)
//!   whose output is a pure function of the values rendered, plus a
//!   conformance validator every workspace export is tested against.
//! - [`series`] — a windowed time-series engine over the logical clock:
//!   a fixed ring of window frames holding exact counter deltas,
//!   per-window histogram slices, and gauge last-values, with
//!   associative cross-shard merge.
//! - [`alert`] — deterministic hysteresis watchdogs that evaluate one
//!   signal per sealed window and raise typed fire/clear events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod hist;
pub mod prom;
pub mod series;
pub mod trace;

pub use alert::{AlertEvent, AlertPhase, BreachDirection, ObsAlert, Watchdog, WatchdogConfig};
pub use hist::{AtomicHistogram, Histogram, HistogramSummary, StripedHistogram};
pub use prom::{validate_exposition, PromText};
pub use series::{
    FrameExport, SeriesConfig, SeriesExport, SeriesFrame, SeriesSample, WindowSeries,
};
pub use trace::{Decided, DecisionTrace, Terminal, TraceAudit, Tracer, TracerConfig};

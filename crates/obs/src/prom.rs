//! Deterministic Prometheus text exposition.
//!
//! A tiny builder for the text format (`# HELP` / `# TYPE` / sample
//! lines). Output is a pure function of the values rendered: series are
//! emitted in call order, histogram buckets in ascending bound order,
//! floats through Rust's shortest-roundtrip formatter, and non-finite
//! values clamped to 0 — so same-seed runs produce byte-identical
//! exposition, which CI asserts.

use crate::hist::Histogram;

/// Incremental builder for a Prometheus text exposition page.
#[derive(Default)]
pub struct PromText {
    out: String,
}

/// Non-finite values would make the page unparsable (and unstable);
/// telemetry upstream is zero-guarded, so clamping here is a backstop.
/// Negative zero (an empty f64 sum) renders as `-0`, so it is folded into
/// plain zero too.
fn finite(v: f64) -> f64 {
    if v.is_finite() && v != 0.0 {
        v
    } else {
        0.0
    }
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit a monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emit a gauge sample (clamped to a finite value).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {}\n", finite(value)));
    }

    /// Emit a full histogram: cumulative `_bucket` series over the
    /// non-empty buckets, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (le, count) in h.nonzero_buckets() {
            cumulative += count;
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        self.out.push_str(&format!("{name}_sum {}\n", h.sum()));
        self.out.push_str(&format!("{name}_count {}\n", h.count()));
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_stable_lines() {
        let mut p = PromText::new();
        p.counter("harvest_decisions_total", "Decisions served.", 42);
        p.gauge("harvest_ess", "Effective sample size.", 17.5);
        let page = p.finish();
        assert!(page.contains("# TYPE harvest_decisions_total counter\n"));
        assert!(page.contains("harvest_decisions_total 42\n"));
        assert!(page.contains("harvest_ess 17.5\n"));
    }

    #[test]
    fn non_finite_gauges_are_clamped() {
        let mut p = PromText::new();
        p.gauge("g", "h", f64::NAN);
        p.gauge("g2", "h", f64::INFINITY);
        let page = p.finish();
        assert!(page.contains("g 0\n"));
        assert!(page.contains("g2 0\n"));
    }

    #[test]
    fn negative_zero_renders_as_zero() {
        let mut p = PromText::new();
        p.gauge("g", "h", -0.0);
        assert!(p.finish().contains("g 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_count() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 5, 100] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("lat", "Latency.", &h);
        let page = p.finish();
        assert!(page.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(page.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(page.contains("lat_count 4\n"));
        assert!(page.contains("lat_sum 107\n"));
    }
}

//! Deterministic Prometheus text exposition.
//!
//! A tiny builder for the text format (`# HELP` / `# TYPE` / sample
//! lines). Output is a pure function of the values rendered: series are
//! emitted in call order, histogram buckets in ascending bound order,
//! floats through Rust's shortest-roundtrip formatter, and non-finite
//! values clamped to 0 — so same-seed runs produce byte-identical
//! exposition, which CI asserts.

use crate::hist::Histogram;

/// Incremental builder for a Prometheus text exposition page.
#[derive(Default)]
pub struct PromText {
    out: String,
}

/// Non-finite values would make the page unparsable (and unstable);
/// telemetry upstream is zero-guarded, so clamping here is a backstop.
/// Negative zero (an empty f64 sum) renders as `-0`, so it is folded into
/// plain zero too.
fn finite(v: f64) -> f64 {
    if v.is_finite() && v != 0.0 {
        v
    } else {
        0.0
    }
}

/// Render a label set as `{k="v",...}` (empty string for no labels),
/// escaping `\`, `"`, and newlines in values per the text format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit a monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emit a gauge sample (clamped to a finite value).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {}\n", finite(value)));
    }

    /// Emit one counter family with one sample per label set, in call
    /// order. Label values are escaped per the exposition format
    /// (backslash, double-quote, newline).
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in samples {
            self.out
                .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
        }
    }

    /// Emit one gauge family with one sample per label set, in call
    /// order (values clamped to finite).
    pub fn gauge_family(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in samples {
            self.out.push_str(&format!(
                "{name}{} {}\n",
                render_labels(labels),
                finite(*value)
            ));
        }
    }

    /// Emit a full histogram: cumulative `_bucket` series over the
    /// non-empty buckets, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (le, count) in h.nonzero_buckets() {
            cumulative += count;
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        self.out.push_str(&format!("{name}_sum {}\n", h.sum()));
        self.out.push_str(&format!("{name}_count {}\n", h.count()));
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Metric name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label name charset: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse the `{k="v",...}` part of a series, returning label names.
fn parse_labels(inner: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        if name.is_empty() {
            return Err(format!("empty label name in {{{inner}}}"));
        }
        names.push(name);
        match chars.next() {
            Some('"') => {}
            _ => return Err(format!("label value not quoted in {{{inner}}}")),
        }
        // Scan the value, honouring backslash escapes.
        loop {
            match chars.next() {
                Some('\\') => {
                    chars.next();
                }
                Some('"') => break,
                Some(_) => {}
                None => return Err(format!("unterminated label value in {{{inner}}}")),
            }
        }
        match chars.next() {
            Some(',') => continue,
            None => return Ok(names),
            Some(c) => return Err(format!("unexpected '{c}' after label in {{{inner}}}")),
        }
    }
}

/// The state of the family currently being emitted.
struct OpenFamily {
    name: String,
    kind: String,
    /// Last `le` bound seen (histograms): bucket order must ascend.
    last_le: Option<f64>,
    /// Last cumulative bucket count (histograms): must not decrease.
    last_bucket: Option<f64>,
    saw_inf: bool,
    saw_sum: bool,
    saw_count: bool,
    samples: usize,
}

/// Validate a Prometheus text-exposition page against the rules every
/// export in this workspace promises: metric and label names use the
/// legal charsets, no family is declared twice, `# HELP` and `# TYPE`
/// precede a family's samples, every sample belongs to the most recent
/// family (histogram samples only via `_bucket`/`_sum`/`_count`),
/// histogram buckets ascend in `le` with non-decreasing cumulative
/// counts and end with `+Inf`, and every value parses. Returns the
/// first violation found.
pub fn validate_exposition(page: &str) -> Result<(), String> {
    let mut seen: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    let mut open: Option<OpenFamily> = None;

    fn close(open: Option<OpenFamily>) -> Result<(), String> {
        if let Some(f) = open {
            if f.kind == "histogram" && !(f.saw_inf && f.saw_sum && f.saw_count) {
                return Err(format!(
                    "histogram family {} is missing +Inf bucket, _sum, or _count",
                    f.name
                ));
            }
        }
        Ok(())
    }

    for (lineno, line) in page.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = match rest.split_once(' ') {
                Some(pair) => pair,
                None => return err(format!("HELP line without help text: {line}")),
            };
            if !valid_metric_name(name) {
                return err(format!("invalid metric name in HELP: {name}"));
            }
            if help.is_empty() {
                return err(format!("empty help text for {name}"));
            }
            if pending_help.is_some() {
                return err(format!("HELP {name} while a HELP is still unpaired"));
            }
            close(open.take())?;
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = match rest.split_once(' ') {
                Some(pair) => pair,
                None => return err(format!("TYPE line without a type: {line}")),
            };
            match pending_help.take() {
                Some(h) if h == name => {}
                Some(h) => return err(format!("TYPE {name} does not match HELP {h}")),
                None => return err(format!("TYPE {name} without a preceding HELP")),
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return err(format!("unknown type {kind} for {name}"));
            }
            if seen.iter().any(|s| s == name) {
                return err(format!("duplicate family {name}"));
            }
            seen.push(name.to_string());
            open = Some(OpenFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                last_le: None,
                last_bucket: None,
                saw_inf: false,
                saw_sum: false,
                saw_count: false,
                samples: 0,
            });
            continue;
        }
        if line.starts_with('#') {
            return err(format!("unexpected comment line: {line}"));
        }
        // A sample line: `name[{labels}] value`.
        let fam = match open.as_mut() {
            Some(f) => f,
            None => return err(format!("sample before any HELP/TYPE: {line}")),
        };
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err(format!("sample line without a value: {line}")),
        };
        let parsed: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => return err(format!("unparsable sample value {value}")),
        };
        let (sample_name, labels) = match series.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(inner) => (
                    n,
                    parse_labels(inner).map_err(|e| format!("line {}: {e}", lineno + 1))?,
                ),
                None => return err(format!("unterminated label set: {series}")),
            },
            None => (series, Vec::new()),
        };
        if !valid_metric_name(sample_name) {
            return err(format!("invalid sample name: {sample_name}"));
        }
        for l in &labels {
            if !valid_label_name(l) {
                return err(format!("invalid label name: {l}"));
            }
        }
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != labels.len() {
            return err(format!("duplicate label name in {series}"));
        }
        if fam.kind == "histogram" {
            let suffix = match sample_name.strip_prefix(fam.name.as_str()) {
                Some(s) => s,
                None => return err(format!("sample {sample_name} outside family {}", fam.name)),
            };
            match suffix {
                "_bucket" => {
                    let le = labels.iter().any(|l| l == "le");
                    if !le {
                        return err(format!("histogram bucket without le label: {series}"));
                    }
                    // Recover the le value for order checking.
                    let le_str = series
                        .split("le=\"")
                        .nth(1)
                        .and_then(|s| s.split('"').next())
                        .unwrap_or("");
                    let le_val = if le_str == "+Inf" {
                        f64::INFINITY
                    } else {
                        match le_str.parse::<f64>() {
                            Ok(v) => v,
                            Err(_) => return err(format!("unparsable le bound {le_str}")),
                        }
                    };
                    if let Some(prev) = fam.last_le {
                        if le_val <= prev {
                            return err(format!("le bounds not ascending in {}", fam.name));
                        }
                    }
                    if let Some(prev) = fam.last_bucket {
                        if parsed < prev {
                            return err(format!(
                                "cumulative bucket counts decrease in {}",
                                fam.name
                            ));
                        }
                    }
                    fam.last_le = Some(le_val);
                    fam.last_bucket = Some(parsed);
                    if le_val.is_infinite() {
                        fam.saw_inf = true;
                    }
                }
                "_sum" => fam.saw_sum = true,
                "_count" => fam.saw_count = true,
                "" => return err(format!("bare sample for histogram family {}", fam.name)),
                other => return err(format!("unknown histogram suffix {other} in {}", fam.name)),
            }
        } else if sample_name != fam.name {
            return err(format!("sample {sample_name} outside family {}", fam.name));
        }
        if !parsed.is_nan() && fam.kind == "counter" && parsed < 0.0 {
            return err(format!("negative counter sample: {line}"));
        }
        fam.samples += 1;
    }
    if let Some(h) = pending_help {
        return Err(format!("HELP {h} without a TYPE"));
    }
    close(open)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_stable_lines() {
        let mut p = PromText::new();
        p.counter("harvest_decisions_total", "Decisions served.", 42);
        p.gauge("harvest_ess", "Effective sample size.", 17.5);
        let page = p.finish();
        assert!(page.contains("# TYPE harvest_decisions_total counter\n"));
        assert!(page.contains("harvest_decisions_total 42\n"));
        assert!(page.contains("harvest_ess 17.5\n"));
    }

    #[test]
    fn non_finite_gauges_are_clamped() {
        let mut p = PromText::new();
        p.gauge("g", "h", f64::NAN);
        p.gauge("g2", "h", f64::INFINITY);
        let page = p.finish();
        assert!(page.contains("g 0\n"));
        assert!(page.contains("g2 0\n"));
    }

    #[test]
    fn negative_zero_renders_as_zero() {
        let mut p = PromText::new();
        p.gauge("g", "h", -0.0);
        assert!(p.finish().contains("g 0\n"));
    }

    #[test]
    fn labeled_families_render_and_validate() {
        let mut p = PromText::new();
        p.counter_family(
            "harvest_alert_fired_total",
            "Alert fire transitions.",
            &[
                (&[("alert", "slo_burn")], 2),
                (&[("alert", "harvest_quality")], 0),
            ],
        );
        p.gauge_family(
            "harvest_alert_firing",
            "Whether the alert is firing.",
            &[(&[("alert", "slo_burn")], 1.0)],
        );
        let page = p.finish();
        assert!(page.contains("harvest_alert_fired_total{alert=\"slo_burn\"} 2\n"));
        assert!(page.contains("harvest_alert_firing{alert=\"slo_burn\"} 1\n"));
        validate_exposition(&page).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.counter_family("c", "h", &[(&[("k", "a\"b\\c\nd")], 1)]);
        let page = p.finish();
        assert!(page.contains("c{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
        validate_exposition(&page).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        // Duplicate family.
        let mut p = PromText::new();
        p.counter("dup", "h", 1);
        p.counter("dup", "h", 2);
        assert!(validate_exposition(&p.finish()).is_err());
        // Sample before HELP/TYPE.
        assert!(validate_exposition("a 1\n").is_err());
        // TYPE without HELP.
        assert!(validate_exposition("# TYPE a counter\na 1\n").is_err());
        // Bad metric name.
        assert!(validate_exposition("# HELP 9bad h\n# TYPE 9bad counter\n9bad 1\n").is_err());
        // Sample outside the open family.
        assert!(
            validate_exposition("# HELP a h\n# TYPE a counter\nb 1\n").is_err(),
            "foreign sample must be rejected"
        );
        // Unparsable value.
        assert!(validate_exposition("# HELP a h\n# TYPE a counter\na x\n").is_err());
        // Histogram without +Inf.
        assert!(
            validate_exposition("# HELP h h\n# TYPE h histogram\nh_sum 1\nh_count 1\n").is_err()
        );
    }

    #[test]
    fn every_builder_page_validates() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 100, 10_000] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.counter("c_total", "Counter.", 7);
        p.gauge("g", "Gauge.", 0.25);
        p.histogram("lat_ns", "Latency.", &h);
        p.histogram("empty_ns", "Empty histogram.", &Histogram::new());
        validate_exposition(&p.finish()).unwrap();
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_count() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 5, 100] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("lat", "Latency.", &h);
        let page = p.finish();
        assert!(page.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(page.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(page.contains("lat_count 4\n"));
        assert!(page.contains("lat_sum 107\n"));
    }
}

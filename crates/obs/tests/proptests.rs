//! Property tests for the histogram invariants the export guarantees
//! rest on: merging is exact, recording is order-independent, and the
//! rendered exposition is a pure function of the recorded values.

use proptest::prelude::*;

use harvest_obs::{validate_exposition, Histogram, PromText};

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..200)
}

fn record_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    // Sharding law: merging per-shard histograms must equal recording
    // the combined stream — counts, sum, extrema, and every percentile.
    #[test]
    fn merge_equals_combined_stream(a in arb_samples(), b in arb_samples()) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let mut combined_values = a.clone();
        combined_values.extend_from_slice(&b);
        let combined = record_all(&combined_values);

        prop_assert_eq!(&merged, &combined);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), combined.percentile(q), "q={}", q);
        }
    }

    // Recording order never matters: the state is pure counts and a
    // saturating integer sum, so forward and reversed streams agree.
    #[test]
    fn recording_is_order_independent(values in arb_samples()) {
        let forward = record_all(&values);
        let mut reversed_values = values.clone();
        reversed_values.reverse();
        let reversed = record_all(&reversed_values);
        prop_assert_eq!(forward, reversed);
    }

    // Same inputs → byte-identical exposition, the property CI asserts
    // across whole same-seed runs.
    #[test]
    fn exposition_is_byte_identical(values in arb_samples()) {
        let render = |h: &Histogram| {
            let mut page = PromText::new();
            page.counter("obs_samples_total", "Samples recorded.", h.count());
            page.histogram("obs_values", "Recorded values.", h);
            page.finish()
        };
        let once = render(&record_all(&values));
        let again = render(&record_all(&values));
        prop_assert_eq!(once, again);
    }

    // Any page assembled from the builder — counters, gauges, labeled
    // families, histograms, in any mix — satisfies the exposition grammar
    // the scraper-facing validator enforces. This is the foundation the
    // workspace-level conformance proptest (tests/proptest_invariants.rs)
    // rests on: if the builder can emit a malformed family, this shrinks
    // to it directly.
    #[test]
    fn assembled_pages_conform(
        values in arb_samples(),
        counter in any::<u64>(),
        gauge in -1e18f64..1e18,
        labeled in proptest::collection::vec((0usize..4, any::<u64>()), 0..6),
    ) {
        let h = record_all(&values);
        let mut page = PromText::new();
        page.counter("obs_samples_total", "Samples recorded.", counter);
        page.gauge("obs_level", "An arbitrary gauge.", gauge);
        let samples: Vec<(&[(&str, &str)], u64)> = labeled
            .iter()
            .map(|(shard, v)| {
                let pairs: &[(&str, &str)] = match *shard {
                    0 => &[("shard", "0")],
                    1 => &[("shard", "1")],
                    2 => &[("shard", "2")],
                    _ => &[("shard", "3")],
                };
                (pairs, *v)
            })
            .collect();
        page.counter_family("obs_labeled_total", "A labeled family.", &samples);
        page.histogram("obs_values", "Recorded values.", &h);
        let rendered = page.finish();
        prop_assert!(
            validate_exposition(&rendered).is_ok(),
            "builder emitted a malformed page: {:?}\n{}",
            validate_exposition(&rendered),
            rendered
        );
    }
}

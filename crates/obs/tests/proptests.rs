//! Property tests for the histogram invariants the export guarantees
//! rest on: merging is exact, recording is order-independent, and the
//! rendered exposition is a pure function of the recorded values.

use proptest::prelude::*;

use harvest_obs::{Histogram, PromText};

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..200)
}

fn record_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    // Sharding law: merging per-shard histograms must equal recording
    // the combined stream — counts, sum, extrema, and every percentile.
    #[test]
    fn merge_equals_combined_stream(a in arb_samples(), b in arb_samples()) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let mut combined_values = a.clone();
        combined_values.extend_from_slice(&b);
        let combined = record_all(&combined_values);

        prop_assert_eq!(&merged, &combined);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), combined.percentile(q), "q={}", q);
        }
    }

    // Recording order never matters: the state is pure counts and a
    // saturating integer sum, so forward and reversed streams agree.
    #[test]
    fn recording_is_order_independent(values in arb_samples()) {
        let forward = record_all(&values);
        let mut reversed_values = values.clone();
        reversed_values.reverse();
        let reversed = record_all(&reversed_values);
        prop_assert_eq!(forward, reversed);
    }

    // Same inputs → byte-identical exposition, the property CI asserts
    // across whole same-seed runs.
    #[test]
    fn exposition_is_byte_identical(values in arb_samples()) {
        let render = |h: &Histogram| {
            let mut page = PromText::new();
            page.counter("obs_samples_total", "Samples recorded.", h.count());
            page.histogram("obs_values", "Recorded values.", h);
            page.finish()
        };
        let once = render(&record_all(&values));
        let again = render(&record_all(&values));
        prop_assert_eq!(once, again);
    }
}

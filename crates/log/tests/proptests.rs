//! Property tests for the log pipeline: round-trips and join laws.

use proptest::prelude::*;

use harvest_core::policy::UniformPolicy;
use harvest_log::pipeline::HarvestPipeline;
use harvest_log::propensity::KnownPropensity;
use harvest_log::record::{
    read_json_lines, DecisionRecord, JsonLinesWriter, LogRecord, OutcomeRecord,
};
use harvest_log::scavenge::scavenge;

fn arb_decision() -> impl Strategy<Value = DecisionRecord> {
    (
        0u64..1000,
        0u64..1_000_000,
        proptest::collection::vec(-100.0f64..100.0, 0..6),
        1usize..8,
        proptest::option::of(0.05f64..1.0),
        proptest::option::of(-10.0f64..10.0),
    )
        .prop_map(|(id, ts, shared, k, propensity, reward)| DecisionRecord {
            request_id: id,
            timestamp_ns: ts,
            component: "prop".to_string(),
            shared_features: shared,
            action_features: None,
            num_actions: k,
            action: (id as usize) % k,
            propensity,
            reward,
        })
}

proptest! {
    #[test]
    fn json_lines_round_trip_any_records(
        decisions in proptest::collection::vec(arb_decision(), 0..40),
        outcomes in proptest::collection::vec((0u64..1000, 0u64..1_000_000, -10.0f64..10.0), 0..40)
    ) {
        let mut records: Vec<LogRecord> =
            decisions.into_iter().map(LogRecord::Decision).collect();
        records.extend(outcomes.into_iter().map(|(id, ts, r)| {
            LogRecord::Outcome(OutcomeRecord { request_id: id, timestamp_ns: ts, reward: r })
        }));
        let mut w = JsonLinesWriter::new(Vec::new());
        for r in &records {
            w.write(r).unwrap();
        }
        let (back, stats) = read_json_lines(w.into_inner().as_slice()).unwrap();
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn scavenge_join_accounting_balances(
        decisions in proptest::collection::vec(arb_decision(), 0..50)
    ) {
        let records: Vec<LogRecord> = decisions.iter().cloned().map(LogRecord::Decision).collect();
        let (samples, stats) = scavenge(&records);
        // Every decision is either joined (had inline reward), missing its
        // outcome, or invalid.
        prop_assert_eq!(
            stats.joined + stats.missing_outcome + stats.invalid,
            decisions.len()
        );
        prop_assert_eq!(samples.len(), stats.joined);
        prop_assert_eq!(stats.orphan_outcomes, 0);
    }

    #[test]
    fn pipeline_output_is_always_a_valid_dataset(
        decisions in proptest::collection::vec(arb_decision(), 0..50)
    ) {
        let records: Vec<LogRecord> = decisions.iter().cloned().map(LogRecord::Decision).collect();
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (dataset, report) = pipeline.run(&records).unwrap();
        // Validation is enforced sample-by-sample: everything in the
        // dataset has a usable propensity and finite reward.
        for s in &dataset {
            prop_assert!(s.propensity > 0.0 && s.propensity <= 1.0);
            prop_assert!(s.reward.is_finite());
        }
        prop_assert!(dataset.len() <= decisions.len());
        prop_assert_eq!(
            report.logged_propensities + report.inferred_propensities,
            dataset.len() + report.dropped_invalid_propensity
        );
    }
}

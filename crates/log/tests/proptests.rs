//! Property tests for the log pipeline: round-trips, join laws, and the
//! durability layer (checkpoint framing, segment lifecycle).

use proptest::prelude::*;

use harvest_core::policy::UniformPolicy;
use harvest_log::checkpoint::{load_latest, CheckpointStore, CheckpointWriter, MemoryCheckpoints};
use harvest_log::lifecycle::{compact_segments, LifecycleConfig};
use harvest_log::pipeline::HarvestPipeline;
use harvest_log::propensity::KnownPropensity;
use harvest_log::record::{
    read_json_lines, DecisionRecord, JsonLinesWriter, LogRecord, OutcomeRecord,
};
use harvest_log::scavenge::{scavenge, scavenge_segments};
use harvest_log::segment::{recover_segments, MemorySegments, SegmentConfig, SegmentedLogWriter};

fn arb_decision() -> impl Strategy<Value = DecisionRecord> {
    (
        0u64..1000,
        0u64..1_000_000,
        proptest::collection::vec(-100.0f64..100.0, 0..6),
        1usize..8,
        proptest::option::of(0.05f64..1.0),
        proptest::option::of(-10.0f64..10.0),
    )
        .prop_map(|(id, ts, shared, k, propensity, reward)| DecisionRecord {
            request_id: id,
            timestamp_ns: ts,
            component: "prop".to_string(),
            shared_features: shared,
            action_features: None,
            num_actions: k,
            action: (id as usize) % k,
            propensity,
            reward,
        })
}

proptest! {
    #[test]
    fn json_lines_round_trip_any_records(
        decisions in proptest::collection::vec(arb_decision(), 0..40),
        outcomes in proptest::collection::vec((0u64..1000, 0u64..1_000_000, -10.0f64..10.0), 0..40)
    ) {
        let mut records: Vec<LogRecord> =
            decisions.into_iter().map(LogRecord::Decision).collect();
        records.extend(outcomes.into_iter().map(|(id, ts, r)| {
            LogRecord::Outcome(OutcomeRecord { request_id: id, timestamp_ns: ts, reward: r })
        }));
        let mut w = JsonLinesWriter::new(Vec::new());
        for r in &records {
            w.write(r).unwrap();
        }
        let (back, stats) = read_json_lines(w.into_inner().as_slice()).unwrap();
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn scavenge_join_accounting_balances(
        decisions in proptest::collection::vec(arb_decision(), 0..50)
    ) {
        let records: Vec<LogRecord> = decisions.iter().cloned().map(LogRecord::Decision).collect();
        let (samples, stats) = scavenge(&records);
        // Every decision is either joined (had inline reward), missing its
        // outcome, or invalid.
        prop_assert_eq!(
            stats.joined + stats.missing_outcome + stats.invalid,
            decisions.len()
        );
        prop_assert_eq!(samples.len(), stats.joined);
        prop_assert_eq!(stats.orphan_outcomes, 0);
    }

    #[test]
    fn pipeline_output_is_always_a_valid_dataset(
        decisions in proptest::collection::vec(arb_decision(), 0..50)
    ) {
        let records: Vec<LogRecord> = decisions.iter().cloned().map(LogRecord::Decision).collect();
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (dataset, report) = pipeline.run(&records).unwrap();
        // Validation is enforced sample-by-sample: everything in the
        // dataset has a usable propensity and finite reward.
        for s in &dataset {
            prop_assert!(s.propensity > 0.0 && s.propensity <= 1.0);
            prop_assert!(s.reward.is_finite());
        }
        prop_assert!(dataset.len() <= decisions.len());
        prop_assert_eq!(
            report.logged_propensities + report.inferred_propensities,
            dataset.len() + report.dropped_invalid_propensity
        );
    }
}

/// Sorted joined samples keyed by everything training sees, for multiset
/// comparison across a compaction pass.
fn joined_multiset(segments: &[Vec<u8>]) -> Vec<(usize, String, String, String)> {
    let (samples, _, _) = scavenge_segments(segments);
    let mut keyed: Vec<(usize, String, String, String)> = samples
        .iter()
        .map(|s| {
            (
                s.action,
                format!("{:?}", s.reward),
                format!("{:?}", s.propensity),
                format!("{:?}", s.context),
            )
        })
        .collect();
    keyed.sort();
    keyed
}

proptest! {
    #[test]
    fn checkpoint_round_trips_and_retention_keeps_the_newest(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        keep_last in 1usize..4,
    ) {
        let mut w = CheckpointWriter::new(MemoryCheckpoints::new(), keep_last).unwrap();
        for p in &payloads {
            w.write(p).unwrap();
        }
        let store = w.into_store();
        let (loaded, rec) = load_latest(&store);
        // The newest payload always loads back verbatim, arbitrary bytes
        // included, and retention never scans a damaged blob on the way.
        prop_assert_eq!(loaded.as_deref(), Some(payloads.last().unwrap().as_slice()));
        prop_assert_eq!(rec.discarded, 0);
        prop_assert_eq!(rec.loaded_seq, Some(payloads.len() as u64 - 1));
        prop_assert!(store.list().unwrap().len() <= keep_last);
    }

    #[test]
    fn checkpoint_truncated_at_any_offset_falls_back_to_previous_valid(
        older in proptest::collection::vec(any::<u8>(), 0..100),
        newer in proptest::collection::vec(any::<u8>(), 0..100),
        frac in 0.0f64..1.0,
    ) {
        let mut w = CheckpointWriter::new(MemoryCheckpoints::new(), 8).unwrap();
        w.write(&older).unwrap();
        let seq = w.write(&newer).unwrap();
        let mut store = w.into_store();
        // A torn write is any strictly-short prefix — header boundary,
        // mid-header, mid-payload, empty; every offset must be detected.
        let blob = store.raw(seq).unwrap();
        let cut = (((blob.len()) as f64) * frac) as usize;
        store.publish(seq, &blob[..cut.min(blob.len() - 1)]).unwrap();
        let (loaded, rec) = load_latest(&store);
        prop_assert_eq!(loaded.as_deref(), Some(older.as_slice()));
        prop_assert_eq!(rec.discarded, 1);
        prop_assert_eq!(rec.loaded_seq, Some(0));
    }

    #[test]
    fn any_single_byte_corruption_is_detected_and_counted(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let mut w = CheckpointWriter::new(MemoryCheckpoints::new(), 8).unwrap();
        let seq = w.write(&payload).unwrap();
        let mut store = w.into_store();
        // Flip one byte anywhere: magic, version, seq, length, checksum, or
        // payload. Every position must fail validation — a flipped seq
        // field parses but no longer matches its slot.
        let mut blob = store.raw(seq).unwrap();
        let pos = (((blob.len() - 1) as f64) * pos_frac) as usize;
        blob[pos] ^= xor;
        store.publish(seq, &blob).unwrap();
        let (loaded, rec) = load_latest(&store);
        prop_assert!(loaded.is_none(), "one-byte flip at {pos} validated");
        prop_assert_eq!(rec.discarded, 1);
    }

    #[test]
    fn compaction_preserves_the_joined_multiset_and_quarantine(
        decisions in proptest::collection::vec(arb_decision(), 0..40),
        max_records in 1usize..6,
        hot in 0usize..4,
        damage in proptest::option::of((0usize..8, 1u8..255)),
    ) {
        // Unique ids (joins are per-id); every even id gets an outcome, so
        // the stream mixes folded joins, unmatched decisions, and inline
        // rewards that an outcome must override.
        let mut records: Vec<LogRecord> = Vec::new();
        for (i, mut d) in decisions.into_iter().enumerate() {
            d.request_id = i as u64;
            let ts = d.timestamp_ns;
            records.push(LogRecord::Decision(d));
            if i % 2 == 0 {
                records.push(LogRecord::Outcome(OutcomeRecord {
                    request_id: i as u64,
                    timestamp_ns: ts + 1,
                    reward: i as f64 * 0.25,
                }));
            }
        }
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig { max_records, max_bytes: usize::MAX, max_span_ns: u64::MAX },
        );
        for r in &records {
            w.write(r).unwrap();
        }
        let store = w.into_sink().unwrap();
        if let Some((seg, xor)) = damage {
            let n = store.segment_count();
            if n > 0 {
                store.corrupt_payload(seg % n, 0, xor);
            }
        }
        let before = joined_multiset(&store.snapshot());
        let (_, before_stats) = recover_segments(&store.snapshot());
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                shard: SegmentConfig::default(),
                hot_segments: hot,
                max_shards: usize::MAX,
            },
        );
        // The training view is untouched: exact multiset of joined samples,
        // and damage accounting carried through verbatim.
        prop_assert_eq!(joined_multiset(&compacted), before);
        let (_, after_stats) = recover_segments(&compacted);
        prop_assert_eq!(after_stats.quarantined_records, before_stats.quarantined_records);
        prop_assert_eq!(after_stats.quarantined_bytes, before_stats.quarantined_bytes);
        prop_assert_eq!(report.segments_in, store.segment_count());
        prop_assert_eq!(report.expired_records, 0);
    }
}

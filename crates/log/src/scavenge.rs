//! Step 1 of the methodology: joining decision and outcome records into
//! `⟨x, a, r⟩` triples.

use std::collections::HashMap;

use harvest_core::{LoggedDecision, SimpleContext};

use crate::record::{DecisionRecord, LogRecord};
use crate::segment::{recover_segments, RecoveryStats};

/// A scavenged triple: context, action, reward — with the propensity still
/// possibly unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScavengedSample {
    /// The reconstructed context.
    pub context: SimpleContext,
    /// The logged action.
    pub action: usize,
    /// The (possibly reconstructed) reward.
    pub reward: f64,
    /// The propensity, if the decision site logged it.
    pub propensity: Option<f64>,
}

impl ScavengedSample {
    /// Finalizes into a [`LoggedDecision`] using `propensity` when the log
    /// lacked one.
    pub fn with_propensity(self, fallback: f64) -> LoggedDecision<SimpleContext> {
        LoggedDecision {
            context: self.context,
            action: self.action,
            reward: self.reward,
            propensity: self.propensity.unwrap_or(fallback),
        }
    }
}

/// Counters describing what the scavenger kept and dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScavengeStats {
    /// Decisions joined with a reward.
    pub joined: usize,
    /// Decisions with no matching outcome (reward never observed).
    pub missing_outcome: usize,
    /// Outcomes with no matching decision (decision log rotated away).
    pub orphan_outcomes: usize,
    /// Decisions dropped because their fields were inconsistent.
    pub invalid: usize,
    /// Record frames quarantined by segment recovery before scavenging
    /// (zero when the input came from an intact stream). Never silently
    /// folded into the other buckets: a quarantined record was damage in
    /// the log itself, not a join failure.
    pub quarantined: usize,
}

/// Rebuilds the [`SimpleContext`] a decision record was logged with, or
/// `None` when its fields are inconsistent (action out of range, ragged
/// action features). Shared with warm-restart replay, which must re-score
/// the exact context the original incarnation saw.
pub fn context_of(d: &DecisionRecord) -> Option<SimpleContext> {
    if d.num_actions == 0 || d.action >= d.num_actions {
        return None;
    }
    match &d.action_features {
        Some(af) => {
            if af.len() != d.num_actions || af.is_empty() {
                return None;
            }
            let dim = af[0].len();
            if af.iter().any(|f| f.len() != dim) {
                return None;
            }
            Some(SimpleContext::with_action_features(
                d.shared_features.clone(),
                af.clone(),
            ))
        }
        None => Some(SimpleContext::new(d.shared_features.clone(), d.num_actions)),
    }
}

/// A cross-segment outcome join index: phase one of the two-phase
/// scavenge that the portfolio evaluator parallelizes.
///
/// Rewards may land in a different (later) segment than the decision they
/// terminate, so a per-segment join would lose them. Instead, feed every
/// segment's recovered records through [`OutcomeIndex::index`] **in
/// segment order** — a later insert for the same `request_id` wins,
/// exactly like [`scavenge`]'s single-map build — and then join each
/// segment's decisions against the finished index with
/// [`scavenge_with_outcomes`], which is a pure function of
/// `(segment, index)` and therefore safe to fan out across threads.
#[derive(Debug, Clone, Default)]
pub struct OutcomeIndex {
    rewards: HashMap<u64, f64>,
    decision_ids: HashMap<u64, ()>,
}

impl OutcomeIndex {
    /// An empty index.
    pub fn new() -> Self {
        OutcomeIndex::default()
    }

    /// Folds one record stream (a recovered segment) into the index.
    /// Call once per segment, in segment order: for duplicate outcome ids
    /// the last call's record wins, matching the one-pass join.
    pub fn index(&mut self, records: &[LogRecord]) {
        for r in records {
            match r {
                LogRecord::Outcome(o) => {
                    self.rewards.insert(o.request_id, o.reward);
                }
                LogRecord::Decision(d) => {
                    self.decision_ids.insert(d.request_id, ());
                }
                LogRecord::Batch(b) => {
                    for d in &b.decisions {
                        self.decision_ids.insert(d.request_id, ());
                    }
                }
            }
        }
    }

    /// The reward recorded for `request_id`, if any outcome mentioned it.
    pub fn reward_of(&self, request_id: u64) -> Option<f64> {
        self.rewards.get(&request_id).copied()
    }

    /// Outcomes whose decision never appeared in any indexed stream
    /// (decision log rotated away under them).
    pub fn orphan_outcomes(&self) -> usize {
        self.rewards
            .keys()
            .filter(|id| !self.decision_ids.contains_key(id))
            .count()
    }

    /// Distinct request ids with an indexed outcome.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// True when no outcome has been indexed.
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }
}

/// Phase two of the two-phase join: scavenges one record stream against a
/// prebuilt [`OutcomeIndex`].
///
/// The returned stats cover only this stream, and `orphan_outcomes` is
/// always zero here — orphanhood is a global property, reported once by
/// [`OutcomeIndex::orphan_outcomes`]. Running this over each segment and
/// concatenating (in segment order) yields exactly the samples and
/// summed stats of a single [`scavenge`] pass over the concatenated
/// records: [`scavenge`] itself is implemented as that composition.
pub fn scavenge_with_outcomes(
    records: &[LogRecord],
    outcomes: &OutcomeIndex,
) -> (Vec<ScavengedSample>, ScavengeStats) {
    let mut stats = ScavengeStats::default();
    let mut samples = Vec::new();
    let mut scavenge_one = |d: &DecisionRecord| {
        let Some(context) = context_of(d) else {
            stats.invalid += 1;
            return;
        };
        let reward = match (outcomes.reward_of(d.request_id), d.reward) {
            (Some(r), _) => r,
            (None, Some(r)) => r,
            (None, None) => {
                stats.missing_outcome += 1;
                return;
            }
        };
        if !reward.is_finite() {
            stats.invalid += 1;
            return;
        }
        stats.joined += 1;
        samples.push(ScavengedSample {
            context,
            action: d.action,
            reward,
            propensity: d.propensity,
        });
    };
    for r in records {
        match r {
            LogRecord::Decision(d) => scavenge_one(d),
            LogRecord::Outcome(_) => {}
            // Batches appear when scavenging a raw (pre-recovery) stream;
            // segment recovery flattens them first. Each batched decision
            // joins exactly as its standalone equivalent would.
            LogRecord::Batch(b) => {
                for d in b.flatten() {
                    scavenge_one(&d);
                }
            }
        }
    }
    (samples, stats)
}

/// Joins decision and outcome records by `request_id`.
///
/// A decision's reward comes from its own `reward` field when present,
/// otherwise from the matching outcome record; decisions with neither are
/// dropped (and counted). When both exist the outcome wins — it is the
/// later, more authoritative measurement.
pub fn scavenge(records: &[LogRecord]) -> (Vec<ScavengedSample>, ScavengeStats) {
    let mut index = OutcomeIndex::new();
    index.index(records);
    let (samples, mut stats) = scavenge_with_outcomes(records, &index);
    stats.orphan_outcomes = index.orphan_outcomes();
    (samples, stats)
}

/// Scavenges directly from crash-safe log segments: recovers the longest
/// valid prefix of each segment, then joins as [`scavenge`] does, carrying
/// the quarantine count through to the stats so a damaged log is visibly
/// damaged all the way up the pipeline.
pub fn scavenge_segments(
    segments: &[Vec<u8>],
) -> (Vec<ScavengedSample>, ScavengeStats, RecoveryStats) {
    let (records, recovery) = recover_segments(segments);
    let (samples, mut stats) = scavenge(&records);
    stats.quarantined = recovery.quarantined_records;
    (samples, stats, recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OutcomeRecord;

    fn decision(id: u64, reward: Option<f64>) -> LogRecord {
        LogRecord::Decision(DecisionRecord {
            request_id: id,
            timestamp_ns: id * 1000,
            component: "test".to_string(),
            shared_features: vec![id as f64],
            action_features: None,
            num_actions: 2,
            action: (id % 2) as usize,
            propensity: Some(0.5),
            reward,
        })
    }

    fn outcome(id: u64, reward: f64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id * 2000,
            reward,
        })
    }

    #[test]
    fn joins_by_request_id() {
        let records = vec![
            decision(1, None),
            decision(2, None),
            outcome(2, 0.9),
            outcome(1, 0.1),
        ];
        let (samples, stats) = scavenge(&records);
        assert_eq!(stats.joined, 2);
        assert_eq!(samples[0].reward, 0.1);
        assert_eq!(samples[1].reward, 0.9);
    }

    #[test]
    fn synchronous_reward_needs_no_outcome() {
        let (samples, stats) = scavenge(&[decision(5, Some(0.42))]);
        assert_eq!(stats.joined, 1);
        assert_eq!(samples[0].reward, 0.42);
    }

    #[test]
    fn outcome_overrides_synchronous_reward() {
        let (samples, _) = scavenge(&[decision(5, Some(0.42)), outcome(5, 0.9)]);
        assert_eq!(samples[0].reward, 0.9);
    }

    #[test]
    fn missing_and_orphan_records_are_counted() {
        let records = vec![decision(1, None), outcome(99, 1.0)];
        let (samples, stats) = scavenge(&records);
        assert!(samples.is_empty());
        assert_eq!(stats.missing_outcome, 1);
        assert_eq!(stats.orphan_outcomes, 1);
    }

    #[test]
    fn invalid_decisions_are_dropped() {
        let mut d = match decision(1, Some(1.0)) {
            LogRecord::Decision(d) => d,
            _ => unreachable!(),
        };
        d.action = 5; // out of range for num_actions = 2
        let (samples, stats) = scavenge(&[LogRecord::Decision(d)]);
        assert!(samples.is_empty());
        assert_eq!(stats.invalid, 1);
    }

    #[test]
    fn non_finite_rewards_are_dropped() {
        let (samples, stats) = scavenge(&[decision(1, None), outcome(1, f64::NAN)]);
        assert!(samples.is_empty());
        assert_eq!(stats.invalid, 1);
    }

    #[test]
    fn action_features_are_reconstructed() {
        let rec = LogRecord::Decision(DecisionRecord {
            request_id: 1,
            timestamp_ns: 0,
            component: "redis-evict".to_string(),
            shared_features: vec![],
            action_features: Some(vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
            num_actions: 2,
            action: 1,
            propensity: None,
            reward: Some(10.0),
        });
        let (samples, stats) = scavenge(&[rec]);
        assert_eq!(stats.joined, 1);
        use harvest_core::Context;
        assert_eq!(samples[0].context.action_features(1), &[3.0, 4.0]);
        assert_eq!(samples[0].propensity, None);
    }

    #[test]
    fn ragged_action_features_are_invalid() {
        let rec = LogRecord::Decision(DecisionRecord {
            request_id: 1,
            timestamp_ns: 0,
            component: "x".to_string(),
            shared_features: vec![],
            action_features: Some(vec![vec![1.0], vec![2.0, 3.0]]),
            num_actions: 2,
            action: 0,
            propensity: None,
            reward: Some(1.0),
        });
        let (samples, stats) = scavenge(&[rec]);
        assert!(samples.is_empty());
        assert_eq!(stats.invalid, 1);
    }

    #[test]
    fn scavenging_segments_surfaces_quarantined_damage() {
        use crate::segment::{MemorySegments, SegmentConfig, SegmentedLogWriter};
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: 4,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        for id in 0..8 {
            w.write(&decision(id, Some(id as f64))).unwrap();
        }
        let store = w.into_sink().unwrap();
        // Bit rot in segment 1's second frame: its tail (3 records) is
        // quarantined; segment 0 survives intact.
        assert!(store.corrupt_payload(1, 1, 0x40));
        let (samples, stats, recovery) = scavenge_segments(&store.snapshot());
        assert_eq!(samples.len(), 5);
        assert_eq!(stats.joined, 5);
        assert_eq!(stats.quarantined, 3);
        assert_eq!(recovery.recovered, 5);
        assert_eq!(recovery.corrupt_segments, 1);
    }

    #[test]
    fn two_phase_join_matches_one_phase() {
        // Rewards land one segment later than their decisions, one decision
        // never resolves, and one outcome is orphaned — the per-segment
        // join against a prebuilt index must reproduce the single pass
        // sample-for-sample.
        let segments: Vec<Vec<LogRecord>> = vec![
            vec![decision(1, None), decision(2, Some(0.5))],
            vec![outcome(1, 0.9), decision(3, None), outcome(2, 0.7)],
            vec![outcome(3, 0.2), outcome(99, 1.0), decision(4, None)],
        ];
        let flat: Vec<LogRecord> = segments.iter().flatten().cloned().collect();
        let (want_samples, want_stats) = scavenge(&flat);

        let mut index = OutcomeIndex::new();
        for seg in &segments {
            index.index(seg);
        }
        let mut got_samples = Vec::new();
        let mut got_stats = ScavengeStats::default();
        for seg in &segments {
            let (s, st) = scavenge_with_outcomes(seg, &index);
            got_samples.extend(s);
            got_stats.joined += st.joined;
            got_stats.missing_outcome += st.missing_outcome;
            got_stats.invalid += st.invalid;
            assert_eq!(st.orphan_outcomes, 0, "orphanhood is global");
        }
        got_stats.orphan_outcomes = index.orphan_outcomes();

        assert_eq!(got_samples, want_samples);
        assert_eq!(got_stats, want_stats);
        assert_eq!(got_stats.orphan_outcomes, 1);
        assert_eq!(got_stats.missing_outcome, 1);
        assert_eq!(index.reward_of(2), Some(0.7), "outcome overrides inline");
    }

    #[test]
    fn with_propensity_prefers_logged_value() {
        let s = ScavengedSample {
            context: SimpleContext::contextless(2),
            action: 0,
            reward: 1.0,
            propensity: Some(0.3),
        };
        assert_eq!(s.clone().with_propensity(0.9).propensity, 0.3);
        let s2 = ScavengedSample {
            propensity: None,
            ..s
        };
        assert_eq!(s2.with_propensity(0.9).propensity, 0.9);
    }
}

//! Crash-safe log segments: checksummed, length-prefixed record frames.
//!
//! The JSON-lines stream of [`crate::record`] is the *logical* format; this
//! module is the *durable* one. A decision log that tears mid-line under a
//! crash silently poisons every `⟨x, a, r, p⟩` triple scavenged from it, so
//! the serve loop writes records as framed segments instead:
//!
//! ```text
//! frame   := len: u32 LE | crc32(payload): u32 LE | payload
//! payload := one JSON-serialized LogRecord (no trailing newline)
//! segment := frame*          (rotated by record count / byte size)
//! ```
//!
//! Recovery ([`recover_segment`]) replays the **longest valid prefix** of
//! each segment — every frame up to the first length/checksum/parse failure —
//! and *quarantines* the damaged tail: the remaining bytes are never parsed,
//! but every record frame still identifiable in them is counted, so the
//! accounting invariant `enqueued == written + dropped + quarantined` can be
//! checked end-to-end. Corruption is counted, never silently skipped.
//!
//! Determinism: framing adds no timestamps, padding, or randomness — the
//! segment bytes are a pure function of the record stream and the rotation
//! points, so same-seed runs of the serve loop produce byte-identical
//! segments and byte-identical recovered prefixes.

use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::record::LogRecord;

/// Frame header size: 4-byte length + 4-byte CRC32.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single frame payload; a length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 24;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), computed in-crate:
// the build environment vendors no checksum crate, and eight lines of table
// generation beat a silent dependency.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Serializes one record into a complete frame (header + payload).
pub fn encode_frame(record: &LogRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        .into_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where segment bytes go. Implementations must make `append` atomic with
/// respect to concurrent readers of *other* segments; within one segment the
/// writer is the only appender.
pub trait SegmentSink {
    /// Appends raw bytes to the given segment, creating it if needed.
    fn append(&mut self, segment: u64, bytes: &[u8]) -> io::Result<()>;
    /// Flushes any buffering for the given segment.
    fn flush(&mut self, segment: u64) -> io::Result<()>;
}

/// A null sink for benchmarks: bytes are framed and discarded.
impl SegmentSink for io::Sink {
    fn append(&mut self, _segment: u64, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)
    }
    fn flush(&mut self, _segment: u64) -> io::Result<()> {
        Ok(())
    }
}

/// A shared in-memory segment store: the test/simulation stand-in for a
/// directory of segment files. Cloning shares the underlying storage, so a
/// harness can keep a handle while the writer thread owns the sink.
///
/// All internal locking recovers from poisoning: a writer incarnation that
/// panics mid-append leaves bytes exactly as appended so far (crash
/// semantics), and the next reader or incarnation proceeds.
#[derive(Debug, Clone, Default)]
pub struct MemorySegments {
    inner: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl MemorySegments {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Vec<u8>>> {
        // Poison recovery: the byte vectors are always in a consistent
        // (append-only) state, so a panicked appender loses nothing.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of every segment's bytes, in segment order.
    pub fn snapshot(&self) -> Vec<Vec<u8>> {
        self.lock().clone()
    }

    /// Number of segments (including a possibly-empty current one).
    pub fn segment_count(&self) -> usize {
        self.lock().len()
    }

    /// Replaces the entire segment list — the maintenance-time commit of a
    /// [`crate::lifecycle`] compaction pass. Callers that keep an active
    /// writer over this store must re-anchor it (via
    /// [`SegmentedLogWriter::with_start`]) at the new segment count.
    pub fn replace_all(&self, segments: Vec<Vec<u8>>) {
        *self.lock() = segments;
    }

    /// Recovers all records: longest valid prefix per segment, with the
    /// damaged remainders counted in the stats.
    pub fn recover(&self) -> (Vec<LogRecord>, RecoveryStats) {
        let segments = self.snapshot();
        recover_segments(&segments)
    }

    /// Fault injection: XORs one byte inside the *payload* of frame
    /// `frame_index` of `segment` (bit rot in record data, headers intact).
    /// Returns `false` if the target frame does not exist or `xor == 0`.
    pub fn corrupt_payload(&self, segment: usize, frame_index: usize, xor: u8) -> bool {
        if xor == 0 {
            return false;
        }
        let mut guard = self.lock();
        let Some(bytes) = guard.get_mut(segment) else {
            return false;
        };
        let spans = frame_spans(bytes);
        let Some(&(start, total)) = spans.get(frame_index) else {
            return false;
        };
        if total <= FRAME_HEADER_LEN {
            return false;
        }
        bytes[start + FRAME_HEADER_LEN] ^= xor;
        true
    }

    /// Fault injection: tears the final frame of `segment`, keeping
    /// `keep_frac` of its bytes (clamped to `[1, frame_len - 1]`) — the
    /// at-rest image of a crash mid-append. Returns `false` if the segment
    /// has no complete final frame to tear.
    pub fn tear_tail(&self, segment: usize, keep_frac: f64) -> bool {
        let mut guard = self.lock();
        let Some(bytes) = guard.get_mut(segment) else {
            return false;
        };
        let spans = frame_spans(bytes);
        let Some(&(start, total)) = spans.last() else {
            return false;
        };
        if start + total != bytes.len() {
            return false; // already torn
        }
        let keep = ((total as f64 - 1.0) * keep_frac.clamp(0.0, 1.0)) as usize;
        let keep = keep.clamp(1, total - 1);
        bytes.truncate(start + keep);
        true
    }
}

impl SegmentSink for MemorySegments {
    fn append(&mut self, segment: u64, bytes: &[u8]) -> io::Result<()> {
        let mut guard = self.lock();
        let idx = segment as usize;
        while guard.len() <= idx {
            guard.push(Vec::new());
        }
        guard[idx].extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, _segment: u64) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Rotation thresholds for [`SegmentedLogWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Rotate after this many records in a segment.
    pub max_records: usize,
    /// Rotate after this many bytes in a segment.
    pub max_bytes: usize,
    /// Rotate when a segment spans more than this many nanoseconds of
    /// *record* time (the logical, caller-stamped clock — wall time never
    /// enters the format). `u64::MAX` disables time-based rotation.
    pub max_span_ns: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            max_records: 1024,
            max_bytes: 256 * 1024,
            max_span_ns: u64::MAX,
        }
    }
}

/// Observer notified each time a segment is sealed. The counts are a
/// deterministic observable: rotation thresholds and crash-seal points
/// are functions of the record stream, not of wall-clock timing — so a
/// histogram of sealed-segment sizes is byte-stable across same-seed
/// runs. The final, never-sealed segment is not reported.
pub trait SealObserver: Send + Sync {
    /// Called once per sealed segment with its record and byte counts.
    fn segment_sealed(&self, records: usize, bytes: usize);
}

/// Writes framed records into rotating segments of a [`SegmentSink`].
pub struct SegmentedLogWriter<S> {
    sink: S,
    cfg: SegmentConfig,
    segment: u64,
    records_in_segment: usize,
    bytes_in_segment: usize,
    first_ts_in_segment: Option<u64>,
    observer: Option<Arc<dyn SealObserver>>,
}

impl<S: fmt::Debug> fmt::Debug for SegmentedLogWriter<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedLogWriter")
            .field("sink", &self.sink)
            .field("cfg", &self.cfg)
            .field("segment", &self.segment)
            .field("records_in_segment", &self.records_in_segment)
            .field("bytes_in_segment", &self.bytes_in_segment)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<S: SegmentSink> SegmentedLogWriter<S> {
    /// Wraps a sink, starting at segment 0.
    pub fn new(sink: S, cfg: SegmentConfig) -> Self {
        Self::with_start(sink, cfg, 0)
    }

    /// Wraps a sink, appending from `first_segment` onward. This is the
    /// warm-restart entry point: a restarted writer resumes *past* the
    /// segments its previous incarnation sealed instead of overwriting
    /// segment 0.
    pub fn with_start(sink: S, cfg: SegmentConfig, first_segment: u64) -> Self {
        SegmentedLogWriter {
            sink,
            cfg,
            segment: first_segment,
            records_in_segment: 0,
            bytes_in_segment: 0,
            first_ts_in_segment: None,
            observer: None,
        }
    }

    /// Registers a [`SealObserver`]; replaces any previous one.
    pub fn set_observer(&mut self, observer: Arc<dyn SealObserver>) {
        self.observer = Some(observer);
    }

    /// Index of the segment currently being appended to.
    pub fn current_segment(&self) -> u64 {
        self.segment
    }

    /// Frames and appends one record, rotating first if the current segment
    /// is full. A [`LogRecord::Batch`] is one frame but counts as its batch
    /// length toward the record-rotation threshold, so segment sizes stay
    /// bounded in *logical* records regardless of batching. Returns the
    /// number of frame bytes appended.
    pub fn write(&mut self, record: &LogRecord) -> io::Result<usize> {
        let ts = record.timestamp_ns();
        let span_full = self
            .first_ts_in_segment
            .is_some_and(|first| ts.saturating_sub(first) >= self.cfg.max_span_ns);
        if self.records_in_segment >= self.cfg.max_records
            || self.bytes_in_segment >= self.cfg.max_bytes
            || span_full
        {
            self.rotate()?;
        }
        let frame = encode_frame(record)?;
        self.sink.append(self.segment, &frame)?;
        self.records_in_segment += record.record_count();
        self.bytes_in_segment += frame.len();
        self.first_ts_in_segment.get_or_insert(ts);
        Ok(frame.len())
    }

    /// Appends raw bytes to the current segment without frame accounting.
    /// Exists for fault injection (torn writes) and tests; a production
    /// caller has no business here.
    pub fn append_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sink.append(self.segment, bytes)?;
        self.bytes_in_segment += bytes.len();
        Ok(())
    }

    /// Seals the current segment (if non-empty) and starts a new one. Called
    /// on rotation thresholds and by the supervisor after a writer crash, so
    /// a torn tail never receives further appends.
    pub fn rotate(&mut self) -> io::Result<()> {
        if self.records_in_segment == 0 && self.bytes_in_segment == 0 {
            return Ok(());
        }
        self.sink.flush(self.segment)?;
        if let Some(observer) = &self.observer {
            observer.segment_sealed(self.records_in_segment, self.bytes_in_segment);
        }
        self.segment += 1;
        self.records_in_segment = 0;
        self.bytes_in_segment = 0;
        self.first_ts_in_segment = None;
        Ok(())
    }

    /// Flushes the sink for the current segment.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush(self.segment)
    }

    /// Returns the sink.
    pub fn into_sink(mut self) -> io::Result<S> {
        self.sink.flush(self.segment)?;
        Ok(self.sink)
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What recovery found in one segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentRecovery {
    /// Records replayed from the longest valid prefix.
    pub recovered: usize,
    /// Record frames counted in the quarantined tail (identifiable frames
    /// plus one for a trailing partial frame).
    pub quarantined_records: usize,
    /// Bytes in the quarantined tail.
    pub quarantined_bytes: usize,
}

impl SegmentRecovery {
    /// True when the whole segment replayed.
    pub fn is_clean(&self) -> bool {
        self.quarantined_bytes == 0
    }
}

/// Aggregate recovery stats across segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segments examined.
    pub segments: usize,
    /// Segments with a quarantined tail.
    pub corrupt_segments: usize,
    /// Records replayed across all segments.
    pub recovered: usize,
    /// Record frames quarantined across all segments.
    pub quarantined_records: usize,
    /// Bytes quarantined across all segments.
    pub quarantined_bytes: usize,
}

/// Walks frame headers without validating checksums, returning
/// `(start, total_len)` spans of structurally complete frames.
fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = 0;
    while bytes.len() - off >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN || off + FRAME_HEADER_LEN + len > bytes.len() {
            break;
        }
        spans.push((off, FRAME_HEADER_LEN + len));
        off += FRAME_HEADER_LEN + len;
    }
    spans
}

/// Counts the logical records still identifiable in a quarantined tail:
/// for every structurally complete frame whose payload still validates,
/// its [`LogRecord::record_count`] (a batch frame quarantines its whole
/// batch); one per frame that no longer parses; plus one for trailing
/// partial bytes. When corruption hits a length header the walk stops
/// early and the remainder counts as a single frame — an undercount is
/// possible there, a silent skip is not.
fn count_tail(tail: &[u8]) -> usize {
    let spans = frame_spans(tail);
    let mut count = 0;
    let mut walked = 0;
    for &(start, len) in &spans {
        let payload = &tail[start + FRAME_HEADER_LEN..start + len];
        let crc = u32::from_le_bytes(tail[start + 4..start + 8].try_into().unwrap());
        let parsed = (crc32(payload) == crc)
            .then(|| std::str::from_utf8(payload).ok())
            .flatten()
            .and_then(|text| serde_json::from_str::<LogRecord>(text).ok());
        count += parsed.map_or(1, |r| r.record_count());
        walked += len;
    }
    count + usize::from(walked < tail.len())
}

/// Replays the longest valid prefix of one segment.
///
/// A frame is valid when its length header fits the remaining bytes, its
/// payload matches its CRC32, and the payload parses as a [`LogRecord`].
/// Recovery stops at the first invalid frame; everything after it is
/// quarantined and counted via [`count_tail`].
///
/// [`LogRecord::Batch`] frames are flattened into their individual
/// [`crate::record::DecisionRecord`]s (each counted in `recovered`), so the
/// recovered stream — and everything downstream of it: scavenging,
/// training, replay comparison — is identical whether the writer framed
/// records one at a time or in batches.
pub fn recover_segment(bytes: &[u8]) -> (Vec<LogRecord>, SegmentRecovery) {
    let mut records = Vec::new();
    let mut stats = SegmentRecovery::default();
    let mut off = 0;
    while off < bytes.len() {
        let frame_ok = (|| {
            if bytes.len() - off < FRAME_HEADER_LEN {
                return None;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            if len > MAX_FRAME_LEN || off + FRAME_HEADER_LEN + len > bytes.len() {
                return None;
            }
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let payload = &bytes[off + FRAME_HEADER_LEN..off + FRAME_HEADER_LEN + len];
            if crc32(payload) != crc {
                return None;
            }
            let text = std::str::from_utf8(payload).ok()?;
            let record: LogRecord = serde_json::from_str(text).ok()?;
            Some((record, FRAME_HEADER_LEN + len))
        })();
        match frame_ok {
            Some((record, advance)) => {
                match record {
                    LogRecord::Batch(batch) => {
                        stats.recovered += batch.decisions.len();
                        records.extend(batch.flatten().map(LogRecord::Decision));
                    }
                    other => {
                        stats.recovered += 1;
                        records.push(other);
                    }
                }
                off += advance;
            }
            None => {
                let tail = &bytes[off..];
                stats.quarantined_records = count_tail(tail);
                stats.quarantined_bytes = tail.len();
                break;
            }
        }
    }
    (records, stats)
}

/// Replays the longest valid prefix of every segment, concatenated in
/// segment order, with aggregate accounting.
pub fn recover_segments(segments: &[Vec<u8>]) -> (Vec<LogRecord>, RecoveryStats) {
    let mut records = Vec::new();
    let mut stats = RecoveryStats::default();
    for bytes in segments {
        let (mut recs, seg) = recover_segment(bytes);
        stats.segments += 1;
        stats.recovered += seg.recovered;
        stats.quarantined_records += seg.quarantined_records;
        stats.quarantined_bytes += seg.quarantined_bytes;
        if !seg.is_clean() {
            stats.corrupt_segments += 1;
        }
        records.append(&mut recs);
    }
    (records, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OutcomeRecord;

    fn outcome(id: u64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id * 10,
            reward: id as f64 * 0.5,
        })
    }

    /// Builds one segment, returning its bytes, the records, and the byte
    /// offset where each frame starts (plus the end offset).
    fn build_segment(n: u64) -> (Vec<u8>, Vec<LogRecord>, Vec<usize>) {
        let records: Vec<LogRecord> = (0..n).map(outcome).collect();
        let mut bytes = Vec::new();
        let mut offsets = vec![0];
        for r in &records {
            bytes.extend_from_slice(&encode_frame(r).unwrap());
            offsets.push(bytes.len());
        }
        (bytes, records, offsets)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_segment_round_trips() {
        let (bytes, records, _) = build_segment(20);
        let (out, stats) = recover_segment(&bytes);
        assert_eq!(out, records);
        assert_eq!(stats.recovered, 20);
        assert!(stats.is_clean());
    }

    #[test]
    fn truncation_recovers_longest_prefix_and_counts_the_tail() {
        let (bytes, records, offsets) = build_segment(5);
        // Cut mid-way through the fourth frame.
        let cut = offsets[3] + (offsets[4] - offsets[3]) / 2;
        let (out, stats) = recover_segment(&bytes[..cut]);
        assert_eq!(out, records[..3]);
        assert_eq!(stats.recovered, 3);
        assert_eq!(stats.quarantined_records, 1);
        assert_eq!(stats.quarantined_bytes, cut - offsets[3]);
    }

    #[test]
    fn truncation_on_a_frame_boundary_is_clean() {
        let (bytes, records, offsets) = build_segment(5);
        let (out, stats) = recover_segment(&bytes[..offsets[2]]);
        assert_eq!(out, records[..2]);
        assert!(stats.is_clean());
    }

    #[test]
    fn payload_corruption_quarantines_the_exact_remainder() {
        let (mut bytes, records, offsets) = build_segment(6);
        // Flip one payload byte in frame 2: frames 2..6 are quarantined and
        // every one of them is still counted via its intact header.
        bytes[offsets[2] + FRAME_HEADER_LEN + 3] ^= 0xFF;
        let (out, stats) = recover_segment(&bytes);
        assert_eq!(out, records[..2]);
        assert_eq!(stats.quarantined_records, 4);
        assert_eq!(stats.quarantined_bytes, bytes.len() - offsets[2]);
    }

    #[test]
    fn header_corruption_is_counted_never_skipped() {
        let (mut bytes, _, offsets) = build_segment(4);
        // Smash frame 1's length field into garbage that overruns the
        // segment: the walk cannot identify the following frames, but the
        // tail still counts as at least one quarantined record.
        bytes[offsets[1]] = 0xFF;
        bytes[offsets[1] + 3] = 0xFF;
        let (out, stats) = recover_segment(&bytes);
        assert_eq!(stats.recovered, out.len());
        assert_eq!(stats.recovered, 1);
        assert!(stats.quarantined_records >= 1);
        assert!(stats.quarantined_bytes > 0);
    }

    #[test]
    fn writer_rotates_by_record_count() {
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: 3,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        for i in 0..7 {
            w.write(&outcome(i)).unwrap();
        }
        let store = w.into_sink().unwrap();
        let segments = store.snapshot();
        assert_eq!(segments.len(), 3);
        let (records, stats) = store.recover();
        assert_eq!(records.len(), 7);
        assert_eq!(stats.recovered, 7);
        assert_eq!(stats.quarantined_records, 0);
        assert_eq!(stats.corrupt_segments, 0);
    }

    #[test]
    fn writer_rotates_by_record_time_span() {
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: usize::MAX,
                max_bytes: usize::MAX,
                max_span_ns: 100,
            },
        );
        // outcome(i) is stamped at i*10 ns: spans close at 100 ns, so the
        // stream splits at timestamps 100 and 200.
        for i in 0..25 {
            w.write(&outcome(i)).unwrap();
        }
        let store = w.into_sink().unwrap();
        assert_eq!(store.segment_count(), 3);
        let (records, stats) = store.recover();
        assert_eq!(records.len(), 25);
        assert!(stats.quarantined_records == 0);
    }

    #[test]
    fn with_start_resumes_past_existing_segments() {
        let store = MemorySegments::new();
        let cfg = SegmentConfig {
            max_records: 4,
            max_bytes: usize::MAX,
            max_span_ns: u64::MAX,
        };
        let mut w = SegmentedLogWriter::new(store.clone(), cfg);
        for i in 0..6 {
            w.write(&outcome(i)).unwrap();
        }
        drop(w); // crash: the writer dies without sealing segment 1
        let mut w2 =
            SegmentedLogWriter::with_start(store.clone(), cfg, store.segment_count() as u64);
        assert_eq!(w2.current_segment(), 2);
        for i in 6..9 {
            w2.write(&outcome(i)).unwrap();
        }
        drop(w2);
        // Nothing overwritten: all nine records recover, in order.
        let (records, stats) = store.recover();
        assert_eq!(stats.recovered, 9);
        let ids: Vec<u64> = records.iter().map(|r| r.request_id()).collect();
        assert_eq!(ids, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn memory_store_tear_and_corrupt_helpers_hit_their_targets() {
        let mut w = SegmentedLogWriter::new(MemorySegments::new(), SegmentConfig::default());
        for i in 0..10 {
            w.write(&outcome(i)).unwrap();
        }
        let store = w.into_sink().unwrap();
        assert!(store.tear_tail(0, 0.5));
        assert!(store.corrupt_payload(0, 4, 0x01));
        assert!(!store.corrupt_payload(0, 99, 0x01));
        assert!(!store.corrupt_payload(7, 0, 0x01));
        let (records, stats) = store.recover();
        // Frames 0..4 replay; 4..9 quarantined by the payload flip; the torn
        // frame 9 counts too.
        assert_eq!(records.len(), 4);
        assert_eq!(stats.recovered, 4);
        assert_eq!(stats.quarantined_records, 6);
        assert_eq!(stats.corrupt_segments, 1);
    }

    #[test]
    fn batch_frames_recover_as_flattened_decisions() {
        use crate::record::{BatchDecision, BatchRecord};
        let entry = |id: u64| BatchDecision {
            request_id: id,
            timestamp_ns: id * 10,
            shared_features: vec![id as f64],
            action_features: None,
            num_actions: 2,
            action: (id % 2) as usize,
            propensity: Some(0.5),
            reward: None,
        };
        let batch = |ids: std::ops::Range<u64>| {
            LogRecord::Batch(BatchRecord {
                component: "serve".to_string(),
                decisions: ids.map(entry).collect(),
            })
        };
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: 4,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        // 3 + 3 logical records in two frames: the first frame fills the
        // segment past its 4-record threshold, so the second rotates.
        w.write(&batch(0..3)).unwrap();
        w.write(&batch(3..6)).unwrap();
        w.write(&outcome(6)).unwrap();
        let store = w.into_sink().unwrap();
        assert_eq!(store.segment_count(), 2);
        let (records, stats) = store.recover();
        assert_eq!(stats.recovered, 7);
        // Batches flatten to plain decisions, ids in order.
        let ids: Vec<u64> = records.iter().map(|r| r.request_id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(records[..6].iter().all(|r| r.is_decision()));
    }

    #[test]
    fn quarantined_batch_frames_count_their_whole_batch() {
        use crate::record::{BatchDecision, BatchRecord};
        let batch = LogRecord::Batch(BatchRecord {
            component: "serve".to_string(),
            decisions: (0..5)
                .map(|id| BatchDecision {
                    request_id: id,
                    timestamp_ns: 0,
                    shared_features: vec![],
                    action_features: None,
                    num_actions: 2,
                    action: 0,
                    propensity: Some(0.5),
                    reward: None,
                })
                .collect(),
        });
        let mut bytes = encode_frame(&outcome(100)).unwrap();
        bytes.extend_from_slice(&encode_frame(&batch).unwrap());
        // Corrupt the *first* frame's payload: recovery stops there, but the
        // intact batch frame behind it still counts all 5 records.
        bytes[FRAME_HEADER_LEN + 1] ^= 0x10;
        let (records, stats) = recover_segment(&bytes);
        assert!(records.is_empty());
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.quarantined_records, 6);
        assert_eq!(stats.quarantined_bytes, bytes.len());
    }

    #[test]
    fn recovery_accounts_every_record_under_tearing() {
        // Conservation through a torn tail: recovered + quarantined == written.
        let mut w = SegmentedLogWriter::new(
            MemorySegments::new(),
            SegmentConfig {
                max_records: 4,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
        );
        for i in 0..11 {
            w.write(&outcome(i)).unwrap();
        }
        let store = w.into_sink().unwrap();
        store.tear_tail(1, 0.3);
        let (_, stats) = store.recover();
        assert_eq!(stats.recovered + stats.quarantined_records, 11);
    }
}

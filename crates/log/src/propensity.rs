//! Step 2 of the methodology: inferring the decision probability `p`.
//!
//! "In our experience, p can often be inferred from code inspection, but a
//! more robust approach is to do a regression on the ⟨x, a, r⟩ data to learn
//! the probability distribution over actions" (paper §3). Both are here:
//!
//! * [`KnownPropensity`] — code inspection: the operator knows the deployed
//!   policy (uniform over K, static weights, ε-greedy, …) and supplies it as
//!   a [`StochasticPolicy`].
//! * [`EstimatedPropensity`] — a hand-rolled multinomial logistic
//!   (softmax) regression of action on context, trained with mini-epoch
//!   SGD on the scavenged `(x, a)` pairs.
//!
//! Estimated propensities are floored away from zero: a propensity of
//! exactly zero would make IPS undefined, and the floor also caps the
//! weight any single sample can carry under estimation error.

use harvest_core::context::{phi_shared, Context};
use harvest_core::error::HarvestError;
use harvest_core::policy::StochasticPolicy;

/// Anything that can assign a probability to a logged (context, action)
/// pair.
pub trait PropensityModel<C: Context> {
    /// The probability with which the deployed policy chose `action` in
    /// `ctx`. Must be in `(0, 1]` for usable exploration data.
    fn propensity(&self, ctx: &C, action: usize) -> f64;
}

/// Propensities from code inspection: delegate to the known deployed
/// policy.
#[derive(Debug, Clone)]
pub struct KnownPropensity<S> {
    policy: S,
}

impl<S> KnownPropensity<S> {
    /// Wraps the deployed policy.
    pub fn new(policy: S) -> Self {
        KnownPropensity { policy }
    }
}

impl<C: Context, S: StochasticPolicy<C>> PropensityModel<C> for KnownPropensity<S> {
    fn propensity(&self, ctx: &C, action: usize) -> f64 {
        self.policy.propensity_of(ctx, action)
    }
}

/// Hyperparameters for [`EstimatedPropensity::fit`].
#[derive(Debug, Clone, Copy)]
pub struct PropensityFitConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Minimum probability the fitted model will ever report.
    pub floor: f64,
}

impl Default for PropensityFitConfig {
    fn default() -> Self {
        PropensityFitConfig {
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
            floor: 1e-3,
        }
    }
}

/// Multinomial logistic regression of action on context.
///
/// Weights are one vector per action over the *standardized* `[shared ‖ 1]`
/// features (per-dimension mean/variance are estimated from the training
/// data, so callers need not pre-scale); probabilities are the softmax of
/// the per-action logits. Contexts with fewer eligible actions than `k`
/// renormalize over the eligible prefix.
#[derive(Debug, Clone)]
pub struct EstimatedPropensity {
    weights: Vec<Vec<f64>>,
    means: Vec<f64>,
    inv_stds: Vec<f64>,
    floor: f64,
}

impl EstimatedPropensity {
    /// Fits the model from `(context, action)` pairs over `k` actions.
    pub fn fit<C: Context>(
        samples: &[(C, usize)],
        k: usize,
        cfg: &PropensityFitConfig,
    ) -> Result<Self, HarvestError> {
        if samples.is_empty() {
            return Err(HarvestError::EmptyDataset);
        }
        if k == 0 {
            return Err(HarvestError::InvalidParameter {
                name: "k",
                message: "need at least one action".to_string(),
            });
        }
        if !(cfg.floor > 0.0 && cfg.floor < 1.0 / k as f64) {
            return Err(HarvestError::InvalidParameter {
                name: "floor",
                message: format!("must be in (0, 1/k); got {}", cfg.floor),
            });
        }
        let dim = phi_shared(&samples[0].0).len();

        // Estimate per-dimension standardization from the data. The bias
        // dimension (last) is left untouched. Without this, large raw
        // features (queue lengths, byte counts) destabilize SGD.
        let mut means = vec![0.0; dim];
        let mut vars = vec![0.0; dim];
        for (ctx, _) in samples {
            let x = phi_shared(ctx);
            if x.len() != dim {
                return Err(HarvestError::DimensionMismatch {
                    expected: dim,
                    got: x.len(),
                });
            }
            for (m, &xi) in means.iter_mut().zip(&x) {
                *m += xi;
            }
        }
        for m in &mut means {
            *m /= samples.len() as f64;
        }
        for (ctx, _) in samples {
            let x = phi_shared(ctx);
            for ((v, &m), &xi) in vars.iter_mut().zip(&means).zip(&x) {
                *v += (xi - m) * (xi - m);
            }
        }
        let mut inv_stds: Vec<f64> = vars
            .iter()
            .map(|&v| {
                let std = (v / samples.len() as f64).sqrt();
                if std > 1e-9 {
                    1.0 / std
                } else {
                    0.0 // constant feature carries no signal
                }
            })
            .collect();
        // Keep the bias term as a plain 1.
        means[dim - 1] = 0.0;
        inv_stds[dim - 1] = 1.0;

        let standardize = |x: &[f64]| -> Vec<f64> {
            x.iter()
                .zip(&means)
                .zip(&inv_stds)
                .map(|((&xi, &m), &s)| (xi - m) * s)
                .collect()
        };

        // SGD with tail averaging (Polyak–Ruppert): the averaged iterate
        // from the last half of the epochs suppresses the hover-noise of
        // constant-ish step sizes, which otherwise shows up as confidently
        // wrong propensities at extreme contexts.
        let mut weights = vec![vec![0.0; dim]; k];
        let mut averaged = vec![vec![0.0; dim]; k];
        let mut averaged_count = 0u64;
        let avg_start = cfg.epochs / 2;
        for epoch in 0..cfg.epochs {
            let lr = cfg.learning_rate / (1.0 + epoch as f64);
            for (ctx, action) in samples {
                if *action >= k {
                    return Err(HarvestError::ActionOutOfRange {
                        action: *action,
                        num_actions: k,
                    });
                }
                let x = standardize(&phi_shared(ctx));
                let probs = softmax_logits(&weights, &x);
                for (a, w) in weights.iter_mut().enumerate() {
                    let err = probs[a] - if a == *action { 1.0 } else { 0.0 };
                    for (wi, &xi) in w.iter_mut().zip(&x) {
                        *wi -= lr * (err * xi + cfg.l2 * *wi);
                    }
                }
                if epoch >= avg_start {
                    averaged_count += 1;
                    for (aw, w) in averaged.iter_mut().zip(&weights) {
                        for (ai, &wi) in aw.iter_mut().zip(w) {
                            *ai += (wi - *ai) / averaged_count as f64;
                        }
                    }
                }
            }
        }
        let final_weights = if averaged_count > 0 {
            averaged
        } else {
            weights
        };
        Ok(EstimatedPropensity {
            weights: final_weights,
            means,
            inv_stds,
            floor: cfg.floor,
        })
    }

    /// The full (floored, renormalized) distribution over the context's
    /// eligible actions.
    pub fn distribution<C: Context>(&self, ctx: &C) -> Vec<f64> {
        let raw = phi_shared(ctx);
        let x: Vec<f64> = raw
            .iter()
            .zip(&self.means)
            .zip(&self.inv_stds)
            .map(|((&xi, &m), &s)| (xi - m) * s)
            .collect();
        let k = ctx.num_actions().min(self.weights.len());
        let mut probs = softmax_logits(&self.weights[..k], &x);
        // Floor and renormalize.
        let mut total = 0.0;
        for p in &mut probs {
            *p = p.max(self.floor);
            total += *p;
        }
        for p in &mut probs {
            *p /= total;
        }
        probs
    }
}

impl<C: Context> PropensityModel<C> for EstimatedPropensity {
    fn propensity(&self, ctx: &C, action: usize) -> f64 {
        let d = self.distribution(ctx);
        d.get(action).copied().unwrap_or(self.floor)
    }
}

fn softmax_logits(weights: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    let logits: Vec<f64> = weights
        .iter()
        .map(|w| w.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect();
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::policy::{ConstantPolicy, EpsilonGreedyPolicy, UniformPolicy};
    use harvest_core::SimpleContext;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn known_propensity_delegates() {
        let m = KnownPropensity::new(UniformPolicy::new());
        let ctx = SimpleContext::contextless(4);
        assert_eq!(m.propensity(&ctx, 0), 0.25);
        let eg =
            KnownPropensity::new(EpsilonGreedyPolicy::new(ConstantPolicy::new(1), 0.2).unwrap());
        assert!((eg.propensity(&ctx, 1) - 0.85).abs() < 1e-12);
        assert!((eg.propensity(&ctx, 0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn estimates_uniform_logging_as_uniform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let samples: Vec<(SimpleContext, usize)> = (0..3000)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                (SimpleContext::new(vec![x], 3), rng.gen_range(0..3))
            })
            .collect();
        let m = EstimatedPropensity::fit(&samples, 3, &PropensityFitConfig::default()).unwrap();
        let ctx = SimpleContext::new(vec![0.2], 3);
        let d = m.distribution(&ctx);
        for &p in &d {
            assert!((p - 1.0 / 3.0).abs() < 0.07, "distribution {d:?}");
        }
    }

    #[test]
    fn estimates_context_dependent_logging() {
        // Logging: action 0 with prob ~0.9 when x > 0, else ~0.1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let samples: Vec<(SimpleContext, usize)> = (0..8000)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let p0 = if x > 0.0 { 0.9 } else { 0.1 };
                let a = if rng.gen_bool(p0) { 0 } else { 1 };
                (SimpleContext::new(vec![x], 2), a)
            })
            .collect();
        let cfg = PropensityFitConfig {
            epochs: 40,
            ..PropensityFitConfig::default()
        };
        let m = EstimatedPropensity::fit(&samples, 2, &cfg).unwrap();
        let pos = m.propensity(&SimpleContext::new(vec![0.8], 2), 0);
        let neg = m.propensity(&SimpleContext::new(vec![-0.8], 2), 0);
        assert!(pos > 0.75, "p(a=0 | x=0.8) = {pos}");
        assert!(neg < 0.25, "p(a=0 | x=-0.8) = {neg}");
    }

    #[test]
    fn floor_keeps_propensities_positive() {
        // Logging that *never* takes action 1 — the estimate must still be
        // positive so downstream IPS stays defined.
        let samples: Vec<(SimpleContext, usize)> = (0..500)
            .map(|_| (SimpleContext::contextless(2), 0usize))
            .collect();
        let m = EstimatedPropensity::fit(&samples, 2, &PropensityFitConfig::default()).unwrap();
        let p = m.propensity(&SimpleContext::contextless(2), 1);
        assert!(p > 0.0);
        assert!(p < 0.1);
    }

    #[test]
    fn distribution_sums_to_one() {
        let samples: Vec<(SimpleContext, usize)> = (0..100)
            .map(|i| (SimpleContext::new(vec![i as f64 / 100.0], 4), i % 4))
            .collect();
        let m = EstimatedPropensity::fit(&samples, 4, &PropensityFitConfig::default()).unwrap();
        let d = m.distribution(&SimpleContext::new(vec![0.5], 4));
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn fit_validates_inputs() {
        let empty: Vec<(SimpleContext, usize)> = Vec::new();
        assert!(matches!(
            EstimatedPropensity::fit(&empty, 2, &PropensityFitConfig::default()),
            Err(HarvestError::EmptyDataset)
        ));
        let samples = vec![(SimpleContext::contextless(2), 5usize)];
        assert!(matches!(
            EstimatedPropensity::fit(&samples, 2, &PropensityFitConfig::default()),
            Err(HarvestError::ActionOutOfRange { .. })
        ));
        let samples = vec![(SimpleContext::contextless(2), 0usize)];
        let bad_floor = PropensityFitConfig {
            floor: 0.9,
            ..PropensityFitConfig::default()
        };
        assert!(EstimatedPropensity::fit(&samples, 2, &bad_floor).is_err());
    }

    #[test]
    fn smaller_action_sets_renormalize() {
        let samples: Vec<(SimpleContext, usize)> = (0..300)
            .map(|i| (SimpleContext::contextless(3), i % 3))
            .collect();
        let m = EstimatedPropensity::fit(&samples, 3, &PropensityFitConfig::default()).unwrap();
        let small = SimpleContext::contextless(2);
        let d = m.distribution(&small);
        assert_eq!(d.len(), 2);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

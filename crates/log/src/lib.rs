//! Log scavenging: turning existing system logs into exploration data.
//!
//! Implements the three-step methodology of paper §3 without intervening in
//! the "live" system:
//!
//! 1. **Scavenge** — parse logs the system already writes and extract
//!    `⟨x, a, r⟩` per request ([`record`], [`nginx`], [`scavenge`]).
//! 2. **Infer** — recover the decision probability `p`, either from code
//!    inspection (the policy's known distribution) or by regressing the
//!    action on the context ([`propensity`]).
//! 3. **Evaluate/optimize** — hand the assembled `⟨x, a, r, p⟩` dataset to
//!    `harvest-estimators` / `harvest-core` ([`pipeline`]).
//!
//! Two log dialects are supported, mirroring the paper's prototypes:
//!
//! * a JSON-lines decision/outcome record format (what our simulators emit
//!   natively — the "custom logging" added to Redis), and
//! * an Nginx-style access-log text format ([`nginx`]) with upstream and
//!   connection variables, parsed field-by-field with real error handling —
//!   the "existing logging modules … simply needed to be configured" case.
//!
//! Rewards that the system does not record at decision time (the next access
//! to an evicted item) are reconstructed by looking ahead in the logs
//! ([`reward`]), exactly as §3 describes for Redis.
//!
//! For logs written by the live serve loop (rather than scavenged from an
//! existing system), [`segment`] provides the crash-safe on-disk format:
//! checksummed, length-prefixed frames in rotating segments, recovered by
//! replaying the longest valid prefix and quarantining — counting, never
//! silently skipping — damaged tails. The control-plane state that
//! interprets those logs (incumbent policy, RNG positions, ledger counters)
//! is made durable by [`checkpoint`], and [`lifecycle`] folds fully-joined
//! segments into compact training shards with retention tiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod lifecycle;
pub mod nginx;
pub mod pipeline;
pub mod propensity;
pub mod record;
pub mod reward;
pub mod scavenge;
pub mod segment;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_latest, load_latest_filtered, CheckpointError,
    CheckpointRecovery, CheckpointStore, CheckpointWriter, DirCheckpoints, MemoryCheckpoints,
};
pub use lifecycle::{compact_segments, CompactionReport, LifecycleConfig};
pub use pipeline::{HarvestPipeline, HarvestReport};
pub use propensity::{EstimatedPropensity, KnownPropensity, PropensityModel};
pub use record::{DecisionRecord, OutcomeRecord};
pub use segment::{
    recover_segment, recover_segments, MemorySegments, RecoveryStats, SealObserver, SegmentConfig,
    SegmentedLogWriter,
};

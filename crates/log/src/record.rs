//! JSON-lines log records.
//!
//! Systems that make randomized decisions log two kinds of events, often far
//! apart in time:
//!
//! * a [`DecisionRecord`] at decision time — the context the policy saw,
//!   the action taken, and (when the code path knows it) the propensity;
//! * an [`OutcomeRecord`] when the consequence materializes — a request
//!   completes, a machine recovers, an evicted key is re-requested.
//!
//! The scavenger joins them by `request_id`. Records serialize as one JSON
//! object per line, the dominant structured-logging format in production
//! systems, so the pipeline is exercised end-to-end through real
//! serialization.

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

/// A decision-time log record: the `⟨x, a⟩` (and maybe `p`) of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Correlates this decision with its outcome.
    pub request_id: u64,
    /// Nanoseconds since the start of the trace.
    pub timestamp_ns: u64,
    /// Which component logged this (e.g. "nginx-lb", "redis-evict").
    pub component: String,
    /// Shared context features at decision time.
    pub shared_features: Vec<f64>,
    /// Per-action features, if the action set carries them.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub action_features: Option<Vec<Vec<f64>>>,
    /// Size of the eligible action set.
    pub num_actions: usize,
    /// The action taken.
    pub action: usize,
    /// The decision probability, when known at the logging site. `None`
    /// when it must be inferred later (paper §3 step 2).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub propensity: Option<f64>,
    /// The reward, when it is known synchronously (e.g. request latency
    /// measured by the proxy itself). `None` when it arrives via a
    /// separate [`OutcomeRecord`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reward: Option<f64>,
}

/// An outcome log record: the (possibly delayed) reward of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeRecord {
    /// Matches the decision's `request_id`.
    pub request_id: u64,
    /// Nanoseconds since the start of the trace.
    pub timestamp_ns: u64,
    /// The observed reward.
    pub reward: f64,
}

/// One decision inside a [`BatchRecord`]: a [`DecisionRecord`] minus the
/// `component`, which the batch stores once for all of its decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchDecision {
    /// Correlates this decision with its outcome.
    pub request_id: u64,
    /// Nanoseconds since the start of the trace.
    pub timestamp_ns: u64,
    /// Shared context features at decision time.
    pub shared_features: Vec<f64>,
    /// Per-action features, if the action set carries them.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub action_features: Option<Vec<Vec<f64>>>,
    /// Size of the eligible action set.
    pub num_actions: usize,
    /// The action taken.
    pub action: usize,
    /// The decision probability, when known at the logging site.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub propensity: Option<f64>,
    /// The reward, when it is known synchronously.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reward: Option<f64>,
}

impl BatchDecision {
    /// Expands back into a standalone [`DecisionRecord`] under the batch's
    /// shared `component`.
    pub fn into_decision(self, component: &str) -> DecisionRecord {
        DecisionRecord {
            request_id: self.request_id,
            timestamp_ns: self.timestamp_ns,
            component: component.to_string(),
            shared_features: self.shared_features,
            action_features: self.action_features,
            num_actions: self.num_actions,
            action: self.action,
            propensity: self.propensity,
            reward: self.reward,
        }
    }
}

impl From<DecisionRecord> for BatchDecision {
    fn from(d: DecisionRecord) -> Self {
        BatchDecision {
            request_id: d.request_id,
            timestamp_ns: d.timestamp_ns,
            shared_features: d.shared_features,
            action_features: d.action_features,
            num_actions: d.num_actions,
            action: d.action,
            propensity: d.propensity,
            reward: d.reward,
        }
    }
}

/// A batch of decision records from one component, logged as a single
/// record (and, in the segment format, a single CRC'd frame). The batched
/// hot path uses this to amortize the per-record queue offer and frame
/// write; recovery flattens it back into individual [`DecisionRecord`]s,
/// so everything downstream of recovery sees the exact stream a
/// single-call run would have produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// The component all decisions in the batch share.
    pub component: String,
    /// The batched decisions, in decision order.
    pub decisions: Vec<BatchDecision>,
}

impl BatchRecord {
    /// Expands into standalone [`DecisionRecord`]s, in decision order.
    pub fn flatten(&self) -> impl Iterator<Item = DecisionRecord> + '_ {
        self.decisions
            .iter()
            .map(|d| d.clone().into_decision(&self.component))
    }
}

/// Either record kind, as found when replaying a mixed log stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum LogRecord {
    /// A decision-time record.
    Decision(DecisionRecord),
    /// An outcome record.
    Outcome(OutcomeRecord),
    /// A batch of decision records sharing one component (one segment
    /// frame on disk; flattened back to decisions by recovery).
    Batch(BatchRecord),
}

impl LogRecord {
    /// The request id this record belongs to — the join key between
    /// decisions and outcomes, and the trace key in observability. For a
    /// batch this is the *first* decision's id (the batch reserves a
    /// contiguous id range); `0` for an empty batch.
    pub fn request_id(&self) -> u64 {
        match self {
            LogRecord::Decision(d) => d.request_id,
            LogRecord::Outcome(o) => o.request_id,
            LogRecord::Batch(b) => b.decisions.first().map_or(0, |d| d.request_id),
        }
    }

    /// The logical timestamp this record was stamped with — for a batch,
    /// the first decision's (`0` for an empty batch). Drives time-based
    /// segment rotation; never a wall clock.
    pub fn timestamp_ns(&self) -> u64 {
        match self {
            LogRecord::Decision(d) => d.timestamp_ns,
            LogRecord::Outcome(o) => o.timestamp_ns,
            LogRecord::Batch(b) => b.decisions.first().map_or(0, |d| d.timestamp_ns),
        }
    }

    /// Whether this is a decision-time record. A batch is all decisions,
    /// but callers that need per-decision handling (tracing, joining)
    /// must iterate [`BatchRecord::decisions`] — so this stays `false`
    /// to keep single-record code paths from mishandling batches.
    pub fn is_decision(&self) -> bool {
        matches!(self, LogRecord::Decision(_))
    }

    /// How many logical records this value carries: 1 for a decision or
    /// outcome, the batch length for a batch. The conservation ledger
    /// (`enqueued == written + dropped + quarantined`) is counted in
    /// logical records, so every accounting site scales by this.
    pub fn record_count(&self) -> usize {
        match self {
            LogRecord::Decision(_) | LogRecord::Outcome(_) => 1,
            LogRecord::Batch(b) => b.decisions.len(),
        }
    }
}

/// Writes records as JSON lines.
pub struct JsonLinesWriter<W> {
    inner: W,
}

impl<W: Write> JsonLinesWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        JsonLinesWriter { inner }
    }

    /// Writes one record as a single line.
    pub fn write(&mut self, record: &LogRecord) -> io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.inner.write_all(line.as_bytes())?;
        self.inner.write_all(b"\n")
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Statistics from reading a JSON-lines stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Lines parsed successfully.
    pub parsed: usize,
    /// Lines skipped as malformed (real logs contain junk; a scavenger that
    /// dies on the first bad line is useless).
    pub malformed: usize,
}

/// Reads all records from a JSON-lines stream, skipping malformed lines and
/// counting them.
pub fn read_json_lines<R: BufRead>(reader: R) -> io::Result<(Vec<LogRecord>, ReadStats)> {
    let mut records = Vec::new();
    let mut stats = ReadStats::default();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match serde_json::from_str::<LogRecord>(trimmed) {
            Ok(r) => {
                records.push(r);
                stats.parsed += 1;
            }
            Err(_) => stats.malformed += 1,
        }
    }
    Ok((records, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_decision() -> DecisionRecord {
        DecisionRecord {
            request_id: 42,
            timestamp_ns: 1_000_000,
            component: "nginx-lb".to_string(),
            shared_features: vec![1.0, 2.0],
            action_features: Some(vec![vec![0.1], vec![0.2]]),
            num_actions: 2,
            action: 1,
            propensity: Some(0.5),
            reward: None,
        }
    }

    #[test]
    fn round_trip_through_json_lines() {
        let mut w = JsonLinesWriter::new(Vec::new());
        w.write(&LogRecord::Decision(sample_decision())).unwrap();
        w.write(&LogRecord::Outcome(OutcomeRecord {
            request_id: 42,
            timestamp_ns: 2_000_000,
            reward: 0.75,
        }))
        .unwrap();
        let buf = w.into_inner();
        let (records, stats) = read_json_lines(buf.as_slice()).unwrap();
        assert_eq!(stats.parsed, 2);
        assert_eq!(stats.malformed, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], LogRecord::Decision(sample_decision()));
        match &records[1] {
            LogRecord::Outcome(o) => assert_eq!(o.reward, 0.75),
            other => panic!("expected outcome, got {other:?}"),
        }
    }

    #[test]
    fn optional_fields_are_omitted_from_json() {
        let mut rec = sample_decision();
        rec.action_features = None;
        rec.propensity = None;
        let json = serde_json::to_string(&LogRecord::Decision(rec)).unwrap();
        assert!(!json.contains("action_features"));
        assert!(!json.contains("propensity"));
        assert!(!json.contains("\"reward\""));
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let input = concat!(
            "{\"kind\":\"outcome\",\"request_id\":1,\"timestamp_ns\":5,\"reward\":1.0}\n",
            "this is not json\n",
            "{\"kind\":\"outcome\",\"request_id\":9999}\n", // missing fields
            "\n",
            "{\"kind\":\"outcome\",\"request_id\":2,\"timestamp_ns\":6,\"reward\":2.0}\n",
        );
        let (records, stats) = read_json_lines(input.as_bytes()).unwrap();
        assert_eq!(stats.parsed, 2);
        assert_eq!(stats.malformed, 2);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn batch_flattens_to_the_equivalent_decisions() {
        let d0 = sample_decision();
        let mut d1 = sample_decision();
        d1.request_id = 43;
        let batch = BatchRecord {
            component: d0.component.clone(),
            decisions: vec![d0.clone().into(), d1.clone().into()],
        };
        let flat: Vec<DecisionRecord> = batch.flatten().collect();
        assert_eq!(flat, vec![d0, d1]);
        let rec = LogRecord::Batch(batch);
        assert_eq!(rec.record_count(), 2);
        assert_eq!(rec.request_id(), 42);
        assert!(!rec.is_decision());
        // Serde round trip through the tagged representation.
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"kind\":\"batch\""));
        assert_eq!(serde_json::from_str::<LogRecord>(&json).unwrap(), rec);
    }

    #[test]
    fn tagged_enum_distinguishes_kinds() {
        let json = serde_json::to_string(&LogRecord::Outcome(OutcomeRecord {
            request_id: 7,
            timestamp_ns: 1,
            reward: 0.0,
        }))
        .unwrap();
        assert!(json.contains("\"kind\":\"outcome\""));
    }
}

//! Checkpointed model/policy store: durable control-plane state.
//!
//! The decision *log* ([`crate::segment`]) makes exploration data crash-safe;
//! this module does the same for the learned state that interprets it — the
//! incumbent policy, registry version, RNG stream positions, joiner state,
//! and the conservation-ledger counters. A checkpoint is an opaque payload
//! (the serve crate serializes its own struct) wrapped in the same defensive
//! framing the segments use:
//!
//! ```text
//! blob := magic "HVCK" | version: u32 LE | seq: u64 LE
//!       | len: u32 LE | crc32(payload): u32 LE | payload
//! ```
//!
//! Promotion is atomic: a blob is staged in full, then published under its
//! sequence number in one step (rename on a directory store, map insert on
//! the in-memory store) — a reader never observes a half-published
//! checkpoint *except* through deliberate fault injection, which is exactly
//! what the validation path is for. [`load_latest`] walks checkpoints newest
//! to oldest and returns the first one that validates; everything newer is
//! counted discarded, never silently skipped. Retention keeps the last K
//! checkpoints ([`CheckpointWriter`]), pruning oldest-first.
//!
//! Determinism: framing adds no timestamps or randomness — a checkpoint's
//! bytes are a pure function of its payload and sequence number, so
//! same-seed runs publish byte-identical checkpoints.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::segment::crc32;

/// Magic prefix of every checkpoint blob.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"HVCK";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Fixed header size: magic + version + seq + len + crc.
pub const CHECKPOINT_HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4;

/// Upper bound on a checkpoint payload; a length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_CHECKPOINT_LEN: usize = 1 << 28;

/// Why a checkpoint blob failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob is shorter than the fixed header.
    Truncated,
    /// The magic prefix is wrong — not a checkpoint at all.
    BadMagic,
    /// The format version is newer than this build understands.
    BadVersion(u32),
    /// The length field disagrees with the actual byte count.
    BadLength,
    /// The payload does not match its CRC32.
    BadChecksum,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadLength => write!(f, "checkpoint length mismatch"),
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Frames a payload into a complete checkpoint blob for sequence `seq`.
pub fn encode_checkpoint(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    blob.extend_from_slice(&CHECKPOINT_MAGIC);
    blob.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    blob.extend_from_slice(&seq.to_le_bytes());
    blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    blob.extend_from_slice(&crc32(payload).to_le_bytes());
    blob.extend_from_slice(payload);
    blob
}

/// Validates a checkpoint blob and returns `(seq, payload)`.
///
/// Every failure mode is a distinct [`CheckpointError`]: truncation (torn
/// write), wrong magic, unknown version, length mismatch, and checksum
/// mismatch (bit rot) are all detected — a damaged checkpoint can be
/// *counted*, never half-trusted.
pub fn decode_checkpoint(blob: &[u8]) -> Result<(u64, &[u8]), CheckpointError> {
    if blob.len() < CHECKPOINT_HEADER_LEN {
        return Err(CheckpointError::Truncated);
    }
    if blob[0..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(blob[4..8].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let seq = u64::from_le_bytes(blob[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(blob[16..20].try_into().unwrap()) as usize;
    if len > MAX_CHECKPOINT_LEN || blob.len() - CHECKPOINT_HEADER_LEN != len {
        return Err(CheckpointError::BadLength);
    }
    let crc = u32::from_le_bytes(blob[20..24].try_into().unwrap());
    let payload = &blob[CHECKPOINT_HEADER_LEN..];
    if crc32(payload) != crc {
        return Err(CheckpointError::BadChecksum);
    }
    Ok((seq, payload))
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

/// Where checkpoint blobs live. `publish` must be atomic: after it returns,
/// a reader sees either the whole blob under `seq` or nothing — unless the
/// caller deliberately publishes damaged bytes (fault injection), in which
/// case validation catches it downstream.
pub trait CheckpointStore {
    /// Atomically publishes `bytes` as checkpoint `seq`, replacing any
    /// previous blob at that sequence.
    fn publish(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()>;
    /// Sequence numbers of every stored checkpoint, ascending.
    fn list(&self) -> io::Result<Vec<u64>>;
    /// Reads the blob stored under `seq`.
    fn read(&self, seq: u64) -> io::Result<Vec<u8>>;
    /// Removes the blob stored under `seq` (idempotent).
    fn remove(&mut self, seq: u64) -> io::Result<()>;
}

/// A shared in-memory checkpoint store: the test/simulation stand-in for a
/// checkpoint directory. Cloning shares the underlying storage, so a
/// harness can damage checkpoints "at rest" while the service owns a
/// writer over the same store.
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpoints {
    inner: Arc<Mutex<BTreeMap<u64, Vec<u8>>>>,
}

impl MemoryCheckpoints {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<u64, Vec<u8>>> {
        // Poison recovery: blobs are replaced whole, never edited in place,
        // so a panicked publisher leaves a consistent map.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fault injection: truncates checkpoint `seq` to `keep_frac` of its
    /// bytes (clamped to `[1, len - 1]`) — the at-rest image of a crash
    /// mid-write on a store without atomic rename. Returns `false` if the
    /// checkpoint does not exist or is too short to tear.
    pub fn tear(&self, seq: u64, keep_frac: f64) -> bool {
        let mut guard = self.lock();
        let Some(bytes) = guard.get_mut(&seq) else {
            return false;
        };
        if bytes.len() < 2 {
            return false;
        }
        let keep = ((bytes.len() as f64 - 1.0) * keep_frac.clamp(0.0, 1.0)) as usize;
        let keep = keep.clamp(1, bytes.len() - 1);
        bytes.truncate(keep);
        true
    }

    /// Fault injection: XORs one payload byte of checkpoint `seq` (bit rot;
    /// header left intact so the damage is a checksum failure, not a parse
    /// failure). Returns `false` if the checkpoint is missing, has no
    /// payload, or `xor == 0`.
    pub fn corrupt(&self, seq: u64, xor: u8) -> bool {
        if xor == 0 {
            return false;
        }
        let mut guard = self.lock();
        let Some(bytes) = guard.get_mut(&seq) else {
            return false;
        };
        if bytes.len() <= CHECKPOINT_HEADER_LEN {
            return false;
        }
        bytes[CHECKPOINT_HEADER_LEN] ^= xor;
        true
    }

    /// Raw bytes of checkpoint `seq`, if present (test introspection).
    pub fn raw(&self, seq: u64) -> Option<Vec<u8>> {
        self.lock().get(&seq).cloned()
    }
}

impl CheckpointStore for MemoryCheckpoints {
    fn publish(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        self.lock().insert(seq, bytes.to_vec());
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<u64>> {
        Ok(self.lock().keys().copied().collect())
    }

    fn read(&self, seq: u64) -> io::Result<Vec<u8>> {
        self.lock()
            .get(&seq)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("checkpoint {seq}")))
    }

    fn remove(&mut self, seq: u64) -> io::Result<()> {
        self.lock().remove(&seq);
        Ok(())
    }
}

/// A directory of checkpoint files: `ckpt-<seq>.ckpt`, published via the
/// classic stage-then-rename dance so a crash mid-publish leaves either the
/// previous checkpoint set or the new file, never a half-written `.ckpt`.
#[derive(Debug, Clone)]
pub struct DirCheckpoints {
    dir: PathBuf,
}

impl DirCheckpoints {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirCheckpoints { dir })
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:020}.ckpt"))
    }
}

impl CheckpointStore for DirCheckpoints {
    fn publish(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("ckpt-{seq:020}.tmp"));
        fs::write(&tmp, bytes)?;
        // Atomic promotion: the blob becomes visible under its final name
        // in one rename, or not at all.
        fs::rename(&tmp, self.path(seq))
    }

    fn list(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn read(&self, seq: u64) -> io::Result<Vec<u8>> {
        fs::read(self.path(seq))
    }

    fn remove(&mut self, seq: u64) -> io::Result<()> {
        match fs::remove_file(self.path(seq)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Writer + recovery
// ---------------------------------------------------------------------------

/// Publishes framed checkpoints with keep-last-K retention.
#[derive(Debug)]
pub struct CheckpointWriter<C> {
    store: C,
    keep_last: usize,
    next_seq: u64,
}

impl<C: CheckpointStore> CheckpointWriter<C> {
    /// Wraps a store, resuming the sequence counter past any checkpoint
    /// already present (so a restarted writer never overwrites history).
    ///
    /// `keep_last` is clamped to at least 1 — retention that keeps nothing
    /// would defeat the point of checkpointing.
    pub fn new(store: C, keep_last: usize) -> io::Result<Self> {
        let next_seq = store.list()?.last().map_or(0, |s| s + 1);
        Ok(CheckpointWriter {
            store,
            keep_last: keep_last.max(1),
            next_seq,
        })
    }

    /// Sequence number the next [`CheckpointWriter::write`] will publish.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames `payload`, publishes it under the next sequence number, and
    /// prunes retention. Returns the published sequence number.
    pub fn write(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.write_damaged(payload, |blob| blob)
    }

    /// Like [`CheckpointWriter::write`], but runs the framed blob through
    /// `damage` before publishing — the fault-injection entry point for
    /// torn and corrupted checkpoint writes. Production code has no
    /// business here.
    pub fn write_damaged(
        &mut self,
        payload: &[u8],
        damage: impl FnOnce(Vec<u8>) -> Vec<u8>,
    ) -> io::Result<u64> {
        let seq = self.next_seq;
        let blob = damage(encode_checkpoint(seq, payload));
        self.store.publish(seq, &blob)?;
        self.next_seq = seq + 1;
        // Retention: prune oldest-first down to the keep budget. A damaged
        // newest checkpoint still counts toward the budget — recovery falls
        // back within the kept window.
        let seqs = self.store.list()?;
        if seqs.len() > self.keep_last {
            for &old in &seqs[..seqs.len() - self.keep_last] {
                self.store.remove(old)?;
            }
        }
        Ok(seq)
    }

    /// Borrows the underlying store.
    pub fn store(&self) -> &C {
        &self.store
    }

    /// Returns the underlying store.
    pub fn into_store(self) -> C {
        self.store
    }
}

/// What [`load_latest`] found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointRecovery {
    /// Checkpoints examined, newest first.
    pub scanned: u64,
    /// Damaged checkpoints skipped on the way to a valid one. Counted,
    /// never silent: the caller is expected to surface this in metrics.
    pub discarded: u64,
    /// Sequence number of the checkpoint that validated, if any.
    pub loaded_seq: Option<u64>,
}

/// Loads the newest checkpoint that validates, walking backwards over
/// damaged ones. Returns the payload alongside the accounting.
///
/// A checkpoint fails over to its predecessor on *any* validation error:
/// truncation, bad magic/version, length mismatch, or checksum mismatch —
/// plus an unreadable blob on a real filesystem. A caller whose payload
/// fails to *parse* (valid frame, incomprehensible contents) should keep
/// walking via [`load_latest_filtered`].
pub fn load_latest<C: CheckpointStore>(store: &C) -> (Option<Vec<u8>>, CheckpointRecovery) {
    load_latest_filtered(store, |_, payload| Some(payload.to_vec()))
}

/// Like [`load_latest`], but the caller's `parse` gets the first say on
/// each structurally valid payload (newest first); returning `None` counts
/// the checkpoint discarded and continues to the predecessor. This is how
/// the serve crate folds JSON parse failures into the same never-silent
/// fallback as checksum failures.
pub fn load_latest_filtered<C: CheckpointStore, T>(
    store: &C,
    mut parse: impl FnMut(u64, &[u8]) -> Option<T>,
) -> (Option<T>, CheckpointRecovery) {
    let mut rec = CheckpointRecovery::default();
    let seqs = store.list().unwrap_or_default();
    for &seq in seqs.iter().rev() {
        rec.scanned += 1;
        let parsed = store
            .read(seq)
            .ok()
            .and_then(|blob| decode_checkpoint(&blob).ok().map(|(s, p)| (s, p.to_vec())))
            .filter(|&(framed_seq, _)| framed_seq == seq)
            .and_then(|(_, payload)| parse(seq, &payload));
        match parsed {
            Some(value) => {
                rec.loaded_seq = Some(seq);
                return (Some(value), rec);
            }
            None => rec.discarded += 1,
        }
    }
    (None, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u64) -> Vec<u8> {
        format!("{{\"model\":{i}}}").into_bytes()
    }

    #[test]
    fn encode_decode_round_trip() {
        let blob = encode_checkpoint(7, &payload(7));
        let (seq, body) = decode_checkpoint(&blob).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(body, payload(7).as_slice());
    }

    #[test]
    fn every_header_failure_is_distinct() {
        let blob = encode_checkpoint(1, &payload(1));
        assert_eq!(
            decode_checkpoint(&blob[..CHECKPOINT_HEADER_LEN - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_checkpoint(&bad), Err(CheckpointError::BadMagic));
        let mut bad = blob.clone();
        bad[4] = 0xEE;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(CheckpointError::BadVersion(_))
        ));
        let mut bad = blob.clone();
        bad.pop();
        assert_eq!(decode_checkpoint(&bad), Err(CheckpointError::BadLength));
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(decode_checkpoint(&bad), Err(CheckpointError::BadChecksum));
    }

    #[test]
    fn writer_publishes_and_prunes_keep_last_k() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 3).unwrap();
        for i in 0..6 {
            assert_eq!(w.write(&payload(i)).unwrap(), i);
        }
        assert_eq!(store.list().unwrap(), vec![3, 4, 5]);
        let (latest, rec) = load_latest(&store);
        assert_eq!(latest.unwrap(), payload(5));
        assert_eq!(rec.loaded_seq, Some(5));
        assert_eq!(rec.discarded, 0);
    }

    #[test]
    fn writer_resumes_sequence_past_existing_checkpoints() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 4).unwrap();
        w.write(&payload(0)).unwrap();
        w.write(&payload(1)).unwrap();
        drop(w);
        let mut w2 = CheckpointWriter::new(store.clone(), 4).unwrap();
        assert_eq!(w2.next_seq(), 2);
        assert_eq!(w2.write(&payload(2)).unwrap(), 2);
    }

    #[test]
    fn torn_newest_falls_back_to_previous_valid() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 4).unwrap();
        w.write(&payload(0)).unwrap();
        w.write(&payload(1)).unwrap();
        w.write(&payload(2)).unwrap();
        assert!(store.tear(2, 0.5));
        let (latest, rec) = load_latest(&store);
        assert_eq!(latest.unwrap(), payload(1));
        assert_eq!(rec.loaded_seq, Some(1));
        assert_eq!(rec.discarded, 1);
        assert_eq!(rec.scanned, 2);
    }

    #[test]
    fn corrupted_payload_is_detected_and_counted() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 4).unwrap();
        w.write(&payload(0)).unwrap();
        w.write(&payload(1)).unwrap();
        assert!(store.corrupt(1, 0x10));
        let (latest, rec) = load_latest(&store);
        assert_eq!(latest.unwrap(), payload(0));
        assert_eq!(rec.discarded, 1);
    }

    #[test]
    fn all_checkpoints_damaged_loads_nothing_but_counts_everything() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 4).unwrap();
        w.write(&payload(0)).unwrap();
        w.write(&payload(1)).unwrap();
        assert!(store.tear(0, 0.3));
        assert!(store.corrupt(1, 0x01));
        let (latest, rec) = load_latest(&store);
        assert!(latest.is_none());
        assert_eq!(rec.scanned, 2);
        assert_eq!(rec.discarded, 2);
        assert_eq!(rec.loaded_seq, None);
    }

    #[test]
    fn parse_filter_failures_keep_walking() {
        let store = MemoryCheckpoints::new();
        let mut w = CheckpointWriter::new(store.clone(), 4).unwrap();
        w.write(b"good").unwrap();
        w.write(b"bad").unwrap();
        let (latest, rec) = load_latest_filtered(&store, |_, p| {
            (p == b"good").then(|| String::from_utf8(p.to_vec()).unwrap())
        });
        assert_eq!(latest.unwrap(), "good");
        assert_eq!(rec.discarded, 1);
        assert_eq!(rec.loaded_seq, Some(0));
    }

    #[test]
    fn dir_store_round_trips_with_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("harvest-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = DirCheckpoints::open(&dir).unwrap();
        store
            .publish(0, &encode_checkpoint(0, &payload(0)))
            .unwrap();
        store
            .publish(1, &encode_checkpoint(1, &payload(1)))
            .unwrap();
        assert_eq!(store.list().unwrap(), vec![0, 1]);
        let (latest, rec) = load_latest(&store);
        assert_eq!(latest.unwrap(), payload(1));
        assert_eq!(rec.loaded_seq, Some(1));
        store.remove(0).unwrap();
        store.remove(0).unwrap(); // idempotent
        assert_eq!(store.list().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn framed_seq_must_match_published_slot() {
        let store = {
            let mut s = MemoryCheckpoints::new();
            // A blob framed for seq 9 published under slot 3: replay
            // confusion, rejected.
            s.publish(3, &encode_checkpoint(9, &payload(9))).unwrap();
            s
        };
        let (latest, rec) = load_latest(&store);
        assert!(latest.is_none());
        assert_eq!(rec.discarded, 1);
    }
}
